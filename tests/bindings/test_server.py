"""BindingServer internals: content-type normalisation, port manufacture,
multi-binding exposure of a single dispatcher."""

import numpy as np
import pytest

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer, _normalize
from repro.plugins.services import CounterService, MatMul
from repro.transport import HttpTransport, TcpTransport, TransportMessage
from repro.wsdl.extensions import SoapAddressExt, XdrAddressExt


class TestContentTypeNormalisation:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("text/xml", "text/xml"),
            ("text/xml; charset=utf-8", "text/xml"),
            ("text/xml; arrays=items", "text/xml; arrays=items"),
            ("text/xml; charset=utf-8; arrays=items", "text/xml; arrays=items"),
            ("application/x-xdr", "application/x-xdr"),
            ("multipart/related; boundary=x", "multipart/related"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert _normalize(raw) == expected


class TestMultiBindingExposure:
    @pytest.fixture
    def server(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("MatMul#0", MatMul())
        dispatcher.register("Counter#0", CounterService())
        server = BindingServer(dispatcher)
        yield server
        server.close()

    def test_same_dispatcher_over_http_and_tcp(self, server, rng):
        http = server.expose_soap_http()
        tcp = server.expose_xdr_tcp()
        from repro.encoding.registry import default_registry

        soap_codec = default_registry.get("text/xml")
        xdr_codec = default_registry.get("application/x-xdr")
        a = rng.random((3, 3))

        http_client = HttpTransport(http.url)
        response = http_client.request(TransportMessage(
            "text/xml", soap_codec.encode_call("MatMul#0", "multiply", (a, a))
        ))
        assert np.allclose(soap_codec.decode_reply(response.payload), a @ a)
        http_client.close()

        tcp_client = TcpTransport(tcp.url)
        response = tcp_client.request(TransportMessage(
            "application/x-xdr", xdr_codec.encode_call("MatMul#0", "multiply", (a, a))
        ))
        assert np.allclose(xdr_codec.decode_reply(response.payload), a @ a)
        tcp_client.close()

    def test_two_targets_one_endpoint(self, server):
        tcp = server.expose_xdr_tcp()
        from repro.encoding.registry import default_registry

        codec = default_registry.get("application/x-xdr")
        client = TcpTransport(tcp.url)
        response = client.request(TransportMessage(
            codec.content_type, codec.encode_call("Counter#0", "increment", (3,))
        ))
        assert codec.decode_reply(response.payload) == 3
        client.close()

    def test_unknown_target_maps_to_codec_fault(self, server):
        tcp = server.expose_xdr_tcp()
        from repro.encoding.registry import default_registry
        from repro.util.errors import EncodingError

        codec = default_registry.get("application/x-xdr")
        client = TcpTransport(tcp.url)
        response = client.request(TransportMessage(
            codec.content_type, codec.encode_call("Ghost#9", "op", ())
        ))
        with pytest.raises(EncodingError, match="Ghost"):
            codec.decode_reply(response.payload)
        client.close()

    def test_unknown_content_type_answers_soap_fault(self, server):
        """A bogus Content-Type must produce a decodable fault from the
        default codec, not a listener-level error, and the connection must
        stay usable."""
        from repro.soap.codec import SoapMessageCodec

        http = server.expose_soap_http()
        client = HttpTransport(http.url)
        codec = SoapMessageCodec()
        response = client.request(TransportMessage(
            "application/x-nonsense", codec.encode_call("Counter#0", "increment", (1,))
        ))
        assert response.content_type.startswith("text/xml")
        fault = codec.fault_to_exception(bytes(response.payload))
        assert fault is not None
        assert "no codec" in fault.faultstring
        # same connection, valid request: still served
        response = client.request(TransportMessage(
            "text/xml", codec.encode_call("Counter#0", "increment", (5,))
        ))
        assert codec.decode_reply(bytes(response.payload)) == 5
        client.close()

    def test_malformed_content_type_over_tcp_answers_soap_fault(self, server):
        from repro.soap.codec import SoapMessageCodec
        from repro.transport import TcpTransport

        tcp = server.expose_xdr_tcp()
        client = TcpTransport(tcp.url)
        codec = SoapMessageCodec()
        response = client.request(TransportMessage("garbage/; ;;", b"not xml"))
        fault = codec.fault_to_exception(bytes(response.payload))
        assert fault is not None
        client.close()

    def test_inproc_exposure(self, server, rng):
        from repro.transport import InProcTransport
        from repro.encoding.registry import default_registry

        listener = server.expose_inproc("bench-ep")
        codec = default_registry.get("application/x-xdr")
        client = InProcTransport(listener.url)
        a = rng.random(4)
        response = client.request(TransportMessage(
            codec.content_type, codec.encode_call("MatMul#0", "getResult", (a, a))
        ))
        expected = (a.reshape(2, 2) @ a.reshape(2, 2)).ravel()
        assert np.allclose(codec.decode_reply(response.payload), expected)

    def test_close_stops_all_listeners(self, server):
        http = server.expose_soap_http()
        server.close()
        from repro.util.errors import TransportError

        with pytest.raises(TransportError):
            HttpTransport(http.url).request(TransportMessage("text/xml", b"<x/>"))

    def test_port_helpers(self, server):
        http = server.expose_soap_http()
        tcp = server.expose_xdr_tcp()
        soap_port = BindingServer.soap_port(http, "B1", "p1")
        assert soap_port.extension_of(SoapAddressExt).location == http.url
        xdr_port = BindingServer.xdr_port(tcp, "B2", "p2", target="T#1")
        address = xdr_port.extension_of(XdrAddressExt)
        assert address.port == tcp.port
        assert address.target == "T#1"
