"""C7/C8 — Section 5/6 interoperability claims.

C7: "DVM-enabling components implementing different state coherency
protocols … always expose the same functional interface as defined in
Harness II framework, so that applications can be deployed and run on any
Harness II DVM regardless of the underlying state management solution."

C8: Harness II plugins can "be registered in any WSDL-aware lookup service,
and used by any SOAP-aware client" — a generic SOAP client that knows
nothing about Harness drives a Harness-deployed service.
"""

import http.client

import numpy as np
import pytest

from repro.core.builder import COHERENCY_SCHEMES, HarnessDvm
from repro.netsim import lan
from repro.plugins.services import CounterService, MatMul
from repro.registry.uddi import UddiRegistry


def run_application(harness: HarnessDvm) -> dict:
    """A fixed application exercising deploy/lookup/stub/status/migrate."""
    harness.deploy("node0", CounterService)
    harness.deploy("node2", MatMul)
    results: dict = {}
    stub = harness.stub("node1", "CounterService")
    for amount in (1, 2, 3):
        results["counter"] = stub.increment(amount)
    stub.close()
    mat_stub = harness.stub("node0", "MatMul")
    a = np.arange(9.0)
    results["matmul"] = [round(v, 9) for v in mat_stub.getResult(a, a)]
    mat_stub.close()
    harness.move("CounterService", "node2")
    results["index"] = harness.dvm.component_index("node1")
    moved_stub = harness.stub("node1", "CounterService")
    results["counter_after_move"] = moved_stub.value()
    moved_stub.close()
    results["members"] = harness.status("node1")["members"]
    return results


class TestC7ProtocolPortability:
    def test_identical_application_behaviour_on_all_schemes(self):
        observed = {}
        for scheme in sorted(COHERENCY_SCHEMES):
            net = lan(3)
            with HarnessDvm(f"c7-{scheme}", net, coherency=scheme) as harness:
                harness.add_nodes("node0", "node1", "node2")
                observed[scheme] = run_application(harness)
        baseline = observed.pop("full-synchrony")
        for scheme, results in observed.items():
            assert results == baseline, f"{scheme} diverged: {results} != {baseline}"

    def test_schemes_differ_only_in_cost(self):
        costs = {}
        for scheme in sorted(COHERENCY_SCHEMES):
            net = lan(3)
            with HarnessDvm(f"c7b-{scheme}", net, coherency=scheme) as harness:
                harness.add_nodes("node0", "node1", "node2")
                run_application(harness)
                costs[scheme] = net.total_messages
        # behaviour was equal (above); traffic patterns must differ
        assert len(set(costs.values())) > 1, costs


class TestC8SoapInterop:
    def test_generic_soap_client_drives_harness_service(self, rng):
        """A raw http.client + hand-built envelope — zero Harness imports on
        the client path (beyond envelope helpers used to build XML text)."""
        from repro.container import LightweightContainer
        from repro.soap.envelope import build_call_envelope, parse_reply_envelope

        with LightweightContainer("c8", host="c8host") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "soap"))
            from repro.wsdl.extensions import ServiceTargetExt, SoapAddressExt

            port = handle.document.service("MatMul").port("MatMulSoapPort")
            address = port.extension_of(SoapAddressExt).location
            target = port.extension_of(ServiceTargetExt).name

            a = rng.random(4)
            envelope = build_call_envelope(target, "getResult", (a, a))

            host_port = address.removeprefix("http://").rstrip("/")
            host, _, port_text = host_port.rpartition(":")
            connection = http.client.HTTPConnection(host, int(port_text), timeout=10)
            connection.request(
                "POST", "/", body=envelope,
                headers={"Content-Type": "text/xml; charset=utf-8",
                         "SOAPAction": "urn:harness:MatMul#getResult"},
            )
            response = connection.getresponse()
            assert response.status == 200
            result = parse_reply_envelope(response.read())
            connection.close()
            assert np.allclose(result, (a.reshape(2, 2) @ a.reshape(2, 2)).ravel())

    def test_wsdl_publishable_in_uddi_and_rediscovered(self):
        from repro.container import LightweightContainer

        with LightweightContainer("c8b", host="c8bhost") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "soap"))
            uddi = UddiRegistry()
            business = uddi.save_business("harness-provider")
            uddi.publish_wsdl(business.key, handle.document)
            # a WSDL-aware client finds it by interface (tModel), not by name
            tmodel = uddi.find_tmodel("MatMulPortType")[0]
            services = uddi.find_service(tmodel_key=tmodel.key)
            assert [s.name for s in services] == ["MatMul"]
            document = uddi.get_wsdl(services[0].key)
            assert document.port_type("MatMulPortType")

    def test_foreign_soap_request_with_unknown_target_gets_fault(self):
        from repro.container import LightweightContainer
        from repro.soap.envelope import build_call_envelope, parse_reply_envelope
        from repro.util.errors import SoapFaultError
        from repro.wsdl.extensions import SoapAddressExt

        with LightweightContainer("c8c", host="c8chost") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "soap"))
            port = handle.document.service("MatMul").port("MatMulSoapPort")
            address = port.extension_of(SoapAddressExt).location
            import urllib.request

            envelope = build_call_envelope("NoSuchTarget", "getResult", ())
            request = urllib.request.Request(
                address, data=envelope, headers={"Content-Type": "text/xml"}
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                body = response.read()
            with pytest.raises(SoapFaultError, match="NoSuchTarget"):
                parse_reply_envelope(body)
