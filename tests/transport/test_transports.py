"""All three transports: routing, faults, lifecycle, concurrency."""

import threading

import pytest

from repro.transport import (
    HttpListener,
    HttpTransport,
    InProcListener,
    InProcTransport,
    TcpListener,
    TcpTransport,
    TransportMessage,
    connect,
    parse_url,
)
from repro.util.errors import TransportClosedError, TransportError


def echo_handler(message: TransportMessage) -> TransportMessage:
    return TransportMessage(message.content_type, message.payload[::-1])


def fault_handler(message: TransportMessage) -> TransportMessage:
    raise ValueError("deliberate failure")


class TestParseUrl:
    def test_valid(self):
        assert parse_url("tcp://h:1") == ("tcp", "h:1")

    @pytest.mark.parametrize("bad", ["nope", "://x", ""])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_url(bad)

    def test_connect_unknown_scheme(self):
        with pytest.raises(TransportError):
            connect("gopher://x:1")


class TestInProc:
    def test_round_trip(self):
        listener = InProcListener("ep1", echo_handler)
        transport = InProcTransport(listener.url)
        reply = transport.request(TransportMessage("t", b"abc"))
        assert reply.payload == b"cba"

    def test_duplicate_name_rejected(self):
        InProcListener("dup", echo_handler)
        with pytest.raises(TransportError):
            InProcListener("dup", echo_handler)

    def test_unknown_endpoint(self):
        transport = InProcTransport("inproc://ghost")
        with pytest.raises(TransportError):
            transport.request(TransportMessage("t", b""))

    def test_closed_listener_rejects(self):
        listener = InProcListener("ep2", echo_handler)
        transport = InProcTransport(listener.url)
        listener.close()
        with pytest.raises(TransportError):
            transport.request(TransportMessage("t", b""))

    def test_closed_transport_rejects(self):
        listener = InProcListener("ep3", echo_handler)
        transport = InProcTransport(listener.url)
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.request(TransportMessage("t", b""))

    def test_name_with_slash_rejected(self):
        with pytest.raises(TransportError):
            InProcListener("a/b", echo_handler)

    def test_wrong_scheme_rejected(self):
        with pytest.raises(TransportError):
            InProcTransport("tcp://h:1")


class TestTcp:
    @pytest.fixture
    def server(self):
        listener = TcpListener(echo_handler)
        yield listener
        listener.close()

    def test_round_trip(self, server):
        transport = TcpTransport(server.url)
        reply = transport.request(TransportMessage("application/x-xdr", b"hello"))
        assert reply.payload == b"olleh"
        assert reply.content_type == "application/x-xdr"
        transport.close()

    def test_large_payload(self, server):
        transport = TcpTransport(server.url)
        payload = bytes(range(256)) * 40000  # ~10 MB
        reply = transport.request(TransportMessage("t", payload))
        assert reply.payload == payload[::-1]
        transport.close()

    def test_many_requests_one_connection(self, server):
        transport = TcpTransport(server.url)
        for i in range(50):
            payload = f"msg{i}".encode()
            assert transport.request(TransportMessage("t", payload)).payload == payload[::-1]
        transport.close()

    def test_concurrent_clients(self, server):
        def hammer(n: int):
            transport = TcpTransport(server.url)
            for i in range(20):
                payload = f"{n}-{i}".encode()
                assert transport.request(TransportMessage("t", payload)).payload == payload[::-1]
            transport.close()

        from repro.util.concurrent import run_all

        run_all([lambda n=n: hammer(n) for n in range(8)])

    def test_fault_propagates_without_killing_connection(self):
        listener = TcpListener(fault_handler)
        transport = TcpTransport(listener.url)
        with pytest.raises(TransportError, match="deliberate failure"):
            transport.request(TransportMessage("t", b"x"))
        # connection still usable? server keeps serving after a fault
        with pytest.raises(TransportError, match="deliberate failure"):
            transport.request(TransportMessage("t", b"y"))
        transport.close()
        listener.close()

    def test_connect_refused(self):
        with pytest.raises(TransportError):
            TcpTransport("tcp://127.0.0.1:1")  # port 1: nothing listening

    def test_bad_url(self):
        with pytest.raises(TransportError):
            TcpTransport("tcp://noport")
        with pytest.raises(TransportError):
            TcpTransport("http://h:1")

    def test_closed_transport_rejects(self, server):
        transport = TcpTransport(server.url)
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.request(TransportMessage("t", b""))


class TestHttp:
    @pytest.fixture
    def server(self):
        listener = HttpListener(echo_handler)
        yield listener
        listener.close()

    def test_round_trip(self, server):
        transport = HttpTransport(server.url)
        reply = transport.request(TransportMessage("text/xml", b"abc"))
        assert reply.payload == b"cba"
        transport.close()

    def test_content_type_header_round_trip(self, server):
        transport = HttpTransport(server.url)
        reply = transport.request(TransportMessage("text/xml; charset=utf-8", b"z"))
        assert reply.content_type.startswith("text/xml")
        transport.close()

    def test_keep_alive_many_requests(self, server):
        transport = HttpTransport(server.url)
        for i in range(30):
            payload = f"r{i}".encode()
            assert transport.request(TransportMessage("t", payload)).payload == payload[::-1]
        transport.close()

    def test_fault_maps_to_500(self):
        listener = HttpListener(fault_handler)
        transport = HttpTransport(listener.url)
        with pytest.raises(TransportError, match="500"):
            transport.request(TransportMessage("t", b"x"))
        transport.close()
        listener.close()

    def test_large_payload(self, server):
        transport = HttpTransport(server.url)
        payload = b"\x01\x02" * 500_000
        assert transport.request(TransportMessage("t", payload)).payload == payload[::-1]
        transport.close()

    def test_bad_url(self):
        with pytest.raises(TransportError):
            HttpTransport("http://nohost")
        with pytest.raises(TransportError):
            HttpTransport("tcp://h:1")

    def test_concurrent_clients(self, server):
        from repro.util.concurrent import run_all

        def hammer(n: int):
            transport = HttpTransport(server.url)
            for i in range(10):
                payload = f"{n}.{i}".encode()
                assert transport.request(TransportMessage("t", payload)).payload == payload[::-1]
            transport.close()

        run_all([lambda n=n: hammer(n) for n in range(6)])

    def test_stale_keepalive_retried_once(self, server):
        """A server that dropped the idle connection costs one transparent
        reconnect, not a visible TransportError."""
        import http.client

        transport = HttpTransport(server.url)
        assert transport.request(TransportMessage("t", b"warm")).payload == b"mraw"
        real_round_trip = transport._round_trip
        failures = iter([http.client.RemoteDisconnected("stale")])

        def flaky(message):
            try:
                raise next(failures)
            except StopIteration:
                return real_round_trip(message)

        transport._round_trip = flaky
        assert transport.request(TransportMessage("t", b"abc")).payload == b"cba"
        transport.close()

    def test_stale_keepalive_not_retried_twice(self, server):
        import http.client

        transport = HttpTransport(server.url)

        def always_stale(message):
            raise http.client.RemoteDisconnected("still stale")

        transport._round_trip = always_stale
        with pytest.raises(TransportError):
            transport.request(TransportMessage("t", b"abc"))
        transport.close()


class TestTcpTimeout:
    def test_timeout_leaves_connection_usable(self):
        """With correlated frames a timeout abandons the id instead of
        poisoning the socket: the late reply is dropped, not mis-delivered."""
        from repro.util.errors import HarnessTimeoutError

        release = threading.Event()
        slow = [True]

        def handler(message: TransportMessage) -> TransportMessage:
            if slow[0]:
                release.wait(5.0)
            return TransportMessage(message.content_type, message.payload[::-1])

        listener = TcpListener(handler)
        transport = TcpTransport(listener.url)
        try:
            with pytest.raises(HarnessTimeoutError):
                transport.request(TransportMessage("t", b"x"), timeout=0.1)
            slow[0] = False
            release.set()
            # the same transport keeps working, and the answer belongs to
            # THIS request (the slow request's late reply is discarded)
            assert transport.request(TransportMessage("t", b"ab"), timeout=5.0).payload == b"ba"
        finally:
            release.set()
            transport.close()
            listener.close()

    def test_fresh_connection_works_after_timeout(self):
        from repro.util.errors import HarnessTimeoutError

        release = threading.Event()
        slow = [True]

        def handler(message: TransportMessage) -> TransportMessage:
            if slow[0]:
                release.wait(5.0)
            return TransportMessage(message.content_type, message.payload[::-1])

        listener = TcpListener(handler)
        timed_out = TcpTransport(listener.url)
        try:
            with pytest.raises(HarnessTimeoutError):
                timed_out.request(TransportMessage("t", b"x"), timeout=0.1)
            slow[0] = False
            release.set()
            fresh = TcpTransport(listener.url)
            assert fresh.request(TransportMessage("t", b"ab")).payload == b"ba"
            fresh.close()
        finally:
            release.set()
            timed_out.close()
            listener.close()
