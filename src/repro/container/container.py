"""Component containers — Figure 6's middle abstraction layer.

"A component container defines a local name space, lookup service and a
management service for other components … a component container exposes an
interface that allows users to query for the characteristics and to access
the services hosted locally.  Thus a component container enhances the
computational service functionality of a runner box with the notion of a
local shared environment."

Two concrete containers realize Section 5's *deployment issue*:

* :class:`LightweightContainer` — the paper's "specialized lightweight
  component container for volatile DVMs and short lived applications":
  deployment instantiates the class, registers the instance, generates the
  WSDL in memory, done.  Network endpoints are shared and started lazily.
* :class:`ApplicationServerContainer` — models the e-commerce application
  server whose "deployment technologies do not provide adequate support
  for automated service instantiation … they usually require human
  interaction".  Deployment performs the full ritual a 2002 app server
  performed: WSDL serialize/parse/canonicalize validation rounds, static
  stub source generation + compilation, publication to a UDDI registry,
  and a dedicated per-service HTTP endpoint.  All steps are real work,
  not sleeps — the C3 benchmark measures their cost.
"""

from __future__ import annotations

import threading
from dataclasses import replace

from repro.bindings.context import LOCAL_DIRECTORY, ClientContext
from repro.bindings.dispatcher import ObjectDispatcher, exposed_operations
from repro.bindings.factory import DynamicStubFactory
from repro.bindings.server import BindingServer
from repro.bindings.stubs import ServiceStub, load_type
from repro.container.component import ComponentHandle, ComponentState
from repro.registry.local import PRIVATE, PUBLIC, ServiceRegistry
from repro.util.errors import ContainerError, ServiceNotFoundError
from repro.util.events import EventBus
from repro.util.ids import new_id
from repro.wsdl.extensions import (
    LocalAddressExt,
    ServiceTargetExt,
    SoapAddressExt,
    XdrAddressExt,
)
from repro.wsdl.model import WsdlDocument, WsdlPort, WsdlService

__all__ = ["ComponentContainer", "LightweightContainer", "ApplicationServerContainer"]


class ComponentContainer:
    """Base container: local namespace, instance registry, lookup, exposure.

    Containers self-register in :data:`LOCAL_DIRECTORY` under their URI so
    local and local-instance bindings can resolve their instances — the
    container *is* the paper's run time that "quer[ies] the local component
    container to obtain a reference to an already instantiated, stateful
    object".
    """

    container_kind = "abstract"

    def __init__(
        self,
        name: str = "",
        host: str = "localhost",
        events: EventBus | None = None,
        network=None,
        policy=None,
        authority=None,
    ):
        self.name = name or new_id("container")
        self.host = host
        self.network = network  # VirtualNetwork | None: enables sim bindings
        # Optional access control (Section 1's "secure access control and
        # unified authorization"): when a policy is set, every *network*
        # binding dispatches through a SecureDispatcher.  Co-located access
        # through local bindings is inherently trusted — callers sharing the
        # address space cannot be defended against by the container.
        self.policy = policy
        if policy is not None and authority is None:
            from repro.container.security import TokenAuthority

            authority = TokenAuthority()
        self.authority = authority
        self.uri = f"container://{host}/{self.name}"
        self.events = events or EventBus()
        self.registry = ServiceRegistry(name=f"{self.name}.registry")
        self.dispatcher = ObjectDispatcher()
        self._lock = threading.RLock()
        self._components: dict[str, ComponentHandle] = {}
        self._by_name: dict[str, str] = {}
        self._server: BindingServer | None = None
        self._http_listener = None
        self._tcp_listener = None
        self._sim_listener = None
        self._closed = False
        if self.uri in LOCAL_DIRECTORY:
            raise ContainerError(f"container uri already in use: {self.uri}")
        LOCAL_DIRECTORY[self.uri] = self

    # -- LOCAL_DIRECTORY protocol (used by bindings) -------------------------------

    def get_instance(self, instance_id: str) -> object:
        """Resolve a pre-existing stateful instance (local-instance binding)."""
        with self._lock:
            handle = self._components.get(instance_id)
        if handle is None or not handle.alive:
            raise ServiceNotFoundError(f"no live instance {instance_id!r} in {self.uri}")
        return handle.instance

    def instantiate(self, type_name: str) -> object:
        """Create a fresh instance of *type_name* (local binding)."""
        return load_type(type_name)()

    # -- deployment ---------------------------------------------------------------

    def deploy(
        self,
        component: type | object,
        name: str | None = None,
        bindings: tuple[str, ...] = ("local-instance",),
        exposure: str = PUBLIC,
        start: bool = True,
        metadata: dict | None = None,
    ) -> ComponentHandle:
        """Deploy a component class (instantiated here) or a ready instance.

        ``bindings`` picks the access mechanisms the component's WSDL ports
        advertise; every deployed component always gets a local-instance
        port (it *is* an instance in this container).
        """
        if self._closed:
            raise ContainerError(f"container {self.name} is closed")
        from repro.tools.wsdlgen import generate_wsdl

        if isinstance(component, type):
            cls = component
            instance = cls()
        else:
            cls = type(component)
            instance = component
        service_name = name or cls.__name__
        instance_id = f"{service_name}#{new_id('c')}"

        requested = tuple(dict.fromkeys(("local-instance",) + tuple(bindings)))
        unknown = [
            k for k in requested
            if k not in ("local-instance", "local", "soap", "xdr", "sim", "mime")
        ]
        if unknown:
            raise ContainerError(f"unknown binding kind {unknown[0]!r}")
        if "sim" in requested and self.network is None:
            raise ContainerError(
                "sim binding requires a container attached to a virtual network"
            )
        document = generate_wsdl(
            cls, service_name=service_name, bindings=requested, instance_id=instance_id
        )
        ports = self._make_ports(document, service_name, instance_id, requested)
        document = document.with_service(
            WsdlService(service_name, tuple(ports), documentation=f"deployed in {self.uri}")
        )
        document.validate()

        handle = ComponentHandle(
            instance_id=instance_id,
            name=service_name,
            instance=instance,
            document=document,
            container_uri=self.uri,
            metadata=dict(metadata or {}),
        )
        with self._lock:
            if service_name in self._by_name:
                raise ContainerError(
                    f"component name {service_name!r} already deployed in {self.name}"
                )
            self._components[instance_id] = handle
            self._by_name[service_name] = instance_id
        self.dispatcher.register(instance_id, instance, exposed_operations(instance))
        entry = self.registry.register(document, exposure=exposure)
        handle.registry_key = entry.key
        self._post_deploy(handle)
        if start:
            self.start_component(instance_id)
        self.events.publish("container.component.deployed", handle, source=self.uri)
        return handle

    def _make_ports(
        self,
        document: WsdlDocument,
        service_name: str,
        instance_id: str,
        requested: tuple[str, ...],
    ) -> list[WsdlPort]:
        """Create one ``<port>`` per requested binding kind."""
        ports: list[WsdlPort] = []
        for kind in requested:
            if kind == "local-instance":
                ports.append(
                    WsdlPort(
                        f"{service_name}InstancePort",
                        f"{service_name}InstanceBinding",
                        (LocalAddressExt(self.uri, instance_id),),
                    )
                )
            elif kind == "local":
                ports.append(
                    WsdlPort(
                        f"{service_name}LocalPort",
                        f"{service_name}LocalBinding",
                        (LocalAddressExt(self.uri, instance_id),),
                    )
                )
            elif kind == "soap":
                listener = self._ensure_http()
                ports.append(
                    WsdlPort(
                        f"{service_name}SoapPort",
                        f"{service_name}SoapBinding",
                        (SoapAddressExt(listener.url), ServiceTargetExt(instance_id)),
                    )
                )
            elif kind == "mime":
                listener = self._ensure_http()
                from repro.wsdl.extensions import HttpAddressExt

                ports.append(
                    WsdlPort(
                        f"{service_name}MimePort",
                        f"{service_name}MimeBinding",
                        (HttpAddressExt(listener.url), ServiceTargetExt(instance_id)),
                    )
                )
            elif kind == "sim":
                listener = self._ensure_sim()
                sim_host, _, endpoint = listener.url.removeprefix("sim://").partition("/")
                from repro.wsdl.extensions import SimAddressExt

                ports.append(
                    WsdlPort(
                        f"{service_name}SimPort",
                        f"{service_name}SimBinding",
                        (SimAddressExt(sim_host, endpoint, instance_id),),
                    )
                )
            elif kind == "xdr":
                listener = self._ensure_tcp()
                host, _, port_text = listener.url.removeprefix("tcp://").rpartition(":")
                ports.append(
                    WsdlPort(
                        f"{service_name}XdrPort",
                        f"{service_name}XdrBinding",
                        (XdrAddressExt(host, int(port_text), instance_id),),
                    )
                )
            else:
                raise ContainerError(f"unknown binding kind {kind!r}")
        return ports

    def _post_deploy(self, handle: ComponentHandle) -> None:
        """Subclass hook: extra per-component deployment work."""

    def deploy_source(
        self,
        source: str,
        class_name: str,
        name: str | None = None,
        **kwargs,
    ) -> ComponentHandle:
        """Deploy a component whose implementation arrives as source text.

        The source is loaded into a registered dynamic module first, so the
        resulting class remains importable — local bindings and migration
        work exactly as for distribution-shipped components.
        """
        from repro.core.loader import load_class_from_source

        cls = load_class_from_source(source, class_name)
        return self.deploy(cls, name=name, **kwargs)

    # -- shared endpoints ------------------------------------------------------------

    def _ensure_server(self) -> BindingServer:
        with self._lock:
            if self._server is None:
                dispatcher = self.dispatcher
                if self.policy is not None:
                    from repro.container.security import SecureDispatcher

                    dispatcher = SecureDispatcher(self.dispatcher, self.authority, self.policy)
                self._server = BindingServer(dispatcher)
            return self._server

    def issue_token(self, principal) -> str:
        """Mint a credential for *principal* (requires an access policy)."""
        if self.authority is None:
            raise ContainerError(f"container {self.name} has no token authority")
        return self.authority.issue(principal)

    def _ensure_http(self):
        with self._lock:
            if self._http_listener is None:
                self._http_listener = self._ensure_server().expose_soap_http()
            return self._http_listener

    def _ensure_tcp(self):
        with self._lock:
            if self._tcp_listener is None:
                self._tcp_listener = self._ensure_server().expose_xdr_tcp()
            return self._tcp_listener

    def _ensure_sim(self):
        with self._lock:
            if self._sim_listener is None:
                if self.network is None:
                    raise ContainerError("container has no virtual network")
                from repro.transport.sim import SimListener

                self._sim_listener = SimListener(
                    self.network, self.host, f"svc-{self.name}",
                    self._ensure_server()._handle,
                )
            return self._sim_listener

    # -- lifecycle -------------------------------------------------------------------

    def start_component(self, instance_id: str) -> None:
        """DEPLOYED/STOPPED → ACTIVE, running the ``on_start`` hook if any."""
        handle = self._handle(instance_id)
        handle.transition(ComponentState.ACTIVE)
        hook = getattr(handle.instance, "on_start", None)
        if callable(hook):
            hook(self)
        self.events.publish("container.component.started", handle, source=self.uri)

    def stop_component(self, instance_id: str) -> None:
        """ACTIVE → STOPPED, running the ``on_stop`` hook if any."""
        handle = self._handle(instance_id)
        handle.transition(ComponentState.STOPPED)
        hook = getattr(handle.instance, "on_stop", None)
        if callable(hook):
            hook()
        self.events.publish("container.component.stopped", handle, source=self.uri)

    def undeploy(self, instance_id: str) -> None:
        """Remove the component entirely."""
        handle = self._handle(instance_id)
        handle.transition(ComponentState.UNDEPLOYED)
        with self._lock:
            self._components.pop(instance_id, None)
            self._by_name.pop(handle.name, None)
        self.dispatcher.unregister(instance_id)
        if handle.registry_key:
            try:
                self.registry.unregister(handle.registry_key)
            except ServiceNotFoundError:
                pass
        self.events.publish("container.component.undeployed", handle, source=self.uri)

    def set_exposure(self, instance_id: str, exposure: str) -> None:
        """Publish/hide a component at run time (Section 6)."""
        handle = self._handle(instance_id)
        self.registry.set_exposure(handle.registry_key, exposure)
        self.events.publish("container.component.exposure", handle, source=self.uri)

    # -- the local shared environment -----------------------------------------------

    def lookup(self, service_name: str, prefer=None, include_private: bool = True) -> ServiceStub:
        """A stub for a co-located service — local bindings win automatically.

        This is the "smart computational components [that] locally aggregate
        available services and take advantage of local bindings to achieve
        high performance" path (Section 6).
        """
        entry = self.registry.lookup_name(service_name, include_private=include_private)
        factory = DynamicStubFactory(
            ClientContext(container_uri=self.uri, host=self.host, network=self.network)
        )
        return factory.create(entry.document, prefer=prefer)

    def components(self) -> list[ComponentHandle]:
        with self._lock:
            return list(self._components.values())

    def component_named(self, name: str) -> ComponentHandle:
        with self._lock:
            instance_id = self._by_name.get(name)
        if instance_id is None:
            raise ServiceNotFoundError(f"no component named {name!r} in {self.name}")
        return self._handle(instance_id)

    def describe(self) -> dict:
        """Status summary — the container's management-service view."""
        with self._lock:
            return {
                "uri": self.uri,
                "kind": self.container_kind,
                "components": {
                    h.name: h.state.value for h in self._components.values()
                },
                "registry_size": len(self.registry),
            }

    def _handle(self, instance_id: str) -> ComponentHandle:
        with self._lock:
            handle = self._components.get(instance_id)
        if handle is None:
            raise ServiceNotFoundError(f"no component {instance_id!r} in {self.name}")
        return handle

    def close(self) -> None:
        """Undeploy everything and release endpoints + directory entry."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            instance_ids = list(self._components)
        for instance_id in instance_ids:
            try:
                self.undeploy(instance_id)
            except Exception:
                pass
        with self._lock:
            if self._sim_listener is not None:
                self._sim_listener.close()
                self._sim_listener = None
            if self._server is not None:
                self._server.close()
                self._server = None
                self._http_listener = None
                self._tcp_listener = None
        if LOCAL_DIRECTORY.get(self.uri) is self:
            del LOCAL_DIRECTORY[self.uri]

    def __enter__(self) -> "ComponentContainer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class LightweightContainer(ComponentContainer):
    """The volatile-DVM container: deployment is instantiation + registration.

    Nothing else happens at deploy time; SOAP/XDR endpoints are shared and
    created lazily only when a component actually requests those bindings.
    """

    container_kind = "lightweight"


class ApplicationServerContainer(ComponentContainer):
    """Models a 2002-era e-commerce application server's deployment ritual.

    Per deployed component, performs (for real):

    1. *validation rounds*: serialize the WSDL, re-parse it, canonicalize
       and compare — ``validation_rounds`` times (deployment descriptors
       were validated repeatedly by these stacks);
    2. *static codegen*: generate the stub source and ``compile()`` it;
    3. *registry publication*: publish business + tModels + service to the
       configured UDDI registry;
    4. *dedicated endpoint*: start a dedicated HTTP listener for the
       component (one servlet container per service).
    """

    container_kind = "application-server"

    def __init__(
        self,
        name: str = "",
        host: str = "localhost",
        uddi=None,
        validation_rounds: int = 3,
        events: EventBus | None = None,
    ):
        super().__init__(name, host, events)
        from repro.registry.uddi import UddiRegistry

        self.uddi = uddi if uddi is not None else UddiRegistry()
        self.validation_rounds = validation_rounds
        self._business = self.uddi.save_business(f"{self.name} provider")
        self._dedicated_listeners: dict[str, object] = {}

    def _post_deploy(self, handle: ComponentHandle) -> None:
        from repro.tools.servicegen import generate_stub_source
        from repro.wsdl.io import document_from_string, document_to_string
        from repro.xmlkit import canonicalize
        from repro.wsdl.io import document_to_element

        # 1. validation rounds
        for _ in range(self.validation_rounds):
            text = document_to_string(handle.document)
            reparsed = document_from_string(text)
            if canonicalize(document_to_element(reparsed)) != canonicalize(
                document_to_element(handle.document)
            ):
                raise ContainerError(
                    f"deployment descriptor for {handle.name!r} failed validation"
                )
        # 2. static stub codegen + compilation
        source = generate_stub_source(handle.document, class_name=f"{handle.name}DeployStub")
        compile(source, f"<stub {handle.name}>", "exec")
        # 3. UDDI publication
        self.uddi.publish_wsdl(self._business.key, handle.document)
        # 4. dedicated HTTP endpoint for this component
        server = BindingServer(self.dispatcher)
        listener = server.expose_soap_http()
        self._dedicated_listeners[handle.instance_id] = (server, listener)

    def undeploy(self, instance_id: str) -> None:
        entry = self._dedicated_listeners.pop(instance_id, None)
        if entry is not None:
            server, _listener = entry
            server.close()
        super().undeploy(instance_id)

    def close(self) -> None:
        for server, _listener in self._dedicated_listeners.values():
            server.close()
        self._dedicated_listeners.clear()
        super().close()
