"""Qualified names and the namespace vocabulary used across the framework.

WSDL, SOAP and XSD are all namespace-heavy; this module pins the namespace
URIs the paper's technology stack uses (WSDL 1.1, SOAP 1.1, XSD) plus the
Harness II extension namespace for the local/XDR bindings of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "QName",
    "NS_WSDL",
    "NS_SOAP",
    "NS_MIME",
    "NS_SOAP_ENV",
    "NS_SOAP_ENC",
    "NS_XSD",
    "NS_XSI",
    "NS_HARNESS",
    "NS_WSIL",
    "NS_UDDI",
    "WELL_KNOWN_PREFIXES",
]

NS_WSDL = "http://schemas.xmlsoap.org/wsdl/"
NS_SOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
NS_MIME = "http://schemas.xmlsoap.org/wsdl/mime/"
NS_SOAP_ENV = "http://schemas.xmlsoap.org/soap/envelope/"
NS_SOAP_ENC = "http://schemas.xmlsoap.org/soap/encoding/"
NS_XSD = "http://www.w3.org/2001/XMLSchema"
NS_XSI = "http://www.w3.org/2001/XMLSchema-instance"
#: Harness II extensibility namespace: local / local-instance / XDR bindings.
NS_HARNESS = "http://harness.mathcs.emory.edu/wsdl/harness/"
NS_WSIL = "http://schemas.xmlsoap.org/ws/2001/10/inspection/"
NS_UDDI = "urn:uddi-org:api_v2"

#: Preferred prefixes used by the serializer for readable documents.
WELL_KNOWN_PREFIXES = {
    NS_WSDL: "wsdl",
    NS_SOAP: "soap",
    NS_MIME: "mime",
    NS_SOAP_ENV: "soapenv",
    NS_SOAP_ENC: "soapenc",
    NS_XSD: "xsd",
    NS_XSI: "xsi",
    NS_HARNESS: "harness",
    NS_WSIL: "wsil",
    NS_UDDI: "uddi",
}


@dataclass(frozen=True)
class QName:
    """A namespace-qualified XML name.

    Rendered in Clark notation (``{uri}local``) internally; the serializer
    maps namespaces to prefixes on output.  An empty ``namespace`` means an
    unqualified name.
    """

    namespace: str
    local: str

    @classmethod
    def parse(cls, text: str, default_namespace: str = "") -> "QName":
        """Parse ``{uri}local`` Clark notation or a bare local name."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            if not local:
                raise ValueError(f"malformed Clark name: {text!r}")
            return cls(uri, local)
        return cls(default_namespace, text)

    def clark(self) -> str:
        """Clark notation, as used by ``xml.etree``."""
        return f"{{{self.namespace}}}{self.local}" if self.namespace else self.local

    def __str__(self) -> str:
        return self.clark()
