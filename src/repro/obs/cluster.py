"""Cluster-level observability: pull, merge, and export per-node metrics.

The process-local :mod:`repro.obs.metrics` registry answers "what has this
node seen"; this module answers "what has the *DVM* seen".  A
:class:`ClusterCollector` pulls per-node snapshots — over the same RPC
bindings as any other service call, via each node's deployed
``MetricsService`` — and tolerates the fleet being a fleet:

* a member the failure detector has declared DEAD is **not contacted**
  (no pull may hang on a corpse) and is marked :attr:`NodeStatus.STALE`;
* a member whose pull raises (partition, dropped message, kill) is
  marked :attr:`NodeStatus.UNREACHABLE`;
* a node no longer in the membership is marked :attr:`NodeStatus.EVICTED`.

In every non-FRESH case the collector *retains the node's last good
snapshot* with its age, so the merged view degrades to "slightly old"
instead of "suddenly smaller" — a typed staleness marker, never a silent
gap.

:func:`merge_metrics` folds the per-node snapshots into one cluster view:
counters and gauges sum with per-node breakdowns, histograms sum their
buckets (same-bounds required) and recompute quantiles through the shared
:func:`~repro.obs.metrics.percentile_from_counts`, so a merged p99 is
exactly what a single histogram holding every node's observations would
report.  :func:`prometheus_text` renders any per-node view in the
Prometheus text exposition format (served on the HTTP binding under
``/metrics``), and :func:`render_top` is the console ``top`` verb's table.

Caveat for the simulated single-process fabric: every node's default
``MetricsService`` reads the one process-global registry, so per-node
snapshots coincide and a merged counter is N× the process value.  Real
deployments (one process per node) and the tests (per-node ``snapshot_fn``
registries) see genuinely distinct snapshots.
"""

from __future__ import annotations

import enum
import math
import re
import threading
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.obs.metrics import percentile_from_counts
from repro.util.clock import WallClock
from repro.util.errors import HarnessError

__all__ = [
    "NodeStatus",
    "NodeSnapshot",
    "ClusterCollector",
    "deploy_metrics_services",
    "merge_metrics",
    "prometheus_text",
    "render_top",
    "METRICS_SERVICE_PREFIX",
]

#: Per-node metrics components are deployed as ``metrics-<node>``.
METRICS_SERVICE_PREFIX = "metrics-"


class NodeStatus(enum.Enum):
    """Typed staleness marker for one node's slice of the cluster view."""

    FRESH = "fresh"              # pulled this round
    STALE = "stale"              # detector says not-alive; pull skipped
    UNREACHABLE = "unreachable"  # pull attempted and failed
    EVICTED = "evicted"          # no longer a member; last snapshot retained


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's contribution to a collection round."""

    node: str
    status: NodeStatus
    metrics: Mapping      # last successfully pulled snapshot ({} if never)
    taken_at: float       # clock time of that pull (-1.0 = never pulled)
    age_s: float          # now - taken_at at collection time (inf if never)
    error: str = ""

    @property
    def fresh(self) -> bool:
        return self.status is NodeStatus.FRESH

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "status": self.status.value,
            "taken_at": round(self.taken_at, 9),
            "age_s": round(self.age_s, 9) if math.isfinite(self.age_s) else "inf",
            "error": self.error,
            "metrics": dict(self.metrics),
        }


class ClusterCollector:
    """Pulls per-node metric snapshots and remembers the last good one.

    Pluggable by construction — *nodes* yields the current membership,
    *pull* fetches one node's snapshot (raising :class:`HarnessError` on
    failure), *liveness* (optional) veto-gates the pull — so tests drive
    it with plain callables and :meth:`for_dvm` wires it to a live DVM's
    stub RPC + failure detector.
    """

    def __init__(
        self,
        nodes: Callable[[], list],
        pull: Callable[[str], Mapping],
        liveness: Callable[[str], bool] | None = None,
        clock=None,
    ):
        self._nodes = nodes
        self._pull = pull
        self._liveness = liveness
        self._clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._last: dict[str, tuple[float, Mapping]] = {}

    @classmethod
    def for_dvm(
        cls,
        dvm,
        from_node: str,
        detector=None,
        clock=None,
        prefix: str = "",
        service_prefix: str = METRICS_SERVICE_PREFIX,
    ) -> "ClusterCollector":
        """A collector pulling each member's ``metrics-<node>`` service
        through *dvm*'s ordinary stub RPC, observed from *from_node*.
        A *detector* (:class:`~repro.dvm.failure.FailureDetector`) gates
        pulls on its liveness verdicts.  *dvm* may be the raw
        :class:`~repro.dvm.machine.DistributedVirtualMachine` or a
        :class:`~repro.core.builder.HarnessDvm` wrapping one."""
        if not callable(getattr(dvm, "nodes", None)):
            dvm = dvm.dvm  # HarnessDvm facade -> the machine underneath

        def pull(node: str) -> Mapping:
            stub = dvm.stub(from_node, service_prefix + node)
            try:
                snap = stub.invoke("snapshot", prefix)
            finally:
                close = getattr(stub, "close", None)
                if close:
                    close()
            if isinstance(snap, Mapping):
                inner = snap.get("metrics")
                return inner if isinstance(inner, Mapping) else snap
            return {}

        liveness = detector.contactable if detector is not None else None
        return cls(dvm.nodes, pull, liveness=liveness, clock=clock)

    def collect(self) -> dict[str, NodeSnapshot]:
        """One collection round over every known node (sorted by name).

        Nodes seen in any earlier round stay in the result after eviction,
        carrying their final snapshot; the caller decides whether to keep
        counting them (the merge does, under their EVICTED marker).
        """
        members = set(self._nodes())
        now = self._clock.now()
        snapshots: dict[str, NodeSnapshot] = {}
        with self._lock:
            for node in sorted(members | set(self._last)):
                if node not in members:
                    snapshots[node] = self._marked(
                        node, NodeStatus.EVICTED, now, "no longer a DVM member"
                    )
                elif self._liveness is not None and not self._liveness(node):
                    snapshots[node] = self._marked(
                        node, NodeStatus.STALE, now, "failure detector: not alive"
                    )
                else:
                    try:
                        metrics = self._pull(node)
                    except HarnessError as exc:
                        snapshots[node] = self._marked(
                            node,
                            NodeStatus.UNREACHABLE,
                            now,
                            f"{type(exc).__name__}: {exc}",
                        )
                    else:
                        self._last[node] = (now, metrics)
                        snapshots[node] = NodeSnapshot(
                            node, NodeStatus.FRESH, metrics, now, 0.0
                        )
        return snapshots

    def _marked(self, node: str, status: NodeStatus, now: float, error: str) -> NodeSnapshot:
        taken_at, metrics = self._last.get(node, (-1.0, {}))
        age = (now - taken_at) if taken_at >= 0 else math.inf
        return NodeSnapshot(node, status, metrics, taken_at, age, error)

    def cluster_snapshot(self) -> dict:
        """One JSON-ready document: per-node slices plus the merged view."""
        snapshots = self.collect()
        return {
            "nodes": {n: s.as_dict() for n, s in snapshots.items()},
            "merged": merge_metrics(
                {n: s.metrics for n, s in snapshots.items() if s.metrics}
            ),
        }

    def as_prometheus(self) -> str:
        """This round's per-node view in Prometheus text exposition."""
        snapshots = self.collect()
        return prometheus_text(
            {n: s.metrics for n, s in snapshots.items()},
            statuses={n: s.status for n, s in snapshots.items()},
        )


def deploy_metrics_services(harness, registries: Mapping | None = None) -> list[str]:
    """Deploy a ``metrics-<node>`` :class:`MetricsService` on every member
    that lacks one (idempotent); returns the service names deployed now.

    *registries*, when given, maps node name → a per-node snapshot source
    (a :class:`~repro.obs.metrics.MetricsRegistry` or a ``snapshot_fn``
    callable) so each node reports its own registry instead of the shared
    process default — how the tests model one-process-per-node reality.
    """
    from repro.plugins.services import MetricsService

    nodes = harness.dvm.nodes()
    if not nodes:
        return []
    index = harness.dvm.component_index(nodes[0])
    deployed = []
    for node in nodes:
        name = METRICS_SERVICE_PREFIX + node
        if name in index:
            continue
        snapshot_fn = None
        source = (registries or {}).get(node)
        if source is not None:
            if callable(source):
                snapshot_fn = source
            else:
                snapshot_fn = lambda prefix="", _r=source: {"metrics": _r.snapshot(prefix)}
        harness.deploy(node, MetricsService(snapshot_fn=snapshot_fn), name=name)
        deployed.append(name)
    return deployed


# -- merging ---------------------------------------------------------------------


def merge_metrics(per_node: Mapping[str, Mapping]) -> dict:
    """Fold per-node registry snapshots into one cluster-wide view.

    Counters and gauges sum across nodes (with a ``nodes`` breakdown);
    histograms sum their buckets — which requires identical bucket bounds,
    a schema property, so a mismatch raises — and recompute p50/p99 from
    the summed counts with the same interpolation every node used, making
    the merged quantile exact with respect to the merged buckets.
    """
    grouped: dict[str, dict] = {}
    for node in sorted(per_node):
        for name, data in per_node[node].items():
            kind = data.get("type")
            slot = grouped.get(name)
            if slot is None:
                slot = grouped[name] = {"type": kind, "nodes": {}}
            elif slot["type"] != kind:
                raise ValueError(
                    f"metric {name!r} is {slot['type']!r} on one node "
                    f"but {kind!r} on {node!r}"
                )
            slot["nodes"][node] = data
    merged: dict[str, dict] = {}
    for name in sorted(grouped):
        slot = grouped[name]
        kind, series = slot["type"], slot["nodes"]
        if kind == "counter":
            merged[name] = {
                "type": "counter",
                "value": sum(int(d["value"]) for d in series.values()),
                "nodes": {n: int(d["value"]) for n, d in series.items()},
            }
        elif kind == "gauge":
            merged[name] = {
                "type": "gauge",
                "value": sum(float(d["value"]) for d in series.values()),
                "nodes": {n: float(d["value"]) for n, d in series.items()},
            }
        elif kind == "histogram":
            merged[name] = _merge_histograms(name, series)
        else:  # unknown kinds pass through per node, never silently dropped
            merged[name] = {"type": kind, "nodes": {n: dict(d) for n, d in series.items()}}
    return merged


def _merge_histograms(name: str, series: Mapping[str, Mapping]) -> dict:
    keys: list[str] | None = None
    bounds: tuple | None = None
    counts: list[int] = []
    count, total = 0, 0.0
    lo, hi = math.inf, -math.inf
    exemplars: dict[str, dict] = {}
    nodes: dict[str, dict] = {}
    for node, data in series.items():
        buckets = data["buckets"]
        node_keys = sorted((k for k in buckets if k != "+inf"), key=float)
        node_bounds = tuple(float(k) for k in node_keys)
        if bounds is None:
            keys, bounds = node_keys, node_bounds
            counts = [0] * (len(bounds) + 1)
        elif node_bounds != bounds:
            raise ValueError(f"histogram {name!r} bucket bounds differ across nodes")
        for i, key in enumerate(node_keys):
            counts[i] += int(buckets[key])
        counts[-1] += int(buckets.get("+inf", 0))
        node_count = int(data["count"])
        count += node_count
        total += float(data["sum"])
        if node_count:
            lo = min(lo, float(data["min"]))
            hi = max(hi, float(data["max"]))
        nodes[node] = {"count": node_count, "p99": data.get("p99", 0.0)}
        for bucket_key, exemplar in (data.get("exemplars") or {}).items():
            kept = exemplars.get(bucket_key)
            if kept is None or exemplar["value"] > kept["value"]:
                exemplars[bucket_key] = {**exemplar, "node": node}
    data = {
        "type": "histogram",
        "count": count,
        "sum": round(total, 3),
        "min": round(lo, 3) if count else 0.0,
        "max": round(hi, 3) if count else 0.0,
        "p50": round(percentile_from_counts(bounds or (), counts, count, lo, hi, 0.50), 3),
        "p99": round(percentile_from_counts(bounds or (), counts, count, lo, hi, 0.99), 3),
        "buckets": {**{k: counts[i] for i, k in enumerate(keys or [])}, "+inf": counts[-1] if counts else 0},
        "nodes": nodes,
    }
    if exemplars:
        data["exemplars"] = exemplars
    return data


# -- exports ---------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def prometheus_text(
    per_node: Mapping[str, Mapping],
    statuses: Mapping[str, NodeStatus] | None = None,
    namespace: str = "repro",
) -> str:
    """Render per-node snapshots in the Prometheus text exposition format.

    *per_node* maps node name → metrics snapshot; the empty-string node
    name renders without a ``node`` label (the single-process ``/metrics``
    endpoint).  Counter series get the ``_total`` suffix, histograms the
    cumulative ``_bucket{le=…}`` / ``_sum`` / ``_count`` triple; dotted
    metric names sanitize to underscores under the ``repro_`` namespace.
    """
    lines: list[str] = []
    if statuses:
        up_name = f"{namespace}_node_up"
        lines.append(f"# TYPE {up_name} gauge")
        for node in sorted(statuses):
            status = statuses[node]
            up = 1 if status is NodeStatus.FRESH else 0
            lines.append(
                f'{up_name}{{node="{node}",status="{status.value}"}} {up}'
            )
    by_name: dict[str, list] = {}
    for node in sorted(per_node):
        for metric_name, data in per_node[node].items():
            by_name.setdefault(metric_name, []).append((node, data))
    for metric_name in sorted(by_name):
        series = by_name[metric_name]
        kind = series[0][1].get("type")
        prom = _sanitize(f"{namespace}_{metric_name}")
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            for node, data in series:
                lines.append(f"{prom}_total{_label(node)} {data['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            for node, data in series:
                lines.append(f"{prom}{_label(node)} {data['value']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            for node, data in series:
                buckets = data["buckets"]
                cumulative = 0
                for key in sorted((k for k in buckets if k != "+inf"), key=float):
                    cumulative += int(buckets[key])
                    lines.append(f"{prom}_bucket{_label(node, le=key)} {cumulative}")
                cumulative += int(buckets.get("+inf", 0))
                lines.append(f'{prom}_bucket{_label(node, le="+Inf")} {cumulative}')
                lines.append(f"{prom}_sum{_label(node)} {data['sum']}")
                lines.append(f"{prom}_count{_label(node)} {data['count']}")
    return "\n".join(lines) + "\n"


def _label(node: str, le: str | None = None) -> str:
    parts = []
    if node:
        parts.append(f'node="{node}"')
    if le is not None:
        parts.append(f'le="{le}"')
    return "{%s}" % ",".join(parts) if parts else ""


def render_top(snapshots: Mapping[str, NodeSnapshot]) -> str:
    """The console ``top`` table: one row per node plus the merged total.

    Leads with the fleet's request-path health (server requests/faults and
    handle-time p99 where instrumented) and falls back to instrument
    counts, so the table is useful before any traffic has flowed.
    """
    rows: list[list[str]] = []

    def metric_cell(metrics: Mapping, name: str, field: str = "value") -> str:
        data = metrics.get(name)
        if not isinstance(data, Mapping) or field not in data:
            return "-"
        value = data[field]
        return f"{value:.0f}" if isinstance(value, float) else str(value)

    for node in sorted(snapshots):
        snap = snapshots[node]
        age = "now" if snap.age_s == 0.0 else (
            f"{snap.age_s:.1f}s" if math.isfinite(snap.age_s) else "never"
        )
        rows.append(
            [
                node,
                snap.status.value,
                age,
                str(len(snap.metrics)),
                metric_cell(snap.metrics, "server.requests"),
                metric_cell(snap.metrics, "server.faults"),
                metric_cell(snap.metrics, "server.handle_us", "p99"),
            ]
        )
    merged = merge_metrics({n: s.metrics for n, s in snapshots.items() if s.metrics})
    rows.append(
        [
            "MERGED",
            f"{sum(1 for s in snapshots.values() if s.fresh)}/{len(snapshots)} fresh",
            "",
            str(len(merged)),
            metric_cell(merged, "server.requests"),
            metric_cell(merged, "server.faults"),
            metric_cell(merged, "server.handle_us", "p99"),
        ]
    )
    header = ["node", "status", "age", "instruments", "requests", "faults", "handle p99 us"]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    out = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
    for row in rows:
        out.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(out)
