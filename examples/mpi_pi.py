#!/usr/bin/env python
"""The MPI emulation plugin (§3): the classic cpi.c program on a DVM.

Loads ``hmpi`` on three kernels and runs a 6-rank world spread across
them: each rank integrates a strip of 4/(1+x²) and ``allreduce`` sums the
strips — the "legacy codes may run" promise of Section 3 for MPI programs.

Run:  python examples/mpi_pi.py
"""

import math

from repro import HarnessDvm, lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hmpi import SUM, MpiPlugin


def cpi(mpi, intervals):
    """One rank of the textbook MPI pi integration."""
    h = 1.0 / intervals
    local = sum(
        4.0 / (1.0 + ((i + 0.5) * h) ** 2)
        for i in range(mpi.rank, intervals, mpi.size)
    ) * h
    pi = mpi.allreduce(local, op=SUM)
    if mpi.rank == 0:
        print(f"  rank 0 of {mpi.size}: pi ≈ {pi:.10f} "
              f"(error {abs(pi - math.pi):.2e})")
    return pi


def main() -> None:
    network = lan(3)
    with HarnessDvm("mpi-demo", network) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, MpiPlugin(root_host="node0"))

        mpi = harness.kernel("node0").get_service("mpi")

        print("single-kernel world (4 ranks on node0):")
        mpi.run(cpi, world_size=4, args=(100_000,))

        print("cross-kernel world (6 ranks over 3 nodes):")
        placement = ["node0", "node0", "node1", "node1", "node2", "node2"]
        results = mpi.run("examples.mpi_pi:cpi", world_size=6,
                          args=(100_000,), placement=placement)
        assert len(set(results)) == 1  # allreduce agreed everywhere
        print(f"  all 6 ranks returned the same value: {results[0]:.10f}")
        print(f"  fabric carried {network.total_messages} messages, "
              f"{network.total_bytes} bytes")


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    main()
