"""A small thread-safe TTL cache.

Built for the DVM's registry-lookup fast path: lookups that hit the
in-memory namespace are cheap, but every remote invocation funnels through
``lookup → resolve → encode``, and under the multiplexed wire path that
per-call bookkeeping is the new hot spot.  Entries expire after ``ttl_s``
seconds and the whole cache can be invalidated cheaply when membership
events say the world changed.

The clock is injectable for tests; eviction is lazy (on access) plus a
cheap size cap so an unbounded key space cannot grow the dict forever.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable

__all__ = ["TtlCache"]


class TtlCache:
    """Map with per-entry expiry and whole-cache invalidation.

    ``get`` returns ``(hit, value)`` rather than using a sentinel so that
    ``None`` is a cacheable value.  ``ttl_s <= 0`` disables the cache: every
    ``get`` misses and ``put`` is a no-op, which lets callers keep one code
    path and make caching a constructor knob.
    """

    def __init__(
        self,
        ttl_s: float,
        max_entries: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._ttl_s = ttl_s
        self._max_entries = max_entries
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[Hashable, tuple[float, Any]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def ttl_s(self) -> float:
        return self._ttl_s

    @property
    def enabled(self) -> bool:
        return self._ttl_s > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """Return ``(True, value)`` on a live hit, else ``(False, None)``."""
        if not self.enabled:
            self.misses += 1
            return (False, None)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                expires_at, value = entry
                if now < expires_at:
                    self.hits += 1
                    return (True, value)
                del self._entries[key]
            self.misses += 1
            return (False, None)

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        now = self._clock()
        with self._lock:
            if len(self._entries) >= self._max_entries and key not in self._entries:
                # drop expired entries first; if none expired, drop oldest-expiry
                expired = [k for k, (t, _) in self._entries.items() if t <= now]
                for k in expired:
                    del self._entries[k]
                if len(self._entries) >= self._max_entries:
                    victim = min(self._entries, key=lambda k: self._entries[k][0])
                    del self._entries[victim]
            self._entries[key] = (now + self._ttl_s, value)

    def invalidate(self, key: Hashable | None = None) -> None:
        """Drop one *key* (if given) or every entry."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)
