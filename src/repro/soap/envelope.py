"""SOAP 1.1 envelope construction and parsing.

Implements the subset of SOAP 1.1 the paper's stack uses: RPC-style bodies,
``xsi:type``-annotated parameters, and ``<Fault>`` responses.  Envelopes are
built on the :mod:`repro.xmlkit` infoset and rendered/parsed with its
serializer, so the full XML cost (string building, escaping, expat parsing)
is paid exactly as a 2002 SOAP stack would pay it — that cost *is* the
phenomenon the C1/C2 benchmarks measure.
"""

from __future__ import annotations

from typing import Any

from repro.soap.values import element_to_value, value_to_element
from repro.util.errors import EncodingError, SoapFaultError
from repro.xmlkit import NS_SOAP_ENV, QName, XmlElement, parse, to_string

__all__ = [
    "build_call_envelope",
    "build_reply_envelope",
    "build_fault_envelope",
    "parse_call_envelope",
    "parse_reply_envelope",
    "SOAP_CONTENT_TYPE",
]

SOAP_CONTENT_TYPE = "text/xml; charset=utf-8"

_ENVELOPE = QName(NS_SOAP_ENV, "Envelope")
_BODY = QName(NS_SOAP_ENV, "Body")
_HEADER = QName(NS_SOAP_ENV, "Header")
_FAULT = QName(NS_SOAP_ENV, "Fault")


def _skeleton() -> tuple[XmlElement, XmlElement]:
    envelope = XmlElement(_ENVELOPE)
    body = envelope.element(_BODY)
    return envelope, body


def build_call_envelope(
    target: str,
    operation: str,
    args: tuple | list,
    array_mode: str = "base64",
) -> bytes:
    """Serialize an RPC call envelope.

    The body holds one ``<{operation}>`` element carrying a ``target``
    attribute (the Harness II port/instance address) and one ``<arg{i}>``
    child per positional argument.
    """
    envelope, body = _skeleton()
    call = body.element(QName("", operation), {"target": target})
    for i, arg in enumerate(args):
        call.append(value_to_element(f"arg{i}", arg, array_mode))
    return to_string(envelope, indent=False).encode("utf-8")


def parse_call_envelope(data: bytes | str) -> tuple[str, str, list]:
    """Parse a call envelope into ``(target, operation, args)``."""
    root = parse(data)
    body = _require_body(root)
    if not body.children:
        raise EncodingError("SOAP body is empty")
    call = body.children[0]
    target = call.get("target") or ""
    args = [element_to_value(child) for child in call.children]
    return target, call.name.local, args


def build_reply_envelope(result: Any, operation: str = "Response", array_mode: str = "base64") -> bytes:
    """Serialize a successful RPC reply with one ``<return>`` element."""
    envelope, body = _skeleton()
    reply = body.element(QName("", f"{operation}Response"))
    reply.append(value_to_element("return", result, array_mode))
    return to_string(envelope, indent=False).encode("utf-8")


def build_fault_envelope(faultcode: str, faultstring: str, detail: str = "") -> bytes:
    """Serialize a SOAP ``<Fault>`` reply."""
    envelope, body = _skeleton()
    fault = body.element(_FAULT)
    fault.element("faultcode", text=faultcode)
    fault.element("faultstring", text=faultstring)
    if detail:
        fault.element("detail", text=detail)
    return to_string(envelope, indent=False).encode("utf-8")


def parse_reply_envelope(data: bytes | str) -> Any:
    """Parse a reply envelope; raises :class:`SoapFaultError` for faults."""
    root = parse(data)
    body = _require_body(root)
    if not body.children:
        raise EncodingError("SOAP body is empty")
    first = body.children[0]
    if first.name == _FAULT or first.name.local == "Fault":
        code_el = first.find("faultcode")
        string_el = first.find("faultstring")
        detail_el = first.find("detail")
        raise SoapFaultError(
            code_el.text if code_el is not None else "soapenv:Server",
            string_el.text if string_el is not None else "unknown fault",
            detail_el.text if detail_el is not None else None,
        )
    ret = first.find("return")
    if ret is None:
        raise EncodingError("SOAP reply lacks a <return> element")
    return element_to_value(ret)


def _require_body(root: XmlElement) -> XmlElement:
    if root.name.local != "Envelope":
        raise EncodingError(f"not a SOAP envelope: <{root.name.local}>")
    body = root.find(_BODY) or root.find("Body")
    if body is None:
        raise EncodingError("SOAP envelope has no <Body>")
    return body
