"""Virtual network fabric: cost model, accounting, failures, partitions."""

import pytest

from repro.netsim.fabric import HostDownError, LinkModel, VirtualNetwork
from repro.transport.base import TransportMessage
from repro.util.errors import TransportError


def echo(message: TransportMessage) -> TransportMessage:
    return TransportMessage(message.content_type, message.payload)


@pytest.fixture
def net():
    network = VirtualNetwork()
    for name in ("a", "b", "c"):
        host = network.add_host(name)
        host.bind("svc", echo)
    return network


class TestLinkModel:
    def test_cost_formula(self):
        model = LinkModel(latency_s=0.01, bandwidth_Bps=1000)
        assert model.cost(500) == pytest.approx(0.01 + 0.5)

    def test_zero_bytes_cost_latency_only(self):
        assert LinkModel(latency_s=0.02, bandwidth_Bps=1e9).cost(0) == pytest.approx(0.02)

    def test_jitter_deterministic_with_seed(self):
        import random

        model = LinkModel(latency_s=0, bandwidth_Bps=1e9, jitter_s=0.01)
        a = model.cost(0, random.Random(7))
        b = model.cost(0, random.Random(7))
        assert a == b
        assert 0 <= a <= 0.01


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(TransportError):
            net.add_host("a")

    def test_unknown_host_rejected(self, net):
        with pytest.raises(TransportError):
            net.host("zzz")

    def test_loopback_is_cheap(self, net):
        lan = net.link_model("a", "b")
        loop = net.link_model("a", "a")
        assert loop.latency_s < lan.latency_s

    def test_link_override_symmetric(self, net):
        fast = LinkModel(latency_s=1e-6, bandwidth_Bps=1e10)
        net.set_link("a", "b", fast)
        assert net.link_model("a", "b") is fast
        assert net.link_model("b", "a") is fast
        assert net.link_model("a", "c") is not fast

    def test_link_override_asymmetric(self, net):
        fast = LinkModel(latency_s=1e-6)
        net.set_link("a", "b", fast, symmetric=False)
        assert net.link_model("a", "b") is fast
        assert net.link_model("b", "a") is not fast


class TestMessaging:
    def test_request_response(self, net):
        reply = net.request("a", "b", "svc", TransportMessage("t", b"ping"))
        assert reply.payload == b"ping"

    def test_unknown_endpoint(self, net):
        with pytest.raises(TransportError):
            net.request("a", "b", "ghost", TransportMessage("t", b""))

    def test_accounting_counts_both_directions(self, net):
        net.request("a", "b", "svc", TransportMessage("t", b"x" * 100))
        assert net.total_messages == 2  # request + response
        assert net.total_bytes == 200
        assert net.stats[("a", "b")].messages == 1
        assert net.stats[("b", "a")].messages == 1

    def test_post_counts_once(self, net):
        net.post("a", "b", "svc", TransportMessage("t", b"x" * 10))
        assert net.total_messages == 1
        assert net.total_bytes == 10

    def test_simulated_time_accumulates(self, net):
        before = net.simulated_time
        net.request("a", "b", "svc", TransportMessage("t", b"x" * 1000))
        assert net.simulated_time > before

    def test_charge_without_dispatch(self, net):
        net.charge("a", "b", 1_000_000)
        assert net.total_bytes == 1_000_000
        assert net.total_messages == 1

    def test_reset_stats(self, net):
        net.request("a", "b", "svc", TransportMessage("t", b"x"))
        net.reset_stats()
        assert net.total_messages == 0
        assert net.simulated_time == 0.0
        assert net.stats == {}


class TestFailures:
    def test_crashed_host_unreachable(self, net):
        net.host("b").crash()
        with pytest.raises(HostDownError):
            net.request("a", "b", "svc", TransportMessage("t", b""))

    def test_restart_heals(self, net):
        net.host("b").crash()
        net.host("b").restart()
        assert net.request("a", "b", "svc", TransportMessage("t", b"ok")).payload == b"ok"

    def test_partition_blocks_cross_group(self, net):
        net.partition({"a"}, {"b", "c"})
        with pytest.raises(HostDownError):
            net.request("a", "b", "svc", TransportMessage("t", b""))

    def test_partition_allows_within_group(self, net):
        net.partition({"a"}, {"b", "c"})
        assert net.request("b", "c", "svc", TransportMessage("t", b"in")).payload == b"in"

    def test_heal_restores(self, net):
        net.partition({"a"}, {"b", "c"})
        net.heal()
        assert net.request("a", "b", "svc", TransportMessage("t", b"up")).payload == b"up"

    def test_duplicate_endpoint_rejected(self, net):
        with pytest.raises(TransportError):
            net.host("a").bind("svc", echo)

    def test_unbind_then_rebind(self, net):
        net.host("a").unbind("svc")
        net.host("a").bind("svc", echo)


class TestTopologyBuilders:
    def test_lan(self):
        from repro.netsim.topology import lan

        network = lan(5)
        assert len(network.hosts()) == 5
        assert network.link_model("node0", "node4").latency_s == pytest.approx(1e-4)

    def test_wan_slower_than_lan(self):
        from repro.netsim.topology import lan, wan

        assert (
            wan(2).link_model("node0", "node1").latency_s
            > lan(2).link_model("node0", "node1").latency_s
        )

    def test_two_clusters(self):
        from repro.netsim.topology import two_clusters

        network = two_clusters(3)
        intra = network.link_model("a0", "a1")
        inter = network.link_model("a0", "b0")
        assert intra.latency_s < inter.latency_s

    def test_mesh_neighborhoods(self):
        from repro.netsim.topology import mesh_neighborhoods

        network = mesh_neighborhoods(6, neighborhood=1)
        near = network.link_model("node0", "node1")
        far = network.link_model("node0", "node3")
        assert near.latency_s < far.latency_s
        # ring wrap-around: node5 and node0 are neighbours
        assert network.link_model("node5", "node0").latency_s == near.latency_s
