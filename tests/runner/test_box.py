"""Runner boxes: the resource abstraction layer."""

import sys
import time

import pytest

from repro.netsim import lan
from repro.runner.box import SimHostRunnerBox, SubprocessRunnerBox, ThreadRunnerBox
from repro.runner.tasks import TaskKind, TaskSpec, TaskState
from repro.util.errors import RunnerError


def double(x):
    return x * 2


def fail():
    raise RuntimeError("task exploded")


class TestTaskSpec:
    def test_from_callable(self):
        spec = TaskSpec.from_callable(double, 4)
        assert spec.kind is TaskKind.CALLABLE
        assert spec.name == "double"
        assert spec.args == (4,)

    def test_from_import_path(self):
        spec = TaskSpec.from_import_path("tests.runner.test_box:double", 2)
        assert spec.kind is TaskKind.IMPORT_PATH

    def test_from_argv(self):
        spec = TaskSpec.from_argv(["echo", "hi"])
        assert spec.kind is TaskKind.ARGV
        assert spec.name == "echo"

    def test_terminal_states(self):
        assert TaskState.DONE.terminal
        assert TaskState.FAILED.terminal
        assert TaskState.STOPPED.terminal
        assert not TaskState.RUNNING.terminal
        assert not TaskState.PENDING.terminal


class TestThreadRunnerBox:
    def test_run_and_wait(self):
        box = ThreadRunnerBox()
        task_id = box.run(TaskSpec.from_callable(double, 21))
        status = box.wait(task_id)
        assert status.state is TaskState.DONE
        assert status.result == 42

    def test_failure_captured(self):
        box = ThreadRunnerBox()
        task_id = box.run(TaskSpec.from_callable(fail))
        status = box.wait(task_id)
        assert status.state is TaskState.FAILED
        assert "task exploded" in status.error

    def test_kwargs(self):
        box = ThreadRunnerBox()
        task_id = box.run(TaskSpec.from_callable(lambda a, b=1: a + b, 1, b=5))
        assert box.wait(task_id).result == 6

    def test_import_path_task(self):
        box = ThreadRunnerBox()
        task_id = box.run(TaskSpec.from_import_path("math:sqrt", 81))
        assert box.wait(task_id).result == 9.0

    def test_argv_rejected(self):
        box = ThreadRunnerBox()
        with pytest.raises(RunnerError):
            box.run(TaskSpec.from_argv(["ls"]))

    def test_unknown_task_id(self):
        with pytest.raises(RunnerError):
            ThreadRunnerBox().status("task-999999")

    def test_stop_pending_task(self):
        box = ThreadRunnerBox()
        gate = {"go": False}

        def slow():
            while not gate["go"]:
                time.sleep(0.005)
            return "done"

        task_id = box.run(TaskSpec.from_callable(slow))
        assert box.stop(task_id) is True
        assert box.status(task_id).state is TaskState.STOPPED
        gate["go"] = True
        assert box.stop(task_id) is False  # already terminal

    def test_describe(self):
        box = ThreadRunnerBox(name="r1")
        box.wait(box.run(TaskSpec.from_callable(double, 1)))
        info = box.describe()
        assert info["name"] == "r1"
        assert info["kind"] == "thread"
        assert info["total_tasks"] == 1
        assert info["active_tasks"] == 0

    def test_tasks_listing(self):
        box = ThreadRunnerBox()
        box.wait(box.run(TaskSpec.from_callable(double, 1)))
        box.wait(box.run(TaskSpec.from_callable(double, 2)))
        assert len(box.tasks()) == 2

    def test_bad_import_path(self):
        box = ThreadRunnerBox()
        with pytest.raises(RunnerError):
            box.run(TaskSpec.from_import_path("nosuch.module:fn"))


class TestSubprocessRunnerBox:
    def test_run_python_subprocess(self):
        box = SubprocessRunnerBox()
        task_id = box.run(TaskSpec.from_argv([sys.executable, "-c", "print('hello')"]))
        status = box.wait(task_id, timeout=30)
        assert status.state is TaskState.DONE
        assert status.result.strip() == "hello"

    def test_nonzero_exit_is_failure(self):
        box = SubprocessRunnerBox()
        task_id = box.run(TaskSpec.from_argv([sys.executable, "-c", "import sys; sys.exit(3)"]))
        status = box.wait(task_id, timeout=30)
        assert status.state is TaskState.FAILED

    def test_stderr_captured(self):
        box = SubprocessRunnerBox()
        task_id = box.run(TaskSpec.from_argv(
            [sys.executable, "-c", "import sys; print('bad', file=sys.stderr); sys.exit(1)"]
        ))
        status = box.wait(task_id, timeout=30)
        assert "bad" in status.error

    def test_callable_rejected(self):
        with pytest.raises(RunnerError):
            SubprocessRunnerBox().run(TaskSpec.from_callable(double, 1))

    def test_resource_kind(self):
        assert SubprocessRunnerBox().describe()["kind"] == "subprocess"


class TestSimHostRunnerBox:
    def test_runs_and_charges_fabric(self):
        net = lan(2)
        box = SimHostRunnerBox(net, "node1")
        before = net.total_bytes
        task_id = box.run(TaskSpec.from_callable(double, 10))
        status = box.status(task_id)
        assert status.state is TaskState.DONE
        assert status.result == 20
        assert net.total_bytes > before

    def test_failure(self):
        net = lan(1)
        box = SimHostRunnerBox(net, "node0")
        task_id = box.run(TaskSpec.from_callable(fail))
        assert box.status(task_id).state is TaskState.FAILED

    def test_name_defaults_to_host(self):
        net = lan(1)
        assert "node0" in SimHostRunnerBox(net, "node0").name
