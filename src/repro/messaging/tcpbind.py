"""Mailbox subscriptions over TCP protocol v2 — multiplexed, with server push.

One pooled socket carries many subscriptions.  Requests
(open/publish/subscribe/ack/…) are ordinary v2 request/response frames,
XDR-packed dicts under content type ``application/x-harness-mbox``.
Deliveries arrive as **unsolicited push frames** (content type
``application/x-harness-mbox-push``) written through the reactor's
per-connection outbox, with the frame's correlation id carrying the
*subscription* id instead of echoing a request — which is why the generic
:class:`~repro.transport.tcp.TcpTransport` client (which drops unknown
correlation ids as late replies) is not reused here: the
:class:`MailboxTcpClient` reader thread demuxes by content type first.

Flow control is credit-based: a subscription is opened with ``prefetch``
credits, each push spends one, each ack replenishes one.  A consumer that
stops acking therefore stops receiving — for ``first-reader`` mailboxes
its share of the backlog stays in the *shared* ready queue where other
consumers can claim it, and for ``all-readers``/``tap`` the broker-side
overflow policy (not the socket) bounds its private queue.  Back-pressure
and loss semantics live entirely in the broker; the wire only paces.

Consumer death is the TCP connection dying: the reactor's
``on_conn_close`` hook closes every subscription owned by that connection
with ``requeue=True``, so unacked messages are redelivered to the
survivors — the same contract the sim binding gets from lease expiry.

Typed errors cross the wire as structured fault payloads:
``MailboxFullError`` raised broker-side on a ``reject`` overflow reaches
the publishing *client* as ``MailboxFullError`` with the original mailbox
and capacity, and a ``block-with-deadline`` expiry as
:class:`HarnessTimeoutError`.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Any

from repro.encoding.xdr import pack_value, unpack_value
from repro.messaging.broker import Delivery, Message, MessageBroker, Subscription
from repro.obs import trace as _trace
from repro.transport import reactor as _reactor
from repro.transport import tcp as _tcp
from repro.transport.base import TransportMessage
from repro.util.errors import (
    HarnessTimeoutError,
    MailboxFullError,
    MessagingError,
    TransportClosedError,
    TransportError,
)

__all__ = ["MailboxTcpServer", "MailboxTcpClient", "CT_MBOX", "CT_MBOX_PUSH"]

CT_MBOX = "application/x-harness-mbox"
CT_MBOX_PUSH = "application/x-harness-mbox-push"

#: Default credits granted to a new subscription (pushes in flight unacked).
DEFAULT_PREFETCH = 32

# Typed errors that may cross the wire, by name.
_ERROR_TYPES = {
    "MailboxFullError": MailboxFullError,
    "HarnessTimeoutError": HarnessTimeoutError,
    "MessagingError": MessagingError,
}


def _fault_payload(exc: Exception) -> dict:
    out = {"error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, MailboxFullError):
        out["mailbox"] = exc.mailbox
        out["capacity"] = exc.capacity
    return out


def _raise_fault(reply: dict) -> None:
    name = reply.get("error", "MessagingError")
    if name == "MailboxFullError":
        raise MailboxFullError(reply.get("mailbox", "?"), int(reply.get("capacity", 0)))
    raise _ERROR_TYPES.get(name, MessagingError)(reply.get("message", name))


# -- server -------------------------------------------------------------------


class _MboxJob(_reactor.Job):
    """One reassembled request frame; carries its connection for push setup."""

    __slots__ = ("corr_id", "message", "trace", "conn")

    wants_conn = True

    def __init__(self, corr_id: int, message: TransportMessage, trace):
        self.corr_id = corr_id
        self.message = message
        self.trace = trace
        self.conn = None

    def run(self, app_handler):
        return app_handler(self)

    def busy_reply(self):
        payload = pack_value({"error": "ServerBusyError",
                              "message": "mailbox server at capacity"})
        return (
            _tcp._frame_prefix(self.corr_id, CT_MBOX, _tcp.STATUS_BUSY, len(payload)),
            payload,
        )


class _MboxFrameParser(_tcp._FrameParser):
    """v2 frame reassembly producing :class:`_MboxJob` instead of RPC jobs."""

    __slots__ = ()

    def advance(self, n: int) -> list:
        jobs = super().advance(n)
        return [_MboxJob(j.corr_id, j.message, j.trace) for j in jobs]


class _TcpSub:
    """Server-side record tying a broker subscription to a connection."""

    __slots__ = ("sub", "conn", "credits", "mailbox")

    def __init__(self, sub: Subscription, conn, credits: int):
        self.sub = sub
        self.conn = conn
        self.credits = credits
        self.mailbox = sub.mailbox


class MailboxTcpServer:
    """Serves a :class:`MessageBroker` over TCP v2 with push deliveries."""

    def __init__(self, broker: MessageBroker, address=("127.0.0.1", 0),
                 workers: int = 8, **reactor_opts):
        self.broker = broker
        self._lock = threading.Lock()
        self._subs: dict[int, _TcpSub] = {}          # sub_id -> record
        self._by_conn: dict[int, set[int]] = {}      # conn key -> sub ids
        self._server = _reactor.ReactorServer(
            address, self._handle_job, _MboxFrameParser,
            workers=workers, name="mbox", **reactor_opts,
        )
        self._server.on_conn_close = self._conn_closed
        broker.on_wakeup = self._pump_mailbox
        self.address = self._server.address

    def close(self, drain_s: float = 1.0) -> None:
        self.broker.on_wakeup = None
        self._server.close(drain_s)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- request handling ------------------------------------------------------

    def _handle_job(self, job: _MboxJob):
        token = None
        if _trace.ENABLED and job.trace is not None:
            token = _trace.activate_wire(job.trace, _trace.from_bytes)
        try:
            request = unpack_value(bytes(job.message.payload))
            reply = self._dispatch(request, job)
            status = _tcp.STATUS_OK
        except Exception as exc:
            reply = _fault_payload(exc)
            status = _tcp.STATUS_FAULT
        finally:
            if token is not None:
                _trace.deactivate(token)
        payload = pack_value(reply)
        prefix = _tcp._frame_prefix(job.corr_id, CT_MBOX, status, len(payload))
        return (prefix, payload)

    def _dispatch(self, request: dict, job: _MboxJob) -> dict:
        op = request.get("op")
        broker = self.broker
        if op == "open":
            broker.open(request["name"], mode=request.get("mode", "first-reader"),
                        capacity=int(request.get("capacity", 64)),
                        overflow=request.get("overflow", "reject"))
            return {"ok": True}
        if op == "publish":
            trace = request.get("trace") or None
            if trace is None and _trace.ENABLED:
                ctx = _trace.current()
                trace = _trace.to_bytes(ctx) if ctx is not None else None
            seq = broker.publish(request["name"], request.get("payload"),
                                 timeout_s=request.get("timeout_s"),
                                 publisher=request.get("publisher", ""),
                                 trace=trace)
            return {"ok": True, "seq": seq}
        if op == "subscribe":
            sub = broker.subscribe(request["name"], request.get("subscriber", ""))
            record = _TcpSub(sub, job.conn, int(request.get("prefetch", DEFAULT_PREFETCH)))
            with self._lock:
                self._subs[sub.sub_id] = record
                self._by_conn.setdefault(job.conn.key, set()).add(sub.sub_id)
            self._pump_sub(record)
            return {"ok": True, "sub_id": sub.sub_id}
        if op == "unsubscribe":
            record = self._take_sub(int(request["sub_id"]))
            if record is not None:
                record.sub.close(requeue=bool(request.get("requeue", True)))
            return {"ok": True}
        if op == "ack":
            record = self._get_sub(int(request["sub_id"]))
            record.sub.ack(int(request["delivery_id"]))
            with self._lock:
                record.credits += 1
            self._pump_sub(record)
            return {"ok": True}
        if op == "nack":
            record = self._get_sub(int(request["sub_id"]))
            record.sub.nack(int(request["delivery_id"]))
            with self._lock:
                record.credits += 1
            self._pump_sub(record)
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": broker.stats(request["name"]).as_dict()}
        raise MessagingError(f"unknown mailbox op {op!r}")

    def _get_sub(self, sub_id: int) -> _TcpSub:
        with self._lock:
            record = self._subs.get(sub_id)
        if record is None:
            raise MessagingError(f"unknown subscription {sub_id}")
        return record

    def _take_sub(self, sub_id: int) -> _TcpSub | None:
        with self._lock:
            record = self._subs.pop(sub_id, None)
            if record is not None:
                owned = self._by_conn.get(record.conn.key)
                if owned is not None:
                    owned.discard(sub_id)
        return record

    # -- push pump -------------------------------------------------------------

    def _pump_mailbox(self, name: str) -> None:
        """Broker wakeup: new deliveries may be available on *name*."""
        with self._lock:
            records = [r for r in self._subs.values() if r.mailbox == name]
        for record in records:
            self._pump_sub(record)

    def _pump_sub(self, record: _TcpSub) -> None:
        while True:
            with self._lock:
                if record.credits <= 0 or record.sub.sub_id not in self._subs:
                    return
                record.credits -= 1
            try:
                delivery = record.sub.try_receive()
            except MessagingError:
                delivery = None  # subscription died under us
            if delivery is None:
                with self._lock:
                    record.credits += 1
                return
            msg = delivery.message
            body = pack_value({
                "mailbox": delivery.mailbox,
                "delivery_id": delivery.delivery_id,
                "seq": msg.seq,
                "payload": msg.payload,
                "publisher": msg.publisher,
                "redelivered": delivery.redelivered,
                "attempt": delivery.attempt,
            })
            prefix = _tcp._frame_prefix(
                record.sub.sub_id, CT_MBOX_PUSH, _tcp.STATUS_OK, len(body),
                trace=msg.trace or b"",
            )
            if not self._server.push(record.conn, (prefix, body)):
                # connection died between pop and push: _conn_closed will
                # requeue this delivery along with the rest of the unacked
                return

    def _conn_closed(self, conn) -> None:
        with self._lock:
            sub_ids = self._by_conn.pop(conn.key, set())
            records = [self._subs.pop(s) for s in sub_ids if s in self._subs]
        for record in records:
            record.sub.close(requeue=True)


# -- client -------------------------------------------------------------------


class _ClientSub:
    """Client-side subscription state fed by the reader thread."""

    __slots__ = ("sub_id", "mailbox", "queue", "closed")

    def __init__(self, sub_id: int, mailbox: str):
        self.sub_id = sub_id
        self.mailbox = mailbox
        self.queue: deque = deque()
        self.closed = False


class TcpSubscription:
    """Client handle mirroring :class:`repro.messaging.broker.Subscription`."""

    def __init__(self, client: "MailboxTcpClient", state: _ClientSub):
        self._client = client
        self._state = state
        self.mailbox = state.mailbox
        self.sub_id = state.sub_id

    def receive(self, timeout: float | None = None) -> Delivery:
        return self._client._receive(self._state, timeout)

    def try_receive(self) -> Delivery | None:
        try:
            return self._client._receive(self._state, 0)
        except HarnessTimeoutError:
            return None

    def ack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._client._request({"op": "ack", "sub_id": self.sub_id,
                               "delivery_id": delivery_id})

    def nack(self, delivery: Delivery | int) -> None:
        delivery_id = delivery.delivery_id if isinstance(delivery, Delivery) else delivery
        self._client._request({"op": "nack", "sub_id": self.sub_id,
                               "delivery_id": delivery_id})

    def close(self, requeue: bool = True) -> None:
        if self._state.closed:
            return
        self._state.closed = True
        try:
            self._client._request({"op": "unsubscribe", "sub_id": self.sub_id,
                                   "requeue": requeue})
        except (TransportError, OSError):
            pass  # connection already gone: the server requeued on close
        self._client._drop_sub(self.sub_id)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class MailboxTcpClient:
    """One socket, many subscriptions; deliveries pushed by the server.

    The reader thread demuxes frames by content type: push frames feed
    subscription queues (correlation id = subscription id), everything
    else resolves a pending request by correlation id.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.timeout_s = timeout_s
        self._wlock = threading.Lock()
        self._sub_lock = threading.Lock()  # serializes subscribe handshakes
        self._cond = threading.Condition()
        self._pending: dict[int, list] = {}          # corr_id -> [reply|None, status]
        self._subs: dict[int, _ClientSub] = {}
        self._next_corr = 0
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        name="mbox-client-reader", daemon=True)
        self._reader.start()

    # -- public API ------------------------------------------------------------

    def open(self, name: str, mode: str = "first-reader", capacity: int = 64,
             overflow: str = "reject") -> None:
        self._request({"op": "open", "name": name, "mode": mode,
                       "capacity": capacity, "overflow": overflow})

    def publish(self, name: str, payload: Any, timeout_s: float | None = None,
                publisher: str = "") -> int:
        trace = b""
        if _trace.ENABLED:
            ctx = _trace.current()
            if ctx is not None:
                trace = _trace.to_bytes(ctx)
        # a blocked publish parks on a server worker until its deadline;
        # give the reply wait that long plus the transport budget
        wait = self.timeout_s + (timeout_s or 0.0)
        reply = self._request({"op": "publish", "name": name, "payload": payload,
                               "timeout_s": timeout_s, "publisher": publisher,
                               "trace": trace}, wait_s=wait)
        return int(reply["seq"])

    def subscribe(self, name: str, subscriber: str = "",
                  prefetch: int = DEFAULT_PREFETCH) -> TcpSubscription:
        with self._sub_lock:  # one handshake at a time owns the placeholder
            state_holder = _ClientSub(0, name)
            # register before the reply lands: the first pushes can beat it
            with self._cond:
                self._subs[-1] = state_holder  # placeholder until the id is known
            try:
                reply = self._request({"op": "subscribe", "name": name,
                                       "subscriber": subscriber,
                                       "prefetch": prefetch})
            finally:
                with self._cond:
                    self._subs.pop(-1, None)
            sub_id = int(reply["sub_id"])
            state_holder.sub_id = sub_id
            with self._cond:
                # adopt any pushes that raced ahead under the placeholder
                self._subs[sub_id] = state_holder
                self._cond.notify_all()
        return TcpSubscription(self, state_holder)

    def stats(self, name: str) -> dict:
        return self._request({"op": "stats", "name": name})["stats"]

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        # shutdown (not just close) so the FIN reaches the server and the
        # reader thread's blocking recv wakes even mid-call
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- request/reply ---------------------------------------------------------

    def _request(self, body: dict, wait_s: float | None = None) -> dict:
        with self._cond:
            if self._closed:
                raise TransportClosedError("mailbox client is closed")
            self._next_corr += 1
            corr_id = self._next_corr
            slot: list = [None, None]
            self._pending[corr_id] = slot
        payload = pack_value(body)
        prefix = _tcp._frame_prefix(corr_id, CT_MBOX, _tcp.STATUS_OK, len(payload))
        try:
            with self._wlock:
                _tcp._send_buffers(self._sock, (prefix, payload))
        except (OSError, socket.timeout) as exc:
            with self._cond:
                self._pending.pop(corr_id, None)
            raise TransportClosedError(f"mailbox request failed: {exc}") from exc
        deadline_s = self.timeout_s if wait_s is None else wait_s
        with self._cond:
            ok = self._cond.wait_for(
                lambda: slot[1] is not None or self._closed, timeout=deadline_s)
            self._pending.pop(corr_id, None)
            if slot[1] is None:
                if self._closed:
                    raise TransportClosedError("mailbox connection closed")
                if not ok:
                    raise HarnessTimeoutError(
                        f"mailbox op {body.get('op')!r} got no reply in {deadline_s}s")
        reply, status = slot
        if status == _tcp.STATUS_BUSY:
            from repro.util.errors import ServerBusyError
            raise ServerBusyError(reply.get("message", "server busy"))
        if status != _tcp.STATUS_OK:
            _raise_fault(reply)
        return reply

    # -- deliveries ------------------------------------------------------------

    def _receive(self, state: _ClientSub, timeout: float | None) -> Delivery:
        with self._cond:
            if state.queue:
                return state.queue.popleft()
            if timeout is not None and timeout <= 0:
                raise HarnessTimeoutError(
                    f"receive on {state.mailbox!r} timed out after {timeout}s "
                    f"(queue empty)")
            ok = self._cond.wait_for(
                lambda: state.queue or state.closed or self._closed,
                timeout=timeout)
            if state.queue:
                return state.queue.popleft()
            if state.closed or self._closed:
                raise TransportClosedError("subscription closed")
            raise HarnessTimeoutError(
                f"receive on {state.mailbox!r} timed out after {timeout}s")

    def _drop_sub(self, sub_id: int) -> None:
        with self._cond:
            self._subs.pop(sub_id, None)
            self._cond.notify_all()

    def _read_loop(self) -> None:
        self._sock.settimeout(None)
        try:
            while True:
                corr_id, message, status, trace = _tcp._read_frame(self._sock)
                if message.content_type == CT_MBOX_PUSH:
                    self._on_push(corr_id, message, trace)
                else:
                    self._on_reply(corr_id, message, status)
        except (TransportClosedError, TransportError, ConnectionError, OSError):
            pass
        finally:
            with self._cond:
                self._closed = True
                for state in self._subs.values():
                    state.closed = True
                self._cond.notify_all()

    def _on_push(self, sub_id: int, message: TransportMessage, trace) -> None:
        body = unpack_value(bytes(message.payload))
        msg = Message(int(body["seq"]), body.get("payload"),
                      body.get("publisher", ""), trace or b"", 0.0)
        delivery = Delivery(msg, body["mailbox"], int(body["delivery_id"]),
                            bool(body.get("redelivered")), int(body.get("attempt", 1)))
        with self._cond:
            state = self._subs.get(sub_id)
            if state is None:
                state = self._subs.get(-1)  # subscribe reply still in flight
            if state is None or state.closed:
                return  # late push after unsubscribe: server will requeue on close
            state.queue.append(delivery)
            self._cond.notify_all()

    def _on_reply(self, corr_id: int, message: TransportMessage, status: int) -> None:
        body = unpack_value(bytes(message.payload))
        with self._cond:
            slot = self._pending.get(corr_id)
            if slot is None:
                return  # late reply for an abandoned request
            slot[0] = body
            slot[1] = status
            self._cond.notify_all()
