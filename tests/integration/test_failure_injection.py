"""Failure injection across the stack: crashes, partitions, recovery.

The paper motivates Harness with "improving robustness … and adaptation";
these tests drive the failure paths: node crashes mid-protocol, network
partitions, service faults, and recovery after healing.
"""

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.dvm.state import DecentralizedState, FullSynchronyState, NeighborhoodState
from repro.netsim import lan
from repro.netsim.fabric import HostDownError
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import CoherencyError, PluginError


class TestCoherencyUnderPartition:
    def test_full_synchrony_update_fails_cleanly_across_partition(self):
        net = lan(4)
        members = [f"node{i}" for i in range(4)]
        protocol = FullSynchronyState(net, members)
        protocol.update("node0", "k", "before")
        net.partition({"node0", "node1"}, {"node2", "node3"})
        with pytest.raises(CoherencyError):
            protocol.update("node0", "k", "after")
        # pre-partition state still readable locally everywhere
        for member in members:
            assert protocol.get(member, "k") in ("before", "after")

    def test_decentralized_survives_partition_with_stale_reads(self):
        net = lan(4)
        members = [f"node{i}" for i in range(4)]
        protocol = DecentralizedState(net, members)
        protocol.update("node0", "k", "v1")
        net.partition({"node0", "node1"}, {"node2", "node3"})
        protocol.update("node0", "k", "v2")  # local write always succeeds
        # same side sees the new value; the other side sees nothing newer
        assert protocol.get("node1", "k") == "v2"
        assert protocol.get("node2", "k") is None  # v1 only lived on node0
        net.heal()
        assert protocol.get("node3", "k") == "v2"  # convergence after heal

    def test_neighborhood_heals_after_partition(self):
        net = lan(6)
        members = [f"node{i}" for i in range(6)]
        protocol = NeighborhoodState(net, members, radius=1)
        net.partition({"node0", "node1", "node5"}, {"node2", "node3", "node4"})
        protocol.update("node0", "k", "v")  # replicates within its side
        assert protocol.get("node1", "k") == "v"
        net.heal()
        assert protocol.get("node3", "k") == "v"  # flood finds it post-heal


class TestDvmNodeCrash:
    def test_remote_call_to_crashed_host_fails_fast(self, rng):
        net = lan(3)
        with HarnessDvm("crash1", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            net.host("node1").crash()
            with pytest.raises(HostDownError):
                stub.multiply(np.eye(2), np.eye(2))
            stub.close()

    def test_service_recovers_after_restart(self, rng):
        net = lan(3)
        with HarnessDvm("crash2", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            net.host("node1").crash()
            with pytest.raises(HostDownError):
                stub.multiply(np.eye(2), np.eye(2))
            net.host("node1").restart()
            a = rng.random((3, 3))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()

    def test_migration_away_from_failing_node(self):
        """Adaptation: move a component off a node before taking it down."""
        net = lan(3)
        with HarnessDvm("crash3", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", CounterService)
            harness.stub("node1", "CounterService").increment(4)
            harness.move("CounterService", "node2")
            net.host("node1").crash()
            stub = harness.stub("node0", "CounterService")
            assert stub.value() == 4  # state survived the evacuation
            stub.close()

    def test_kernel_message_to_crashed_host(self):
        net = lan(2)
        with HarnessDvm("crash4", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import PingPlugin

            harness.load_plugin_everywhere(PingPlugin)
            net.host("node1").crash()
            ping = harness.kernel("node0").get_service("ping")
            with pytest.raises(HostDownError):
                ping.ping("node1", 1)


class TestServiceFaults:
    def test_component_exception_does_not_kill_the_endpoint(self, rng):
        net = lan(2)
        with HarnessDvm("fault1", net) as harness:
            harness.add_nodes("node0", "node1")
            harness.deploy("node1", MatMul)
            stub = harness.stub("node0", "MatMul")
            from repro.util.errors import EncodingError

            with pytest.raises(EncodingError):
                stub.getResult(np.arange(3.0), np.arange(3.0))  # not square
            # endpoint still serves good requests afterwards
            a = rng.random((2, 2))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()

    def test_pvm_recv_timeout_is_clean(self):
        net = lan(2)
        with HarnessDvm("fault2", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import BASELINE_PLUGINS
            from repro.plugins.hpvmd import PvmDaemonPlugin
            from repro.util.errors import HarnessTimeoutError

            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            harness.load_plugin("node0", PvmDaemonPlugin())
            pvmd = harness.kernel("node0").get_service("pvm")
            console = pvmd.mytid()
            with pytest.raises(HarnessTimeoutError):
                pvmd._recv_for(console, None, 0.05)

    def test_mpi_rank_failure_reported_with_rank_id(self):
        net = lan(1)
        with HarnessDvm("fault3", net) as harness:
            harness.add_nodes("node0")
            from repro.plugins import BASELINE_PLUGINS
            from repro.plugins.hmpi import MpiPlugin

            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            harness.load_plugin("node0", MpiPlugin())
            mpi = harness.kernel("node0").get_service("mpi")

            def crash_rank_one(ctx):
                if ctx.rank == 1:
                    raise RuntimeError("simulated rank crash")
                return "ok"

            with pytest.raises(PluginError, match="rank 1"):
                mpi.run(crash_rank_one, world_size=3)


class TestRegistryRecovery:
    def test_reregistration_after_neighborhood_node_loss(self):
        from repro.registry.distributed import NeighborhoodLookup
        from repro.tools.wsdlgen import generate_wsdl

        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=1)
        lookup.register("node0", generate_wsdl(MatMul, bindings=("soap",)))
        # both node0 and its replica die
        net.host("node0").crash()
        net.host("node1").crash()
        assert lookup.discover("node3", "//portType[@name='MatMulPortType']") == []
        # supplier recovers and re-registers elsewhere
        lookup.register("node2", generate_wsdl(MatMul, bindings=("soap",)))
        found = lookup.discover("node3", "//portType[@name='MatMulPortType']")
        assert [d.name for d in found] == ["MatMul"]
