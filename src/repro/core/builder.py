"""HarnessDvm: the assembled Harness II system (DVM + kernels + plugins).

Figure 1's construction sequence — "DVM's are created by users and
'constructed' by first adding nodes … and subsequently deploying plugins on
each node.  Some plugins may be node specific while others are replicated"
— maps to :meth:`HarnessDvm.add_node`, :meth:`load_plugin` (node-specific)
and :meth:`load_plugin_everywhere` (replicated baseline).
"""

from __future__ import annotations

from typing import Callable

from repro.container.component import ComponentHandle
from repro.core.kernel import HarnessKernel
from repro.core.plugin import Plugin
from repro.dvm.gossip import GossipState, NeighborhoodGossipState
from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import (
    DecentralizedState,
    DvmStateProtocol,
    FullSynchronyState,
    NeighborhoodState,
)
from repro.netsim.fabric import VirtualNetwork
from repro.util.errors import DvmError
from repro.util.events import EventBus

__all__ = ["HarnessDvm", "COHERENCY_SCHEMES"]

#: scheme name → protocol factory taking the network
COHERENCY_SCHEMES: dict[str, Callable[[VirtualNetwork], DvmStateProtocol]] = {
    "full-synchrony": lambda network: FullSynchronyState(network),
    "decentralized": lambda network: DecentralizedState(network),
    "neighborhood": lambda network: NeighborhoodState(network),
    "gossip": lambda network: GossipState(network),
    "neighborhood-gossip": lambda network: NeighborhoodGossipState(network),
}


class HarnessDvm:
    """A complete Harness II deployment: one kernel per node over a DVM.

    ``coherency`` selects the DVM-enabling component by name; applications
    never see the difference (experiment C7).
    """

    def __init__(
        self,
        name: str,
        network: VirtualNetwork,
        coherency: str = "full-synchrony",
        neighborhood_radius: int = 2,
        gossip_fanout: int = 2,
        gossip_interval_s: float = 0.25,
        gossip_seed: int = 0,
        events: EventBus | None = None,
        clock=None,
        lookup_cache_ttl_s: float = 2.0,
    ):
        if coherency not in COHERENCY_SCHEMES:
            raise DvmError(
                f"unknown coherency scheme {coherency!r} "
                f"(available: {sorted(COHERENCY_SCHEMES)})"
            )
        if coherency == "neighborhood":
            factory: Callable[[VirtualNetwork], DvmStateProtocol] = (
                lambda net: NeighborhoodState(net, radius=neighborhood_radius)
            )
        elif coherency == "gossip":
            factory = lambda net: GossipState(
                net,
                fanout=gossip_fanout,
                interval_s=gossip_interval_s,
                seed=gossip_seed,
            )
        elif coherency == "neighborhood-gossip":
            factory = lambda net: NeighborhoodGossipState(
                net,
                radius=neighborhood_radius,
                fanout=gossip_fanout,
                interval_s=gossip_interval_s,
                seed=gossip_seed,
            )
        else:
            factory = COHERENCY_SCHEMES[coherency]
        self.name = name
        self.network = network
        self.events = events or EventBus()
        self.dvm = DistributedVirtualMachine(
            name,
            network,
            factory,
            events=self.events,
            clock=clock,
            lookup_cache_ttl_s=lookup_cache_ttl_s,
        )
        self.kernels: dict[str, HarnessKernel] = {}
        self.detector = None  # set by enable_self_healing
        self.failover = None
        # an evicted node's kernel must not linger in the kernel table
        self._death_sub = self.events.subscribe("dvm.member.dead", self._on_member_dead)
        self._gossip_sub = None
        protocol = self.dvm.protocol
        if isinstance(protocol, GossipState):
            # epidemic schemes keep reads local; control-plane publications
            # (deploy/publish/move) are rare enough to pay an anti-entropy
            # sweep so a fresh record is visible from any node immediately
            self._gossip_sub = self.events.subscribe(
                "dvm.component.deployed", lambda event: protocol.quiesce()
            )

    # -- construction -----------------------------------------------------------

    def add_node(self, host_name: str) -> HarnessKernel:
        """Enroll a host: boot a kernel there and join the DVM."""
        if host_name in self.kernels:
            raise DvmError(f"node {host_name!r} already has a kernel")
        kernel = HarnessKernel(host_name, network=self.network, events=self.events)
        self.kernels[host_name] = kernel
        self.dvm.add_node(host_name, container=kernel.container)
        return kernel

    def add_nodes(self, *host_names: str) -> list[HarnessKernel]:
        return [self.add_node(h) for h in host_names]

    def kernel(self, host_name: str) -> HarnessKernel:
        try:
            return self.kernels[host_name]
        except KeyError:
            raise DvmError(f"no kernel on {host_name!r}") from None

    # -- plugins --------------------------------------------------------------------

    def load_plugin(self, host_name: str, plugin: Plugin | type | str) -> Plugin:
        """Load a node-specific plugin."""
        return self.kernel(host_name).load_plugin(plugin)

    def load_plugin_everywhere(self, plugin: type | str) -> dict[str, Plugin]:
        """Load a replicated plugin on every enrolled node (the 'consistent
        baseline for common parallel processing applications')."""
        return {host: kernel.load_plugin(plugin) for host, kernel in self.kernels.items()}

    # -- component operations (delegate to the DVM) --------------------------------------

    def deploy(self, host_name: str, component, **kwargs) -> ComponentHandle:
        return self.dvm.deploy(host_name, component, **kwargs)

    def undeploy(self, host_name: str, service_name: str) -> None:
        self.dvm.undeploy(host_name, service_name)

    def lookup(self, from_node: str, service_name: str):
        return self.dvm.lookup(from_node, service_name)

    def stub(self, from_node: str, service_name: str, prefer=None, policy=None, resilient=False):
        return self.dvm.stub(
            from_node, service_name, prefer=prefer, policy=policy, resilient=resilient
        )

    def status(self, from_node: str) -> dict:
        status = self.dvm.status(from_node)
        status["plugins"] = {
            host: kernel.plugins() for host, kernel in self.kernels.items()
        }
        return status

    def metrics_snapshot(self, prefix: str = "") -> dict:
        return self.dvm.metrics_snapshot(prefix)

    def move(self, service_name: str, to_node: str) -> ComponentHandle:
        from repro.core.migration import move_component

        return move_component(self.dvm, service_name, to_node)

    # -- self-healing -----------------------------------------------------------------

    def enable_self_healing(
        self,
        observer: str | None = None,
        suspect_after: int = 2,
        evict_after: int = 3,
        heartbeat_interval_s: float = 0.5,
        checkpoint_interval_s: float = 0.5,
        checkpoint_home: str | None = None,
        indirect_probes: int = 0,
        sample: int | None = None,
        coalesce_after: int = 8,
        start_threads: bool = False,
    ):
        """Attach a failure detector and failover manager to this deployment.

        With ``start_threads=False`` (the default, and what tests use) the
        caller drives ``detector.tick()`` / ``failover.checkpoint()``
        explicitly — fully deterministic.  ``start_threads=True`` runs both
        on daemon threads at their configured intervals.

        Returns ``(detector, failover)``.
        """
        from repro.dvm.failure import FailureDetector
        from repro.recovery.failover import FailoverManager

        if self.detector is None:
            self.detector = FailureDetector(
                self.dvm,
                observer=observer,
                suspect_after=suspect_after,
                evict_after=evict_after,
                interval_s=heartbeat_interval_s,
                indirect_probes=indirect_probes,
                sample=sample,
                coalesce_after=coalesce_after,
            )
        if self.failover is None:
            self.failover = FailoverManager(
                self.dvm, home=checkpoint_home, interval_s=checkpoint_interval_s
            )
        if start_threads:
            self.failover.start()
            self.detector.start()
        return self.detector, self.failover

    def _on_member_dead(self, event) -> None:
        payload = event.payload or {}
        nodes = payload.get("nodes")  # coalesced cohort eviction
        if nodes is None:
            nodes = [payload.get("node", "")]
        for name in nodes:
            if isinstance(name, dict):
                name = name.get("node", "")
            kernel = self.kernels.pop(name, None)
            if kernel is not None:
                try:
                    kernel.shutdown()  # idempotent; eviction closed the container already
                except Exception:
                    pass

    # -- teardown ----------------------------------------------------------------------

    def close(self) -> None:
        if self.detector is not None:
            self.detector.stop()
        if self.failover is not None:
            self.failover.close()
        for kernel in self.kernels.values():
            kernel.shutdown()
        self.kernels.clear()
        self._death_sub.cancel()
        if self._gossip_sub is not None:
            self._gossip_sub.cancel()
        # kernel.shutdown() already closed each container; the DVM only
        # drops its node table here.
        self.dvm._nodes.clear()

    def __enter__(self) -> "HarnessDvm":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
