"""SOAP value encoding: xsi:type annotations, both array modes."""

import numpy as np
import pytest

from repro.soap.values import element_to_value, value_to_element
from repro.util.errors import EncodingError
from repro.xmlkit import parse, to_string


def round_trip(value, array_mode="base64"):
    element = value_to_element("v", value, array_mode)
    # force a full serialize/parse cycle, as the wire would
    reparsed = parse(to_string(element))
    return element_to_value(reparsed)


class TestScalars:
    @pytest.mark.parametrize("value", [None, True, False, 0, -7, 2**40, "hello", ""])
    def test_round_trip(self, value):
        assert round_trip(value) == value

    def test_float_exact(self):
        assert round_trip(0.1) == 0.1
        assert round_trip(1e300) == 1e300

    def test_bool_is_not_int(self):
        assert round_trip(True) is True
        assert round_trip(1) == 1 and round_trip(1) is not True

    def test_bytes(self):
        assert round_trip(b"\x00\x01\xff") == b"\x00\x01\xff"

    def test_unicode_text(self):
        assert round_trip("héllo ☃ <tag>&") == "héllo ☃ <tag>&"

    def test_numpy_scalar(self):
        assert round_trip(np.float64(2.5)) == 2.5

    def test_xsi_type_annotations(self):
        assert value_to_element("v", 1.5).get("type") == "xsd:double"
        assert value_to_element("v", 1).get("type") == "xsd:long"
        assert value_to_element("v", "s").get("type") == "xsd:string"
        assert value_to_element("v", True).get("type") == "xsd:boolean"


class TestArrays:
    @pytest.mark.parametrize("mode", ["base64", "items"])
    def test_float_ndarray(self, mode, rng):
        array = rng.random((4, 5))
        out = round_trip(array, mode)
        assert isinstance(out, np.ndarray)
        assert out.shape == (4, 5)
        assert out.dtype == np.float64
        assert np.array_equal(out, array)

    @pytest.mark.parametrize("mode", ["base64", "items"])
    def test_int_ndarray(self, mode):
        array = np.arange(12, dtype=np.int64).reshape(3, 4)
        out = round_trip(array, mode)
        assert np.array_equal(out, array)
        assert out.dtype == np.int64

    def test_items_mode_is_exact_for_doubles(self, rng):
        # repr() round-trips float64 exactly
        array = rng.random(50)
        assert np.array_equal(round_trip(array, "items"), array)

    def test_uniform_float_list_becomes_array(self):
        out = round_trip([1.0, 2.0])
        assert isinstance(out, np.ndarray)

    def test_mixed_list_stays_list(self):
        assert round_trip([1, "a", None]) == [1, "a", None]

    def test_empty_list(self):
        assert round_trip([]) == []

    def test_base64_carries_dtype_and_shape_attrs(self):
        element = value_to_element("v", np.zeros((2, 3), dtype=np.float32))
        assert element.get("dtype") == "float32"
        assert element.get("shape") == "2 3"

    def test_items_mode_element_per_value(self):
        element = value_to_element("v", np.arange(5.0), "items")
        assert len(element.find_all("item")) == 5

    def test_unknown_mode_rejected(self):
        with pytest.raises(EncodingError):
            value_to_element("v", 1, "protobuf")


class TestStructs:
    def test_dict_round_trip(self):
        value = {"a": 1, "b": "x", "c": [1.0, 2.0]}
        out = round_trip(value)
        assert out["a"] == 1 and out["b"] == "x"
        assert np.array_equal(out["c"], [1.0, 2.0])

    def test_nested_dict(self):
        assert round_trip({"outer": {"inner": True}})["outer"]["inner"] is True

    def test_non_string_key_rejected(self):
        with pytest.raises(EncodingError):
            value_to_element("v", {1: "a"})


class TestDecodingErrors:
    def test_bad_boolean_text(self):
        element = value_to_element("v", True)
        element.text = "maybe"
        with pytest.raises(EncodingError):
            element_to_value(element)

    def test_bad_integer_text(self):
        element = value_to_element("v", 1)
        element.text = "one"
        with pytest.raises(EncodingError):
            element_to_value(element)

    def test_unknown_xsi_type(self):
        element = value_to_element("v", 1)
        element.set("{http://www.w3.org/2001/XMLSchema-instance}type", "xsd:gopher")
        with pytest.raises(EncodingError):
            element_to_value(element)

    def test_untyped_element_treated_as_string(self):
        from repro.xmlkit import XmlElement

        assert element_to_value(XmlElement("v", text="plain")) == "plain"

    def test_unencodable_value(self):
        with pytest.raises(EncodingError):
            value_to_element("v", object())
