"""Flight recorder: ring bounds, feeds, debounce, and dump artifacts
(DESIGN.md §12)."""

from __future__ import annotations

import json

import pytest

from repro.obs.recorder import FlightRecorder, dump_label
from repro.obs.trace import Span, SpanRecorder
from repro.util.clock import VirtualClock
from repro.util.events import EventBus


class TestDumpLabel:
    def test_strips_instance_tags(self):
        assert dump_label("counter#c-3") == "counter"

    def test_sanitizes_filename_hostiles(self):
        assert dump_label("a/b c:d") == "a-b-c-d"

    def test_empty_falls_back(self):
        assert dump_label("") == "unknown"
        assert dump_label("###") == "unknown"


class TestRing:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=4, clock=VirtualClock())
        for i in range(10):
            recorder.note("note", {"i": i})
        entries = recorder.snapshot()
        assert len(entries) == 4
        assert [e["data"]["i"] for e in entries] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_entry_shape(self):
        clock = VirtualClock()
        clock.advance(1.5)
        recorder = FlightRecorder(clock=clock)
        recorder.record_metrics({"server.requests": 3})
        (entry,) = recorder.snapshot()
        assert entry == {"t": 1.5, "kind": "metrics", "data": {"server.requests": 3}}


class TestFeeds:
    def test_bus_attach_records_events_until_close(self):
        bus = EventBus()
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.attach(bus)
        bus.publish("dvm.member.dead", {"node": "n1"}, source="dvm")
        recorder.close()
        bus.publish("dvm.member.dead", {"node": "n2"}, source="dvm")
        entries = recorder.snapshot()
        assert len(entries) == 1
        assert entries[0]["data"]["topic"] == "dvm.member.dead"
        assert entries[0]["data"]["payload"] == {"node": "n1"}

    def test_span_tee(self):
        spans = SpanRecorder()
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.tap_spans(spans)
        spans.record(Span("server:echo", "t" * 32, "s" * 16, None, "ok", {"handle": 12.0}))
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "span"
        assert entry["data"]["name"] == "server:echo"
        assert entry["data"]["timings_us"] == {"handle": 12.0}
        # the tee never replaces the primary recording
        assert len(spans) == 1


class TestDump:
    def test_should_dump_debounces_per_key(self):
        recorder = FlightRecorder()
        assert recorder.should_dump("invoke.breaker.open:counter")
        assert not recorder.should_dump("invoke.breaker.open:counter")
        assert recorder.should_dump("dvm.member.dead:n1")

    def test_dump_writes_jsonl(self, tmp_path):
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.note("event", {"topic": "x"})
        recorder.record_metrics({"c": 1})
        path = tmp_path / "deep" / "flight-n1.jsonl"
        count = recorder.dump(path)
        assert count == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["event", "metrics"]

    def test_dump_applies_transform(self, tmp_path):
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.note("note", {"secret": 1})
        path = tmp_path / "flight.jsonl"
        recorder.dump(path, transform=lambda e: {**e, "data": "redacted"})
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["data"] == "redacted"
