"""C1 — the data-encoding issue (Section 5).

Claim: "the default BASE64 encoding adopted by SOAP for XSD data types
introduces unacceptable overheads for scientific data both in terms of the
network bandwidth and the encoding/decoding time" [Govindaraju et al.].

Reproduced series: for float64 arrays from 1 K to 1 M elements, bytes on
the wire and encode+decode CPU time for

* XDR (the Harness II binding's codec, vectorised),
* SOAP with base64Binary arrays (SOAP's default),
* SOAP with element-per-item arrays (the fully-textual extreme).

Expected shape: XDR smallest and fastest at every size; SOAP/base64 ≈ 1.33×
the raw bytes and several× slower; SOAP/items an order of magnitude worse.

**C1c — streaming SOAP engine A/B.** The SOAP codec now runs on cached
envelope templates, a direct-to-bytes writer, and an expat pull decoder; the
original tree implementation is retained (``*_tree``) as the
pre-optimization baseline.  The C1c sweep measures the same call+reply
round trip on both engines, asserts the wire bytes are identical, and gates
on a **>= 2x** speedup at the 1 KiB payload size.  Runs under pytest and as
a script (``python benchmarks/bench_c1_encoding.py [--quick]`` — the CI
smoke, exits nonzero if the gate fails).  Writes ``BENCH_c1.json`` next to
this file with the pre (tree) and post (fast) timings.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

try:
    from benchmarks.conftest import print_table
except ImportError:  # pragma: no cover - running as a plain script
    def print_table(title, header, rows):
        print(f"\n=== {title} ===")
        widths = [
            max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
            for i in range(len(header))
        ]
        print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
        for row in rows:
            print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))

from repro.encoding.registry import XdrMessageCodec
from repro.soap import envelope as soap_envelope
from repro.soap.codec import SoapMessageCodec
from repro.soap.mime import MimeMessageCodec

XDR = XdrMessageCodec()
MIME = MimeMessageCodec()
SOAP_B64 = SoapMessageCodec("base64")
SOAP_ITEMS = SoapMessageCodec("items")

CODECS = [
    ("xdr", XDR),
    ("mime", MIME),
    ("soap-base64", SOAP_B64),
    ("soap-items", SOAP_ITEMS),
]


def _array(n: int) -> np.ndarray:
    return np.random.default_rng(7).random(n)


def _round_trip(codec, array: np.ndarray) -> int:
    """Encode a call + decode it server-side + encode/decode the reply."""
    wire = codec.encode_call("svc", "getResult", (array,))
    _, _, args = codec.decode_call(wire)
    reply = codec.encode_reply(args[0])
    codec.decode_reply(reply)
    return len(wire) + len(reply)


# -- pytest-benchmark rows -------------------------------------------------------

@pytest.mark.parametrize("name,codec", CODECS, ids=[c[0] for c in CODECS])
@pytest.mark.parametrize("n", [1_024, 65_536], ids=["1K", "64K"])
def test_encode_decode_benchmark(benchmark, name, codec, n):
    array = _array(n)
    benchmark(_round_trip, codec, array)


@pytest.mark.parametrize(
    "name,codec", [CODECS[0], CODECS[1], CODECS[2]], ids=["xdr", "mime", "soap-base64"]
)
def test_encode_decode_benchmark_1m(benchmark, name, codec):
    array = _array(1_048_576)  # 8 MB payload; items mode excluded (minutes)
    benchmark(_round_trip, codec, array)


# -- the reported series ------------------------------------------------------------

def test_report_c1_encoding_overheads():
    sizes = [1_024, 16_384, 262_144, 1_048_576]
    rows = []
    measured: dict[tuple[str, int], tuple[float, float]] = {}
    for n in sizes:
        array = _array(n)
        raw = array.nbytes
        for name, codec in CODECS:
            if name == "soap-items" and n > 65_536:
                continue  # minutes of runtime; the trend is established below
            # warm once (envelope templates, dtype caches), then best-of —
            # the sub-ms small-payload times are too noisy for a single
            # cold measurement now that the streaming engine is this close
            # to XDR at small n
            wire_bytes = _round_trip(codec, array)
            repeats = 5 if n <= 65_536 else 1
            elapsed = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                _round_trip(codec, array)
                elapsed = min(elapsed, time.perf_counter() - start)
            measured[(name, n)] = (wire_bytes, elapsed)
            rows.append([
                n, name, raw * 2, wire_bytes,
                f"{wire_bytes / (raw * 2):.2f}x",
                f"{elapsed * 1e3:.2f}ms",
            ])
    print_table(
        "C1: float64 call+reply — bytes on the wire and encode/decode time",
        ["elements", "codec", "raw bytes", "wire bytes", "expansion", "cpu"],
        rows,
    )

    for n in sizes:
        xdr_bytes, xdr_time = measured[("xdr", n)]
        mime_bytes, mime_time = measured[("mime", n)]
        b64_bytes, b64_time = measured[("soap-base64", n)]
        raw = _array(n).nbytes * 2
        # bandwidth claim: base64 expands ~4/3; XDR and MIME attachments
        # stay within a few % of raw (binary parts are unencoded)
        assert xdr_bytes < 1.05 * raw + 1024
        assert mime_bytes < 1.05 * raw + 4096
        assert b64_bytes > 1.30 * raw
        # time claim: XDR is several times faster at every size; the MIME
        # middle ground beats base64 on big arrays (no text expansion)
        assert b64_time > 2 * xdr_time, (n, b64_time, xdr_time)
        if n >= 262_144:
            assert mime_time < b64_time, (n, mime_time, b64_time)
        if ("soap-items", n) in measured:
            items_bytes, items_time = measured[("soap-items", n)]
            assert items_bytes > b64_bytes
            assert items_time > b64_time


# -- C1c: streaming SOAP engine vs the tree baseline --------------------------------

RESULT_PATH = Path(__file__).with_name("BENCH_c1.json")

#: the acceptance gate: >= 2x round-trip speedup at the 1 KiB payload
GATE_ELEMENTS = 128
GATE_SPEEDUP = 2.0

C1C_SIZES = [16, 128, 1_024, 8_192, 65_536]
C1C_QUICK_SIZES = [16, 128, 1_024]


class TreeSoapCodec:
    """The pre-optimization SOAP codec: full XmlElement trees both ways.

    Byte-compatible with :class:`SoapMessageCodec`; exists so the A/B sweep
    measures exactly what the streaming engine replaced.
    """

    def __init__(self, array_mode: str = "base64"):
        self.array_mode = array_mode
        self.content_type = (
            "text/xml" if array_mode == "base64" else f"text/xml; arrays={array_mode}"
        )

    def encode_call(self, target, operation, args):
        return soap_envelope.build_call_envelope_tree(target, operation, args, self.array_mode)

    def decode_call(self, data):
        return soap_envelope.parse_call_envelope_tree(bytes(data))

    def encode_reply(self, result=None, fault=None):
        if fault is not None:
            return soap_envelope.build_fault_envelope_tree("soapenv:Server", fault)
        return soap_envelope.build_reply_envelope_tree(result, array_mode=self.array_mode)

    def decode_reply(self, data):
        return soap_envelope.parse_reply_envelope_tree(bytes(data))


def _best_of(fn, *, repeats: int = 5, reps: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``reps``-call loops."""
    fn()  # warm caches (templates, namespace memo) outside the clock
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def run_c1c_sweep(sizes: list[int]) -> dict:
    """Tree-vs-fast round trips; returns the machine-readable document."""
    fast = SoapMessageCodec("base64")
    tree = TreeSoapCodec("base64")
    rows = []
    for n in sizes:
        array = _array(n)
        # identical canonical wire bytes — byte-for-byte, in fact
        fast_call = fast.encode_call("svc", "getResult", (array,))
        tree_call = tree.encode_call("svc", "getResult", (array,))
        fast_reply = fast.encode_reply(array)
        tree_reply = tree.encode_reply(array)
        identical = fast_call == tree_call and fast_reply == tree_reply
        reps = max(3, 2_000 // max(1, n // 16))
        tree_s = _best_of(lambda: _round_trip(tree, array), reps=reps)
        fast_s = _best_of(lambda: _round_trip(fast, array), reps=reps)
        rows.append({
            "elements": n,
            "payload_bytes": array.nbytes,
            "tree_us": round(tree_s * 1e6, 1),
            "fast_us": round(fast_s * 1e6, 1),
            "speedup": round(tree_s / fast_s, 2),
            "bytes_identical": identical,
        })
    gate = next(r for r in rows if r["elements"] == GATE_ELEMENTS)
    return {
        "experiment": "C1c streaming SOAP engine (cached templates + expat pull decode)",
        "codec": "soap-base64, float64 call+reply round trip",
        "sizes": rows,
        "gate": {
            "elements": GATE_ELEMENTS,
            "required_speedup": GATE_SPEEDUP,
            "speedup": gate["speedup"],
            "bytes_identical": all(r["bytes_identical"] for r in rows),
        },
    }


def _report_c1c(result: dict) -> None:
    rows = [
        [
            r["elements"], r["payload_bytes"],
            f"{r['tree_us']:.0f}", f"{r['fast_us']:.0f}",
            f"{r['speedup']:.2f}x", r["bytes_identical"],
        ]
        for r in result["sizes"]
    ]
    print_table(
        "C1c: SOAP round trip — tree baseline vs streaming engine",
        ["elements", "payload B", "tree µs", "fast µs", "speedup", "bytes =="],
        rows,
    )


def _write_json(result: dict) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


def test_report_c1c_fastpath():
    result = run_c1c_sweep(C1C_QUICK_SIZES)
    _report_c1c(result)
    _write_json(result)
    assert result["gate"]["bytes_identical"], "fast path diverged from tree wire bytes"
    speedup = result["gate"]["speedup"]
    assert speedup >= GATE_SPEEDUP, (
        f"streaming engine is only {speedup:.2f}x the tree baseline at "
        f"{GATE_ELEMENTS} float64 elements (need >= {GATE_SPEEDUP}x)"
    )


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: small payload sizes only (used by CI)",
    )
    options = parser.parse_args(argv)

    result = run_c1c_sweep(C1C_QUICK_SIZES if options.quick else C1C_SIZES)
    _report_c1c(result)
    _write_json(result)

    if not result["gate"]["bytes_identical"]:
        print("FAIL: streaming engine wire bytes differ from the tree baseline")
        return 1
    speedup = result["gate"]["speedup"]
    print(f"\nspeedup at {GATE_ELEMENTS} float64 elements (1 KiB): {speedup:.2f}x")
    if speedup < GATE_SPEEDUP:
        print(f"FAIL: below the {GATE_SPEEDUP}x gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
