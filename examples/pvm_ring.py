#!/usr/bin/env python
"""Figure 2 in action: a PVM application on the Harness plugin backplane.

Loads the four infrastructure plugins plus ``hpvmd`` on every node, then
runs two classic PVM programs:

* a token ring across spawned tasks, and
* a master/worker parallel sum whose workers are spawned on *remote*
  kernels by import path (the legacy-code path the paper's PVM plugin
  exists to support).

Run:  python examples/pvm_ring.py
"""

import numpy as np

from repro import HarnessDvm, lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hpvmd import PvmDaemonPlugin


def ring_worker(pvm, size):
    """Receive successor (tag 0), pass the token (tag 1) around the ring."""
    successor = pvm.recv(tag=0, timeout=15).data
    token = pvm.recv(tag=1, timeout=15).data
    token["hops"] += 1
    token["trace"].append(pvm.tid)
    if token["hops"] < size:
        pvm.send(successor, 1, token)
    else:
        pvm.send(token["home"], 2, token)


def sum_worker(pvm, lo, hi):
    """Sum a slice of the array the master broadcasts."""
    data = np.asarray(pvm.recv(tag=1, timeout=15).data)
    pvm.send(pvm.parent, 2, float(data[lo:hi].sum()))


def main() -> None:
    network = lan(3)
    with HarnessDvm("pvm-demo", network) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, PvmDaemonPlugin(group_server="node0"))

        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()

        # -- token ring ------------------------------------------------------
        size = 5
        tids = pvmd.spawn(ring_worker, count=size, args=(size,), parent=console)
        for i, tid in enumerate(tids):
            pvmd.send(tid, 0, tids[(i + 1) % size])
        pvmd.send(tids[0], 1, {"hops": 0, "trace": [], "home": console})
        token = pvmd._recv_for(console, 2, 15.0).data
        print(f"token ring: {token['hops']} hops, visited {token['trace']}")
        pvmd.wait_all(tids)

        # -- master/worker sum across hosts ------------------------------------
        data = np.arange(30_000, dtype=np.float64)
        chunks = [(0, 10_000), (10_000, 20_000), (20_000, 30_000)]
        worker_tids = []
        for host, (lo, hi) in zip(("node0", "node1", "node2"), chunks):
            if host == "node0":
                tid = pvmd.spawn(sum_worker, count=1, args=(lo, hi), parent=console)[0]
            else:
                tid = pvmd.spawn("examples.pvm_ring:sum_worker", count=1,
                                 where=host, args=(lo, hi), parent=console)[0]
            worker_tids.append(tid)
        for tid in worker_tids:
            pvmd.send(tid, 1, data)
        total = sum(pvmd._recv_for(console, 2, 15.0).data for _ in worker_tids)
        print(f"master/worker sum over 3 hosts: {total:.0f} "
              f"(expected {data.sum():.0f})")
        pvmd.wait_all(worker_tids)
        print(f"fabric: {network.total_messages} messages, "
              f"{network.total_bytes} bytes across kernels")


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    main()
