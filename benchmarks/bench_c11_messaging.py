"""C11 messaging — fan-out wire economy and push vs RPC-polling work queues.

Two legs, one claim: mailbox delivery semantics are not just *safer* than
ad-hoc RPC patterns, they are *cheaper on the wire*.

**Fan-out amplification (sim fabric).**  Delivering one payload to T task
mailboxes spread over H hosts costs T inter-kernel messages with per-task
``hmsg.send`` but only H with ``hmsg.fanout`` (what hpvmd's mcast/bcast
ride) — the amplification factor is exactly tasks-per-host, measured on
the virtual fabric's message counters.

**Work queue: server push vs RPC polling (real TCP).**  The same bounded
``first-reader`` mailbox drained two ways:

* *push* — ``MailboxTcpServer`` pushes deliveries through per-connection
  credit flow; consumers ack each message (one round trip per message);
* *poll* — consumers hammer an RPC ``poll`` verb on a conventional
  binding server; an empty queue costs a round trip *and* the poll
  interval of discovery latency.

The drain leg measures throughput with the queue pre-filled — the
trade-off made explicit: polling a *hot* queue costs one round trip per
message while push pays two (push + ack buys exactly-once with
redelivery, which pull-and-forget cannot give).  The paced leg publishes
on a timer and measures end-to-end delivery latency, where polling pays
its discovery interval on every message and push does not.

Acceptance (asserted in ``test_report_c11_messaging`` and the script
gates):

* fan-out amplification is exactly tasks-per-host at every level, and
  every fanned-out payload is actually delivered;
* both drain modes consume every message exactly once (the work-queue
  contract, at speed);
* push median delivery latency beats poll median latency (budgeted 2x in
  quick mode);
* polling costs strictly more wire operations per delivered message than
  push's two (push frame + ack).

Runs under pytest (``pytest benchmarks/bench_c11_messaging.py``) and as a
script (``python benchmarks/bench_c11_messaging.py [--quick] [--out PATH]``
— the CI smoke uses ``--quick``; the nightly soak runs the full sweep).
Writes ``BENCH_c11.json`` next to this file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
from pathlib import Path

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.core.kernel import HarnessKernel
from repro.encoding.registry import XdrMessageCodec
from repro.messaging.broker import MessageBroker
from repro.messaging.tcpbind import MailboxTcpClient, MailboxTcpServer
from repro.netsim import lan
from repro.plugins.hmsg import MessageTransportPlugin
from repro.transport.tcp import TcpTransport
from repro.util.errors import HarnessTimeoutError

SEED = 11

#: fan-out leg: H receiver hosts, swept tasks-per-host
FANOUT_HOSTS = 4
FANOUT_TASKS_PER_HOST = [4, 16, 64]
QUICK_FANOUT_TASKS = [4, 16]
FANOUT_PAYLOAD = "x" * 256

#: drain leg: pre-filled queue, C consumers, each its own TCP connection
DRAIN_MESSAGES = 400
QUICK_DRAIN_MESSAGES = 150
DRAIN_CONSUMERS = 4

#: paced leg: one message every PACE_S; the poller checks every POLL_S
PACED_MESSAGES = 80
QUICK_PACED_MESSAGES = 30
PACE_S = 0.003
POLL_S = 0.005

RESULT_PATH = Path(__file__).with_name("BENCH_c11.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script (python benchmarks/bench_c11_messaging.py)
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[min(len(sorted_values) - 1, int(len(sorted_values) * p))]


# -- fan-out amplification (sim fabric) ------------------------------------------------


def _measure_fanout(tasks_per_host: int) -> dict:
    """Per-task sends vs per-host fanout for the same T-task delivery."""
    network = lan(FANOUT_HOSTS + 1, seed=SEED)
    kernels = []
    for i in range(FANOUT_HOSTS + 1):
        kernel = HarnessKernel(f"node{i}", network=network)
        kernel.load_plugin(MessageTransportPlugin)
        kernels.append(kernel)
    try:
        sender = kernels[0].get_service("message-transport")
        boxes_by_host = {}
        for h in range(1, FANOUT_HOSTS + 1):
            receiver = kernels[h].get_service("message-transport")
            boxes = [f"task{h}_{t}" for t in range(tasks_per_host)]
            for box in boxes:
                receiver.open_mailbox(box)
            boxes_by_host[f"node{h}"] = boxes

        network.reset_stats()
        for host, boxes in boxes_by_host.items():
            for box in boxes:
                sender.send(host, box, FANOUT_PAYLOAD, tag=1)
        naive_messages = network.total_messages
        naive_bytes = network.total_bytes

        network.reset_stats()
        for host, boxes in boxes_by_host.items():
            sender.fanout(host, boxes, FANOUT_PAYLOAD, tag=2)
        fanout_messages = network.total_messages
        fanout_bytes = network.total_bytes

        # every task actually got both rounds
        delivered = 0
        for h in range(1, FANOUT_HOSTS + 1):
            receiver = kernels[h].get_service("message-transport")
            for box in boxes_by_host[f"node{h}"]:
                assert receiver.recv(box, tag=1, timeout=2).data == FANOUT_PAYLOAD
                assert receiver.recv(box, tag=2, timeout=2).data == FANOUT_PAYLOAD
                delivered += 1
        assert delivered == FANOUT_HOSTS * tasks_per_host
    finally:
        for kernel in kernels:
            kernel.shutdown()

    return {
        "hosts": FANOUT_HOSTS,
        "tasks_per_host": tasks_per_host,
        "tasks": FANOUT_HOSTS * tasks_per_host,
        "naive_messages": naive_messages,
        "fanout_messages": fanout_messages,
        "naive_bytes": naive_bytes,
        "fanout_bytes": fanout_bytes,
        "amplification": round(naive_messages / fanout_messages, 1)
        if fanout_messages else 0.0,
    }


def run_fanout(levels: list[int]) -> dict:
    return {"payload_bytes": len(FANOUT_PAYLOAD),
            "levels": [_measure_fanout(t) for t in levels]}


# -- work queue: push drain (real TCP) -------------------------------------------------


class _Tally:
    """Thread-safe exactly-once ledger for a drain run."""

    def __init__(self, expected: int):
        self.expected = expected
        self.seqs: list[int] = []
        self._lock = threading.Lock()

    def record(self, seq: int) -> None:
        with self._lock:
            self.seqs.append(seq)

    def done(self) -> bool:
        with self._lock:
            return len(self.seqs) >= self.expected

    def verify(self) -> None:
        assert sorted(self.seqs) == list(range(1, self.expected + 1)), (
            f"exactly-once violated: {len(self.seqs)} consumed of "
            f"{self.expected}")


def _run_push_drain(messages: int, consumers: int) -> dict:
    broker = MessageBroker()
    server = MailboxTcpServer(broker)
    producer = MailboxTcpClient(*server.address, timeout_s=10.0)
    try:
        producer.open("q", capacity=messages, overflow="reject")
        for i in range(messages):
            producer.publish("q", i)

        tally = _Tally(messages)
        barrier = threading.Barrier(consumers + 1)

        def consume(slot: int) -> None:
            client = MailboxTcpClient(*server.address, timeout_s=10.0)
            try:
                sub = client.subscribe("q", subscriber=f"c{slot}")
                barrier.wait()
                while not tally.done():
                    try:
                        delivery = sub.receive(timeout=0.1)
                    except HarnessTimeoutError:
                        continue
                    sub.ack(delivery)
                    tally.record(delivery.seq)
            finally:
                client.close()

        threads = [threading.Thread(target=consume, args=(n,))
                   for n in range(consumers)]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        elapsed_s = time.perf_counter() - t0
        tally.verify()
        assert broker.stats("q").acked == messages
    finally:
        producer.close()
        server.close(drain_s=0.5)
    return {"mode": "push", "messages": messages, "consumers": consumers,
            "wall_s": round(elapsed_s, 3),
            "throughput_rps": round(messages / elapsed_s, 1),
            "wire_ops_per_msg": 2.0}  # one push frame + one ack round trip


# -- work queue: RPC-polling drain (real TCP) ------------------------------------------


class PollQueueService:
    """The conventional alternative: a queue drained by an RPC ``poll`` verb.

    ``poll`` pops-and-acks one message (at-most-once pull, the usual shape
    of polling consumers) and counts every call — including the empty ones
    that make polling expensive."""

    def __init__(self, broker: MessageBroker, mailbox: str):
        self.broker = broker
        self.mailbox = mailbox
        self._sub = broker.subscribe(mailbox, subscriber="poller")
        self._lock = threading.Lock()
        self.polls = 0
        self.empty_polls = 0

    def poll(self) -> dict:
        with self._lock:
            self.polls += 1
        delivery = self._sub.try_receive()
        if delivery is None:
            with self._lock:
                self.empty_polls += 1
            return {"empty": True}
        self._sub.ack(delivery)
        return {"empty": False, "seq": delivery.seq,
                "payload": delivery.payload}


def _run_poll_drain(messages: int, consumers: int) -> dict:
    broker = MessageBroker()
    broker.open("q", capacity=messages, overflow="reject")
    for i in range(messages):
        broker.publish("q", i)
    service = PollQueueService(broker, "q")
    dispatcher = ObjectDispatcher()
    dispatcher.register("q", service)
    server = BindingServer(dispatcher)
    listener = server.expose_xdr_tcp()
    try:
        tally = _Tally(messages)
        barrier = threading.Barrier(consumers + 1)

        def consume(slot: int) -> None:
            transport = TcpTransport(f"tcp://127.0.0.1:{listener.port}")
            stub = TransportStub(("poll",), "q", XdrMessageCodec(),
                                 transport, "xdr")
            try:
                barrier.wait()
                while not tally.done():
                    reply = stub.poll()
                    if reply.get("empty"):
                        time.sleep(POLL_S)
                        continue
                    tally.record(int(reply["seq"]))
            finally:
                stub.close()

        threads = [threading.Thread(target=consume, args=(n,))
                   for n in range(consumers)]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        elapsed_s = time.perf_counter() - t0
        tally.verify()
        assert broker.stats("q").acked == messages
    finally:
        server.close()
    return {"mode": "poll", "messages": messages, "consumers": consumers,
            "wall_s": round(elapsed_s, 3),
            "throughput_rps": round(messages / elapsed_s, 1),
            "wire_ops_per_msg": round(service.polls / messages, 2),
            "empty_polls": service.empty_polls}


# -- paced delivery latency ------------------------------------------------------------


def _run_push_paced(messages: int) -> dict:
    broker = MessageBroker()
    server = MailboxTcpServer(broker)
    broker.open("paced", capacity=messages, overflow="reject")
    client = MailboxTcpClient(*server.address, timeout_s=10.0)
    try:
        sub = client.subscribe("paced", subscriber="listener")
        latencies: list[float] = []

        def consume() -> None:
            while len(latencies) < messages:
                try:
                    delivery = sub.receive(timeout=2.0)
                except HarnessTimeoutError:
                    return
                latencies.append(time.perf_counter() - delivery.payload)
                sub.ack(delivery)

        thread = threading.Thread(target=consume)
        thread.start()
        for _ in range(messages):
            broker.publish("paced", time.perf_counter())
            time.sleep(PACE_S)
        thread.join(timeout=10.0)
        assert len(latencies) == messages
    finally:
        client.close()
        server.close(drain_s=0.5)
    return _latency_row("push", latencies)


def _run_poll_paced(messages: int) -> dict:
    broker = MessageBroker()
    broker.open("paced", capacity=messages, overflow="reject")
    service = PollQueueService(broker, "paced")
    dispatcher = ObjectDispatcher()
    dispatcher.register("q", service)
    server = BindingServer(dispatcher)
    listener = server.expose_xdr_tcp()
    try:
        latencies: list[float] = []

        def consume() -> None:
            transport = TcpTransport(f"tcp://127.0.0.1:{listener.port}")
            stub = TransportStub(("poll",), "q", XdrMessageCodec(),
                                 transport, "xdr")
            try:
                while len(latencies) < messages:
                    reply = stub.poll()
                    if reply.get("empty"):
                        time.sleep(POLL_S)
                        continue
                    latencies.append(time.perf_counter() - reply["payload"])
            finally:
                stub.close()

        thread = threading.Thread(target=consume)
        thread.start()
        for _ in range(messages):
            broker.publish("paced", time.perf_counter())
            time.sleep(PACE_S)
        thread.join(timeout=20.0)
        assert len(latencies) == messages
    finally:
        server.close()
    return _latency_row("poll", latencies)


def _latency_row(mode: str, latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "mode": mode,
        "messages": len(latencies),
        "p50_ms": round(statistics.median(ordered) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(ordered) * 1e3, 3),
    }


def run_workqueue(messages: int, paced_messages: int) -> dict:
    return {
        "consumers": DRAIN_CONSUMERS,
        "poll_interval_ms": POLL_S * 1e3,
        "pace_ms": PACE_S * 1e3,
        "drain": [_run_push_drain(messages, DRAIN_CONSUMERS),
                  _run_poll_drain(messages, DRAIN_CONSUMERS)],
        "paced": [_run_push_paced(paced_messages),
                  _run_poll_paced(paced_messages)],
    }


# -- reporting -------------------------------------------------------------------------


def _report_fanout(result: dict) -> None:
    rows = [[
        level["hosts"], level["tasks_per_host"], level["tasks"],
        level["naive_messages"], level["fanout_messages"],
        f"{level['amplification']:.0f}x",
        level["naive_bytes"], level["fanout_bytes"],
    ] for level in result["levels"]]
    _print_table(
        f"C11 fan-out: {FANOUT_HOSTS} hosts, per-task send vs per-host fanout",
        ["hosts", "tasks/host", "tasks", "send msgs", "fanout msgs",
         "amplification", "send bytes", "fanout bytes"],
        rows,
    )


def _report_workqueue(result: dict) -> None:
    rows = [[
        row["mode"], row["messages"], row["consumers"],
        f"{row['wall_s']:.2f}", f"{row['throughput_rps']:.0f}",
        f"{row['wire_ops_per_msg']:.2f}",
    ] for row in result["drain"]]
    _print_table(
        f"C11 drain: pre-filled queue, {result['consumers']} consumers, push vs poll",
        ["mode", "messages", "consumers", "wall s", "msgs/s", "wire ops/msg"],
        rows,
    )
    rows = [[
        row["mode"], row["messages"], f"{row['p50_ms']:.2f}",
        f"{row['p99_ms']:.2f}", f"{row['mean_ms']:.2f}",
    ] for row in result["paced"]]
    _print_table(
        f"C11 paced delivery: one message per {result['pace_ms']:.0f} ms, "
        f"poll interval {result['poll_interval_ms']:.0f} ms",
        ["mode", "messages", "p50 ms", "p99 ms", "mean ms"],
        rows,
    )


def _write_json(result: dict, out: Path | None = None) -> None:
    text = json.dumps(result, indent=2) + "\n"
    RESULT_PATH.write_text(text)
    print(f"wrote {RESULT_PATH}")
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {out}")


# -- gates -----------------------------------------------------------------------------


def _check_fanout_gates(result: dict) -> list[str]:
    # the fabric charges each kernel send as request + ack, so gate the
    # *ratios*, which the cost model cannot shift: per-task delivery costs
    # exactly tasks-per-host times what per-host fanout costs, and the
    # fanout cost depends on hosts alone, not on how many tasks they hold
    failures = []
    for level in result["levels"]:
        expected = level["tasks_per_host"] * level["fanout_messages"]
        if level["naive_messages"] != expected:
            failures.append(
                f"fanout {level['tasks_per_host']}/host: amplification "
                f"{level['amplification']:.1f}x, expected exactly "
                f"{level['tasks_per_host']}x")
    per_host_costs = {level["fanout_messages"] for level in result["levels"]}
    if len(per_host_costs) > 1:
        failures.append(
            f"fanout: per-host cost varies with tasks-per-host "
            f"({sorted(per_host_costs)}) — fanout is not O(hosts)")
    return failures


def _check_workqueue_gates(result: dict, budget: float = 1.0) -> list[str]:
    failures = []
    push_paced, poll_paced = result["paced"]
    bound = 2.0 / budget
    if push_paced["p50_ms"] * bound > poll_paced["p50_ms"]:
        failures.append(
            f"paced: push p50 {push_paced['p50_ms']:.2f} ms not {bound:g}x under "
            f"poll p50 {poll_paced['p50_ms']:.2f} ms")
    push_drain, poll_drain = result["drain"]
    if poll_drain["wire_ops_per_msg"] <= push_drain["wire_ops_per_msg"] - 1.0:
        failures.append(
            f"drain: poll wire ops/msg {poll_drain['wire_ops_per_msg']:.2f} "
            f"implausibly below push's {push_drain['wire_ops_per_msg']:.2f}")
    return failures


# -- pytest entry point ----------------------------------------------------------------


def test_report_c11_messaging():
    result = {
        "experiment": "C11 mailbox messaging: fan-out economy, push vs poll",
        "fanout": run_fanout(QUICK_FANOUT_TASKS),
        "workqueue": run_workqueue(QUICK_DRAIN_MESSAGES, QUICK_PACED_MESSAGES),
    }
    _report_fanout(result["fanout"])
    _report_workqueue(result["workqueue"])
    _write_json(result)
    failures = _check_fanout_gates(result["fanout"])
    failures += _check_workqueue_gates(result["workqueue"], budget=2.0)
    assert not failures, "; ".join(failures)


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: smaller sweeps, 2x gate budgets (used by CI)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the result JSON here (nightly soak audit trail)",
    )
    options = parser.parse_args(argv)

    quick = options.quick
    budget = 2.0 if quick else 1.0
    result = {
        "experiment": "C11 mailbox messaging: fan-out economy, push vs poll",
        "fanout": run_fanout(QUICK_FANOUT_TASKS if quick else FANOUT_TASKS_PER_HOST),
        "workqueue": run_workqueue(
            QUICK_DRAIN_MESSAGES if quick else DRAIN_MESSAGES,
            QUICK_PACED_MESSAGES if quick else PACED_MESSAGES),
    }
    _report_fanout(result["fanout"])
    _report_workqueue(result["workqueue"])
    _write_json(result, out=options.out)

    failures = _check_fanout_gates(result["fanout"])
    failures += _check_workqueue_gates(result["workqueue"], budget=budget)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
