"""Distributed Virtual Machine: the distributed component container layer."""

from repro.dvm.machine import DistributedVirtualMachine, DvmNode
from repro.dvm.state import (
    DecentralizedState,
    DvmStateProtocol,
    FullSynchronyState,
    NeighborhoodState,
    StateEntry,
)

__all__ = [
    "DistributedVirtualMachine",
    "DvmNode",
    "DecentralizedState",
    "DvmStateProtocol",
    "FullSynchronyState",
    "NeighborhoodState",
    "StateEntry",
]
