"""``hmsg`` — the message-transport plugin (Figure 2's "message transport").

Provides tagged mailboxes addressable across kernels: any plugin (notably
``hpvmd``) can post a message to ``(host, mailbox)`` and the receiving
kernel's hmsg queues it for a local ``recv``.  Payloads ride the kernel's
XDR-encoded inter-kernel channel, so bytes are charged to the fabric.

Since the messaging layer landed (DESIGN.md §15), each hmsg mailbox is a
``first-reader`` mailbox on an embedded
:class:`~repro.messaging.broker.MessageBroker` — queues are *bounded*
(``capacity``, default 65536, overflow ``reject`` → a typed
:class:`MailboxFullError` instead of unbounded growth), every
publish/deliver/ack feeds the ``mbox.*`` obs metrics, and the PVM layer's
tag-selective ``recv`` is a stash in front of the broker's FIFO: messages
drained off the subscription that don't match the requested tag wait in
the stash for the recv that wants them.

``recv(timeout=0)`` is an **atomic poll**: it returns a matching envelope
if one is queued and otherwise raises :class:`HarnessTimeoutError`
*immediately* — it never blocks, and never returns an ambiguous ``None``.
The check and the blocking wait share one condition variable, so a
message arriving between poll and block wakes the receiver instead of
being missed.

``fanout`` delivers one payload to many mailboxes on one destination host
with a single inter-kernel message — what ``hpvmd``'s mcast/bcast use to
send per *host* instead of per *task*.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.plugin import Plugin
from repro.messaging.broker import MessageBroker, Subscription
from repro.util.errors import HarnessTimeoutError, MessagingError, PluginError

__all__ = ["MessageTransportPlugin", "Envelope"]

#: Default bound on one hmsg mailbox's undelivered backlog.
DEFAULT_CAPACITY = 65536


class Envelope:
    """One queued message: source host, integer tag, payload."""

    __slots__ = ("src_host", "tag", "data")

    def __init__(self, src_host: str, tag: int, data: Any):
        self.src_host = src_host
        self.tag = tag
        self.data = data

    def __repr__(self) -> str:
        return f"Envelope(src={self.src_host!r}, tag={self.tag})"


class MessageTransportPlugin(Plugin):
    """Mailbox-based message passing between kernels, on the broker."""

    plugin_name = "hmsg"
    provides = ("message-transport",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY, overflow: str = "reject") -> None:
        super().__init__()
        self._cond = threading.Condition()
        self._capacity = capacity
        self._overflow = overflow
        self.broker = MessageBroker()
        self.broker.on_wakeup = self._on_broker_wakeup
        # mailbox -> (subscription, stash of drained-but-unmatched envelopes)
        self._subs: dict[str, Subscription] = {}
        self._stash: dict[str, list[Envelope]] = {}

    def _on_broker_wakeup(self, name: str) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- local API -----------------------------------------------------------------

    def open_mailbox(self, name: str) -> None:
        """Create a mailbox (idempotent)."""
        with self._cond:
            self._open_locked(name)

    def _open_locked(self, name: str) -> None:
        if name in self._subs:
            return
        self.broker.open(f"hmsg:{name}", mode="first-reader",
                         capacity=self._capacity, overflow=self._overflow)
        self._subs[name] = self.broker.subscribe(f"hmsg:{name}", subscriber=name)
        self._stash[name] = []

    def close_mailbox(self, name: str) -> None:
        with self._cond:
            sub = self._subs.pop(name, None)
            self._stash.pop(name, None)
        if sub is not None:
            # drop whatever is still queued — a closed mailbox loses its
            # backlog by contract (mirrors the pre-broker behaviour); the
            # drains auto-ack so nothing lingers as unacked
            while True:
                delivery = sub.try_receive()
                if delivery is None:
                    break
                sub.ack(delivery)
            sub.close(requeue=False)

    def send(self, dst_host: str, mailbox: str, data: Any, tag: int = 0) -> None:
        """Deliver *data* to a mailbox on *dst_host* (possibly this host).

        A full destination mailbox surfaces as a typed
        :class:`~repro.util.errors.MailboxFullError` (local sends) — the
        queue never grows without bound.
        """
        if self.kernel is None:
            raise PluginError("hmsg is not attached")
        if dst_host == self.kernel.host_name:
            self._enqueue(self.kernel.host_name, mailbox, tag, data)
            return
        self.kernel.send(dst_host, "message-transport", {
            "mailbox": mailbox, "tag": tag, "data": data,
        })

    def fanout(self, dst_host: str, mailboxes: list[str], data: Any, tag: int = 0) -> int:
        """Deliver *data* to many mailboxes on *dst_host* with ONE
        inter-kernel message; returns the number of mailboxes addressed."""
        if self.kernel is None:
            raise PluginError("hmsg is not attached")
        if not mailboxes:
            return 0
        if dst_host == self.kernel.host_name:
            for mailbox in mailboxes:
                self._enqueue(self.kernel.host_name, mailbox, tag, data)
            return len(mailboxes)
        self.kernel.send(dst_host, "message-transport", {
            "mailboxes": list(mailboxes), "tag": tag, "data": data,
        })
        return len(mailboxes)

    def recv(self, mailbox: str, tag: int | None = None, timeout: float = 10.0) -> Envelope:
        """Blocking receive; ``tag=None`` matches any tag.

        ``timeout=0`` (or negative) is an atomic poll: return a matching
        envelope or raise :class:`HarnessTimeoutError` right away.
        """
        import time as _time

        with self._cond:
            if mailbox not in self._subs:
                raise PluginError(f"mailbox {mailbox!r} is not open")
            envelope = self._match_locked(mailbox, tag)
            if envelope is not None:
                return envelope
            if timeout is not None and timeout <= 0:
                raise HarnessTimeoutError(
                    f"recv on {mailbox!r} (tag={tag}) would block (timeout={timeout})"
                )
            end = None if timeout is None else _time.monotonic() + timeout
            while True:
                remaining = None
                if end is not None:
                    remaining = end - _time.monotonic()
                    if remaining <= 0:
                        raise HarnessTimeoutError(
                            f"recv on {mailbox!r} (tag={tag}) timed out after {timeout}s"
                        )
                self._cond.wait(remaining)
                if mailbox not in self._subs:
                    raise PluginError(f"mailbox {mailbox!r} was closed during recv")
                envelope = self._match_locked(mailbox, tag)
                if envelope is not None:
                    return envelope

    def try_recv(self, mailbox: str, tag: int | None = None) -> Envelope | None:
        """Non-blocking receive."""
        with self._cond:
            if mailbox not in self._subs:
                raise PluginError(f"mailbox {mailbox!r} is not open")
            return self._match_locked(mailbox, tag)

    def pending(self, mailbox: str) -> int:
        with self._cond:
            if mailbox not in self._subs:
                return 0
            stashed = len(self._stash[mailbox])
        return stashed + self.broker.stats(f"hmsg:{mailbox}").depth

    def _match_locked(self, mailbox: str, tag: int | None) -> Envelope | None:
        """Find a matching envelope: stash first, then drain the broker.

        Runs under ``_cond`` — the atomicity behind poll semantics.  Every
        drained delivery is acked on the spot (the stash takes ownership),
        so broker-side unacked state never accumulates for hmsg.
        """
        stash = self._stash[mailbox]
        for i, envelope in enumerate(stash):
            if tag is None or envelope.tag == tag:
                return stash.pop(i)
        sub = self._subs[mailbox]
        while True:
            delivery = sub.try_receive()
            if delivery is None:
                return None
            sub.ack(delivery)
            payload = delivery.payload
            envelope = Envelope(payload["src"], payload["tag"], payload["data"])
            if tag is None or envelope.tag == tag:
                return envelope
            stash.append(envelope)

    # -- inter-kernel delivery ---------------------------------------------------------

    def handle_message(self, src_host: str, payload: dict) -> bool:
        """Kernel-channel entry point for remote sends (single or fanout)."""
        tag = payload.get("tag", 0)
        data = payload.get("data")
        for mailbox in payload.get("mailboxes", ()):
            self._enqueue(src_host, mailbox, tag, data)
        if "mailbox" in payload:
            self._enqueue(src_host, payload["mailbox"], tag, data)
        return True

    def _enqueue(self, src_host: str, mailbox: str, tag: int, data: Any) -> None:
        with self._cond:
            # auto-open on first delivery; receivers may subscribe late
            self._open_locked(mailbox)
        self.broker.publish(f"hmsg:{mailbox}",
                            {"src": src_host, "tag": tag, "data": data},
                            publisher=src_host)
