"""Distributed lookup schemes: costs and failure modes (C5's mechanics)."""

import pytest

from repro.netsim import lan
from repro.plugins.services import MatMul, WSTime
from repro.registry.distributed import (
    CentralizedLookup,
    DecentralizedLookup,
    NeighborhoodLookup,
)
from repro.netsim.fabric import HostDownError
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import RegistryError


def matmul_doc():
    return generate_wsdl(MatMul, bindings=("soap",))


def time_doc():
    return generate_wsdl(WSTime, bindings=("soap",))


QUERY = "//portType[@name='MatMulPortType']"


class TestCentralized:
    def test_register_and_discover(self):
        net = lan(5)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node3", matmul_doc())
        found = lookup.discover("node4", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_all_traffic_flows_through_registry_host(self):
        net = lan(5)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node3", matmul_doc())
        lookup.discover("node4", QUERY)
        for (src, dst), stats in net.stats.items():
            assert "node0" in (src, dst), (src, dst)

    def test_registration_costs_messages(self):
        net = lan(3)
        lookup = CentralizedLookup(net, "node0")
        net.reset_stats()
        lookup.register("node2", matmul_doc())
        assert net.total_messages == 2  # request + ack

    def test_single_point_of_failure(self):
        net = lan(3)
        lookup = CentralizedLookup(net, "node0")
        lookup.register("node1", matmul_doc())
        net.host("node0").crash()
        with pytest.raises(HostDownError):
            lookup.discover("node2", QUERY)
        with pytest.raises(HostDownError):
            lookup.register("node2", time_doc())

    def test_unknown_registry_host(self):
        with pytest.raises(RegistryError):
            CentralizedLookup(lan(2), "ghost")


class TestDecentralized:
    def test_registration_is_free(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        net.reset_stats()
        lookup.register("node1", matmul_doc())
        assert net.total_messages == 0

    def test_discovery_floods(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        net.reset_stats()
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]
        assert net.total_messages == 2 * 3  # query+reply to each other node

    def test_local_hit_still_answers(self):
        net = lan(3)
        lookup = DecentralizedLookup(net)
        lookup.register("node0", matmul_doc())
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]

    def test_survives_registry_node_crash(self):
        net = lan(4)
        lookup = DecentralizedLookup(net)
        lookup.register("node1", matmul_doc())
        lookup.register("node2", time_doc())
        net.host("node2").crash()
        found = lookup.discover("node0", QUERY)
        assert [d.name for d in found] == ["MatMul"]  # node1's entry still found

    def test_dedup_across_hosts(self):
        net = lan(3)
        lookup = DecentralizedLookup(net)
        lookup.register("node0", matmul_doc())
        lookup.register("node1", matmul_doc())
        found = lookup.discover("node2", QUERY)
        assert len(found) == 1


class TestNeighborhood:
    def test_registration_replicates_to_k_neighbors(self):
        net = lan(5)
        lookup = NeighborhoodLookup(net, replication=2)
        net.reset_stats()
        lookup.register("node0", matmul_doc())
        assert net.total_messages == 2 * 2  # two replicas, request+ack each

    def test_neighborhood_hit_avoids_flood(self):
        net = lan(6)
        lookup = NeighborhoodLookup(net, replication=2)
        lookup.register("node0", matmul_doc())
        net.reset_stats()
        # node5's neighbours are node0, node1 (ring): replica hit
        found = lookup.discover("node5", QUERY)
        assert [d.name for d in found] == ["MatMul"]
        assert net.total_messages <= 2 * 2

    def test_miss_falls_back_to_flood(self):
        net = lan(8)
        lookup = NeighborhoodLookup(net, replication=1)
        lookup.register("node0", matmul_doc())
        found = lookup.discover("node4", QUERY)  # far from node0's replicas
        assert [d.name for d in found] == ["MatMul"]

    def test_negative_replication_rejected(self):
        with pytest.raises(RegistryError):
            NeighborhoodLookup(lan(3), replication=0)

    def test_discover_unregistered_returns_empty(self):
        net = lan(4)
        lookup = NeighborhoodLookup(net, replication=1)
        assert lookup.discover("node0", QUERY) == []
