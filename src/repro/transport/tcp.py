"""Framed TCP transport — the XDR binding's "direct socket level connections".

Wire format per message, protocol v2 (both directions)::

    uint32 BE  total frame length (excluding these 4 bytes)
    uint64 BE  correlation id (echoed verbatim in the response frame)
    uint16 BE  content-type length |ct|
    |ct| bytes content type (ASCII)
    uint8      status (requests: 0; responses: 0 = ok, 1 = fault)
    payload    remaining bytes

The correlation id lets many in-flight requests share one socket: the
client demultiplexes response frames back to their callers by id, so a
slow request no longer blocks the requests behind it (no head-of-line
blocking).  A :class:`TcpTransport` keeps a small bounded pool of such
multiplexed channels per peer and picks the least-loaded one per call —
Harness components still open a near-minimal "number of entities that
need to be traversed" (one to a few sockets per peer), but concurrent
callers are never serialized client-side.

The frame path is zero-copy where it matters: writes are scatter-gather
(``sendmsg`` of header + payload, no concatenation), reads use
``recv_into`` on a single preallocated buffer per frame, and payloads
are handed to codecs as ``memoryview`` slices of that buffer.

A request that times out simply abandons its correlation id — the late
reply, if it ever arrives, is demuxed to a missing id and dropped, so
the connection stays healthy instead of being poisoned.  Only a peer
that stalls *mid-frame* (framing can no longer be trusted) kills the
channel; the pool then dials a fresh one for the next caller.

Pending entries are additionally bounded by a deadline sweep: a peer
that dies *without* closing the socket (kill -9, cable pull, silent
black hole) leaves the connection open and never answers, so a caller
with ``timeout=None`` — and its correlation-id table entry — would
otherwise wait forever.  Every entry carries an expiry
(``pending_max_s`` after registration, env ``REPRO_TCP_PENDING_MAX_S``)
and whichever caller holds the read lease sweeps expired entries,
failing them with :class:`~repro.util.errors.HarnessTimeoutError`.
"""

from __future__ import annotations

import os
import select
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.transport import reactor as _reactor
from repro.transport.base import RequestHandler, TransportMessage, parse_url
from repro.util.errors import (
    HarnessTimeoutError,
    ServerBusyError,
    TransportClosedError,
    TransportError,
)

__all__ = [
    "TcpListener",
    "TcpTransport",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_PENDING_MAX_S",
    "PROTOCOL_VERSION",
    "STATUS_OK",
    "STATUS_FAULT",
    "STATUS_BUSY",
]

PROTOCOL_VERSION = 2

_HEADER = struct.Struct(">I")   # frame length
_META = struct.Struct(">QH")    # correlation id, content-type length
_MIN_BODY = _META.size + 1      # meta + status byte, empty content type

STATUS_OK = 0
STATUS_FAULT = 1
#: The request was shed at admission (DESIGN.md §13): the server answered
#: immediately instead of queueing.  Clients surface this as
#: :class:`~repro.util.errors.ServerBusyError`; pre-reactor peers never
#: send it, so plain v2 decoders are unaffected.
STATUS_BUSY = 2

#: Status-byte flag marking a frame that carries a trace block between the
#: status byte and the payload (uint16 BE block length, then the block —
#: see :mod:`repro.obs.trace`).  Pre-observability peers never set it, so
#: plain v2 frames remain valid; decoders strip it before acting on status.
TRACE_FLAG = 0x80
_TLEN = struct.Struct(">H")

# Pool and demux accounting (process-wide; DESIGN.md §10 names them).
_DIALS = _metrics.registry.counter("tcp.client.dials")
_CHANNELS = _metrics.registry.gauge("tcp.client.channels")
_CHANNEL_FAILURES = _metrics.registry.counter("tcp.client.channel_failures")
_LATE_DROPS = _metrics.registry.counter("tcp.client.late_drops")
_SWEPT = _metrics.registry.counter("tcp.client.swept")
_SERVED_INLINE = _metrics.registry.counter("tcp.server.inline")
_SERVED_OFFLOADED = _metrics.registry.counter("tcp.server.offloaded")

#: Channels per peer a :class:`TcpTransport` may open (least-loaded pick).
try:
    DEFAULT_POOL_SIZE = max(1, int(os.environ.get("REPRO_TCP_POOL_SIZE", "2")))
except ValueError:
    DEFAULT_POOL_SIZE = 2

#: Budget for a peer that stalls mid-frame before the channel is poisoned.
_FRAME_GRACE_S = 5.0

#: Ceiling on how long a pending reply may sit unanswered before the sweep
#: fails it with :class:`HarnessTimeoutError` — the bound on correlation-id
#: table growth when a peer dies without closing the socket.  ``0`` disables.
try:
    DEFAULT_PENDING_MAX_S = max(0.0, float(os.environ.get("REPRO_TCP_PENDING_MAX_S", "60")))
except ValueError:
    DEFAULT_PENDING_MAX_S = 60.0


# -- frame primitives ---------------------------------------------------------


def _send_buffers(sock: socket.socket, buffers, grace_s: float = _FRAME_GRACE_S) -> None:
    """Write *buffers* fully, scatter-gather, without concatenating them.

    Resumable across partial sends and across ``socket.timeout`` (the
    socket's timeout is shared with a concurrent reader, so a send may see
    a timeout that was sized for someone else's deadline); only *grace_s*
    with zero forward progress raises.
    """
    views = []
    for buf in buffers:
        if len(buf):
            view = memoryview(buf)
            if not view.c_contiguous:  # e.g. a reversed slice; kernel needs contiguous
                view = memoryview(bytes(view))
            views.append(view)
    use_sendmsg = hasattr(sock, "sendmsg")
    last_progress = time.monotonic()
    while views:
        try:
            sent = sock.sendmsg(views) if use_sendmsg else sock.send(views[0])
        except InterruptedError:
            continue
        except socket.timeout:
            if time.monotonic() - last_progress > grace_s:
                raise
            continue
        if sent:
            last_progress = time.monotonic()
        while views and sent:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def _frame_prefix(
    corr_id: int, content_type: str, status: int, payload_len: int, trace: bytes = b""
) -> bytes:
    ct = content_type.encode("ascii")
    if trace:
        status |= TRACE_FLAG
        length = _META.size + len(ct) + 1 + _TLEN.size + len(trace) + payload_len
        return (
            _HEADER.pack(length) + _META.pack(corr_id, len(ct)) + ct
            + bytes((status,)) + _TLEN.pack(len(trace)) + trace
        )
    length = _META.size + len(ct) + 1 + payload_len
    return _HEADER.pack(length) + _META.pack(corr_id, len(ct)) + ct + bytes((status,))


def _write_frame(
    sock: socket.socket, corr_id: int, message: TransportMessage, status: int = STATUS_OK
) -> None:
    payload = message.payload
    prefix = _frame_prefix(corr_id, message.content_type, status, len(payload))
    _send_buffers(sock, (prefix, payload))


def _read_exact(sock: socket.socket, count: int) -> memoryview:
    """Read exactly *count* bytes via ``recv_into`` on one preallocated buffer."""
    buf = bytearray(count)
    view = memoryview(buf)
    got = 0
    while got < count:
        n = sock.recv_into(view[got:], count - got)
        if not n:
            raise TransportClosedError("peer closed the connection mid-frame")
        got += n
    return view


def _parse_body(body: memoryview) -> tuple[int, TransportMessage, int, bytes | None]:
    corr_id, ct_len = _META.unpack_from(body)
    ct_end = _META.size + ct_len
    if ct_end + 1 > len(body):
        raise TransportError("corrupt frame: content type overruns body")
    content_type = str(body[_META.size:ct_end], "ascii")
    status = body[ct_end]
    payload_start = ct_end + 1
    trace: bytes | None = None
    if status & TRACE_FLAG:
        status &= ~TRACE_FLAG
        if payload_start + _TLEN.size > len(body):
            raise TransportError("corrupt frame: trace block length overruns body")
        (trace_len,) = _TLEN.unpack_from(body, payload_start)
        payload_start += _TLEN.size
        if payload_start + trace_len > len(body):
            raise TransportError("corrupt frame: trace block overruns body")
        trace = bytes(body[payload_start:payload_start + trace_len])
        payload_start += trace_len
    return corr_id, TransportMessage(content_type, body[payload_start:]), status, trace


def _read_frame(sock: socket.socket) -> tuple[int, TransportMessage, int, bytes | None]:
    (length,) = _HEADER.unpack(_read_exact(sock, _HEADER.size))
    if length < _MIN_BODY:
        raise TransportError(f"short frame: {length} bytes")
    return _parse_body(_read_exact(sock, length))


# -- server side --------------------------------------------------------------

#: Payload of a STATUS_BUSY frame; clients raise it as ServerBusyError.
_BUSY_PAYLOAD = b"server at capacity: request shed at admission"


def _handle_to_frame(
    app_handler, corr_id: int, message: TransportMessage, trace: bytes | None
):
    """Run the request pipeline and encode the response frame buffers.

    Shared by both server cores (reactor workers and thread-per-connection
    handlers).  The trace block is stashed un-parsed: it is decoded only if
    the service reads its context (or when the server span finalizes on the
    finisher thread), and a mangled block materializes as "no context".
    """
    token = None
    if _trace.ENABLED and trace is not None:
        token = _trace.activate_wire(trace, _trace.from_bytes)
    try:
        response = app_handler(message)
        status = STATUS_OK
    except Exception as exc:  # deliver faults instead of dropping the socket
        response = TransportMessage("text/plain", str(exc).encode("utf-8"))
        status = STATUS_FAULT
    finally:
        if token is not None:
            _trace.deactivate(token)
    payload = response.payload
    prefix = _frame_prefix(corr_id, response.content_type, status, len(payload))
    return (prefix, payload)


class _FrameJob(_reactor.Job):
    """One reassembled v2 frame awaiting decode/dispatch on the pool."""

    __slots__ = ("corr_id", "message", "trace")

    def __init__(self, corr_id: int, message: TransportMessage, trace: bytes | None):
        self.corr_id = corr_id
        self.message = message
        self.trace = trace

    def run(self, app_handler):
        return _handle_to_frame(app_handler, self.corr_id, self.message, self.trace)

    def busy_reply(self):
        return (
            _frame_prefix(self.corr_id, "text/plain", STATUS_BUSY, len(_BUSY_PAYLOAD)),
            _BUSY_PAYLOAD,
        )


class _FrameParser(_reactor.MessageParser):
    """Incremental v2 frame reassembly for the reactor's recv loop.

    Keeps the zero-copy discipline of the threaded path: the 4-byte header
    lands in a reused buffer, each body gets one preallocated ``bytearray``
    that ``recv_into`` fills across however many passes the kernel needs,
    and the payload reaches codecs as a ``memoryview`` of that buffer.
    """

    __slots__ = ("_hdr", "_got", "_body", "_need", "_max")

    def __init__(self, max_message: int = _reactor.DEFAULT_MAX_MESSAGE):
        self._hdr = bytearray(_HEADER.size)
        self._got = 0
        self._body: bytearray | None = None
        self._need = 0
        self._max = max_message

    @property
    def mid_message(self) -> bool:
        return self._got > 0 or self._body is not None

    def next_buffer(self) -> memoryview:
        if self._body is None:
            return memoryview(self._hdr)[self._got:]
        return memoryview(self._body)[self._got:]

    def advance(self, n: int) -> list:
        self._got += n
        jobs: list[_FrameJob] = []
        while True:
            if self._body is None:
                if self._got < _HEADER.size:
                    return jobs
                (length,) = _HEADER.unpack(self._hdr)
                if length < _MIN_BODY:
                    raise TransportError(f"short frame: {length} bytes")
                if length > self._max:
                    raise TransportError(
                        f"frame of {length} bytes exceeds the {self._max} byte cap"
                    )
                self._body = bytearray(length)
                self._need = length
                self._got = 0
                return jobs  # next recv fills the body buffer
            if self._got < self._need:
                return jobs
            corr_id, message, _status, trace = _parse_body(memoryview(self._body))
            jobs.append(_FrameJob(corr_id, message, trace))
            self._body = None
            self._got = 0
            return jobs


class _BoundedHandler(socketserver.BaseRequestHandler):
    """Thread-per-connection handler (the pre-reactor A/B baseline)."""

    def handle(self) -> None:  # one connection, many (possibly pipelined) frames
        server: "_ThreadedServer" = self.server  # type: ignore[assignment]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        wlock = threading.Lock()  # response frames must not interleave
        busy = [0]  # requests currently executing on the worker pool
        conn_key = id(self)

        def write(buffers) -> None:
            try:
                with wlock:
                    _send_buffers(sock, buffers)
            except (ConnectionError, OSError):
                pass

        def offloaded(corr_id, message, trace, token) -> None:
            try:
                write(_handle_to_frame(server.app_handler, corr_id, message, trace))
            finally:
                token.release()
                with wlock:
                    busy[0] -= 1

        while True:
            try:
                corr_id, message, _status, trace = _read_frame(sock)
            except (TransportClosedError, TransportError, ConnectionError, OSError):
                return
            # Pipelined requests run concurrently on the worker pool; a lone
            # request is answered inline, sparing it the thread-pool hop.
            try:
                more, _, _ = select.select([sock], [], [], 0)
            except (OSError, ValueError):
                return
            with wlock:
                inline = not more and not busy[0]
            if inline:
                _SERVED_INLINE.inc()
                write(_handle_to_frame(server.app_handler, corr_id, message, trace))
                continue
            # the offload queue is admission-gated: a flood answers typed
            # busy frames instead of growing the executor queue unboundedly
            token = server.admission.try_admit(conn_key)
            if token is None:
                write(
                    (
                        _frame_prefix(
                            corr_id, "text/plain", STATUS_BUSY, len(_BUSY_PAYLOAD)
                        ),
                        _BUSY_PAYLOAD,
                    )
                )
                continue
            with wlock:
                busy[0] += 1
            _SERVED_OFFLOADED.inc()
            try:
                server.executor.submit(offloaded, corr_id, message, trace, token)
            except RuntimeError:  # server shutting down
                token.release()
                return


class _ThreadedServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # stock backlog is 5; hundreds of near-simultaneous dials (the C9 scale
    # bench) would overflow it into SYN retries that skew every timing
    request_queue_size = 128

    def __init__(
        self,
        address,
        app_handler: RequestHandler,
        workers: int = 32,
        queue_max: int | None = None,
        per_conn_max: int | None = None,
    ):
        super().__init__(address, _BoundedHandler)
        self.app_handler = app_handler
        self.admission = _reactor.AdmissionController(workers, queue_max, per_conn_max)
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tcp-worker"
        )

    def server_close(self) -> None:
        super().server_close()
        self.executor.shutdown(wait=False, cancel_futures=True)


def _reactor_default() -> bool:
    return os.environ.get("REPRO_SERVER_REACTOR", "1") not in ("0", "false", "no")


class TcpListener:
    """A framed-TCP server endpoint; URL scheme ``tcp://host:port``.

    By default the listener runs on the event-loop core
    (:mod:`repro.transport.reactor`): one reactor thread multiplexes every
    socket, ``workers`` bounds the pool that runs decode/dispatch, and
    admission control (``queue_max``, ``per_conn_max`` — env
    ``REPRO_SERVER_QUEUE_MAX`` / ``REPRO_SERVER_PER_CONN_MAX``) sheds
    over-capacity requests with typed busy frames.  ``read_deadline_s``
    bounds how long a peer may take to finish a started frame (slow-loris
    protection).  ``reactor=False`` (env ``REPRO_SERVER_REACTOR=0``)
    restores the thread-per-connection server — kept as the A/B baseline
    for ``benchmarks/bench_c9_concurrency.py`` — whose offload queue is
    admission-gated by the same controller.
    """

    def __init__(
        self,
        handler: RequestHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 32,
        reactor: bool | None = None,
        queue_max: int | None = None,
        per_conn_max: int | None = None,
        read_deadline_s: float | None = None,
        drain_s: float = 1.0,
    ):
        self._drain_s = drain_s
        self._reactor = _reactor_default() if reactor is None else reactor
        if self._reactor:
            self._server = _reactor.ReactorServer(
                (host, port),
                handler,
                _FrameParser,
                workers=workers,
                queue_max=queue_max,
                per_conn_max=per_conn_max,
                read_deadline_s=read_deadline_s,
                name="tcp-reactor",
            )
            self._host, self._port = self._server.address
            self._thread = None
        else:
            self._server = _ThreadedServer(
                (host, port), handler, workers=workers,
                queue_max=queue_max, per_conn_max=per_conn_max,
            )
            self._host, self._port = self._server.server_address[:2]
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"tcp-listener-{self._port}",
                daemon=True,
            )
            self._thread.start()

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    @property
    def admission(self) -> "_reactor.AdmissionController":
        """The live admission controller (shared vocabulary across cores)."""
        return self._server.admission

    def close(self) -> None:
        if self._reactor:
            self._server.close(self._drain_s)
        else:
            self._server.shutdown()
            self._server.server_close()


# -- client side --------------------------------------------------------------


class _Pending:
    """One in-flight request awaiting its correlated reply."""

    __slots__ = ("done", "message", "status", "error", "expires_at")

    def __init__(self, expires_at: float | None = None):
        self.done = False
        self.message: TransportMessage | None = None
        self.status = STATUS_OK
        self.error: Exception | None = None
        self.expires_at = expires_at  # monotonic deadline for the sweep


class _Channel:
    """One multiplexed socket: many in-flight requests, demuxed by id.

    There is no dedicated reader thread.  Callers take turns reading
    (leader/follower): a lone request keeps the classic send-then-recv-on-
    this-thread fast path — no extra context switch on the latency-critical
    single-caller case — while under concurrency whichever caller holds the
    read lease demultiplexes reply frames to the others by correlation id.
    """

    def __init__(self, url: str, sock: socket.socket, pending_max_s: float = 0.0):
        self._url = url
        self._sock = sock
        self._pending_max_s = max(0.0, pending_max_s)
        self._cv = threading.Condition()
        self._wlock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_id = 1
        self._reading = False  # a leader currently owns recv
        self._dead = False
        self._closing = False
        self._close_reason = "transport closed"
        self._hdr = bytearray(_HEADER.size)  # reused by whoever leads

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def dead(self) -> bool:
        return self._dead

    def request(
        self, message: TransportMessage, timeout: float | None
    ) -> tuple[TransportMessage, int]:
        corr_id, pending = self._register()
        try:
            trace = b""
            if _trace.ENABLED:
                ctx = _trace.current()
                if ctx is not None:
                    trace = _trace.to_bytes(ctx)
            payload = message.payload
            prefix = _frame_prefix(
                corr_id, message.content_type, STATUS_OK, len(payload), trace
            )
            with self._wlock:
                _send_buffers(self._sock, (prefix, payload))
        except (socket.timeout, ConnectionError, OSError) as exc:
            self._abandon(corr_id)
            self._fail(f"connection to {self._url} lost: {exc}")
            raise TransportClosedError(f"connection to {self._url} lost: {exc}") from exc
        return self._await(corr_id, pending, timeout)

    # -- demultiplexing ----------------------------------------------------

    def _register(self) -> tuple[int, _Pending]:
        with self._cv:
            if self._dead or self._closing:
                raise TransportClosedError(self._close_reason)
            corr_id = self._next_id
            self._next_id += 1
            expires_at = None
            if self._pending_max_s > 0:
                expires_at = time.monotonic() + self._pending_max_s
            pending = _Pending(expires_at)
            self._pending[corr_id] = pending
            return corr_id, pending

    def _abandon(self, corr_id: int) -> None:
        with self._cv:
            self._pending.pop(corr_id, None)

    def _await(
        self, corr_id: int, pending: _Pending, timeout: float | None
    ) -> tuple[TransportMessage, int]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            lead = False
            with self._cv:
                if pending.done:
                    break
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # abandoning the id keeps the channel healthy: the
                        # late reply is demuxed to a missing id and dropped
                        self._pending.pop(corr_id, None)
                        raise HarnessTimeoutError(f"request to {self._url} timed out")
                if not self._reading:
                    self._reading = True
                    lead = True
                else:
                    self._cv.wait(remaining)
                    continue
            try:
                self._lead(pending, deadline)
            finally:
                with self._cv:
                    self._reading = False
                    self._cv.notify_all()
        if pending.error is not None:
            raise pending.error
        return pending.message, pending.status  # type: ignore[return-value]

    def _sweep_expired(self, now: float) -> None:
        """Fail every pending entry whose expiry has passed.

        This is the bound on correlation-id table growth when the peer dies
        without closing the socket: the entry is removed and its caller is
        woken with :class:`HarnessTimeoutError` instead of waiting forever.
        """
        with self._cv:
            expired = [
                corr_id
                for corr_id, p in self._pending.items()
                if p.expires_at is not None and p.expires_at <= now
            ]
            for corr_id in expired:
                entry = self._pending.pop(corr_id)
                entry.error = HarnessTimeoutError(
                    f"request to {self._url} unanswered after "
                    f"{self._pending_max_s}s; pending entry swept"
                )
                entry.done = True
                _SWEPT.inc()
            if expired:
                self._cv.notify_all()

    def _earliest_expiry(self) -> float | None:
        with self._cv:
            return min(
                (p.expires_at for p in self._pending.values() if p.expires_at is not None),
                default=None,
            )

    def _lead(self, pending: _Pending, deadline: float | None) -> None:
        """Read frames and dispatch them until *pending* is resolved.

        Never raises: socket failures poison the channel (waking every
        waiter with an error), a between-frames deadline simply returns so
        :meth:`_await` can time the caller out and hand the lease over.
        Each read waits at most until the caller's deadline *or* the
        earliest pending expiry, whichever comes first, so the sweep runs
        even when every caller passed ``timeout=None``.
        """
        while not pending.done:
            now = time.monotonic()
            self._sweep_expired(now)
            if pending.done:  # our own entry may have just been swept
                return
            remaining = None
            if deadline is not None:
                remaining = deadline - now
                if remaining <= 0:
                    return
            bound = remaining
            expiry = self._earliest_expiry()
            if expiry is not None:
                # floor > 0: settimeout(0) would flip the socket non-blocking
                until_sweep = max(1e-4, expiry - now)
                bound = until_sweep if bound is None else min(bound, until_sweep)
            try:
                frame = self._read_one(bound)
            except socket.timeout:
                if deadline is not None and time.monotonic() >= deadline:
                    return  # caller's deadline hit; _await raises for it
                continue  # sweep horizon reached: expire entries, keep reading
            except (TransportClosedError, TransportError, ConnectionError, OSError) as exc:
                self._fail(f"connection to {self._url} lost: {exc}")
                return
            except Exception as exc:  # defensive: never leave waiters hanging
                self._fail(f"reader failed on {self._url}: {exc}")
                return
            self._dispatch(*frame)

    def _read_one(
        self, remaining: float | None
    ) -> tuple[int, TransportMessage, int, bytes | None]:
        """Read one frame; ``recv_into`` preallocated buffers, zero joins.

        The first header byte may wait up to *remaining* (a clean
        ``socket.timeout`` there consumed nothing).  After that the peer
        owes us a whole frame: each subsequent recv gets a grace budget,
        and stalling mid-frame is a framing failure.
        """
        sock = self._sock
        hdr = memoryview(self._hdr)
        got = 0
        sock.settimeout(remaining)
        while got < _HEADER.size:
            try:
                n = sock.recv_into(hdr[got:], _HEADER.size - got)
            except socket.timeout:
                if got == 0:
                    raise
                raise TransportClosedError("peer stalled mid-frame") from None
            if not n:
                raise TransportClosedError("peer closed the connection")
            if got == 0:
                sock.settimeout(_FRAME_GRACE_S)
            got += n
        (length,) = _HEADER.unpack(self._hdr)
        if length < _MIN_BODY:
            raise TransportError(f"short frame: {length} bytes")
        body = memoryview(bytearray(length))
        got = 0
        while got < length:
            try:
                n = sock.recv_into(body[got:], length - got)
            except socket.timeout:
                raise TransportClosedError("peer stalled mid-frame") from None
            if not n:
                raise TransportClosedError("peer closed the connection mid-frame")
            got += n
        return _parse_body(body)

    def _dispatch(
        self, corr_id: int, message: TransportMessage, status: int,
        trace: bytes | None = None,
    ) -> None:
        with self._cv:
            pending = self._pending.pop(corr_id, None)
            if pending is None:
                _LATE_DROPS.inc()
                return  # late reply for a timed-out request: dropped
            pending.message = message
            pending.status = status
            pending.done = True
            self._cv.notify_all()

    def _fail(self, reason: str) -> None:
        with self._cv:
            if not self._dead:
                self._dead = True
                self._close_reason = reason
                _CHANNELS.dec()
                if not self._closing:
                    _CHANNEL_FAILURES.inc()
                for pending in self._pending.values():
                    pending.error = TransportClosedError(reason)
                    pending.done = True
                self._pending.clear()
                self._cv.notify_all()
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self, drain_s: float = 1.0) -> None:
        """Stop accepting requests, drain in-flight ones, then close."""
        with self._cv:
            if self._dead:
                return
            self._closing = True
            deadline = time.monotonic() + max(0.0, drain_s)
            while self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
        self._fail("transport closed")


class TcpTransport:
    """Client side of the framed-TCP transport.

    Keeps a bounded pool of up to ``pool_size`` multiplexed channels to the
    peer, dialed lazily and picked least-loaded per request, so concurrent
    callers share sockets without head-of-line blocking.  ``close`` drains
    in-flight requests gracefully before tearing channels down.

    ``pending_max_s`` caps how long any correlation-id entry may wait for
    its reply (default :data:`DEFAULT_PENDING_MAX_S`, env
    ``REPRO_TCP_PENDING_MAX_S``); a peer that dies without closing the
    socket therefore fails waiting callers with
    :class:`~repro.util.errors.HarnessTimeoutError` instead of leaking
    entries and hanging ``timeout=None`` callers forever.  ``0`` disables
    the sweep.

    ``multiplex=False`` restores the protocol-v1 *behaviour* — one channel,
    one request in flight at a time — and exists for A/B benchmarking the
    serialized wire path (``benchmarks/bench_c9_concurrency.py``).
    """

    def __init__(
        self,
        url: str,
        connect_timeout: float = 5.0,
        pool_size: int | None = None,
        multiplex: bool = True,
        drain_timeout: float = 1.0,
        pending_max_s: float | None = None,
    ):
        scheme, rest = parse_url(url)
        if scheme != "tcp":
            raise TransportError(f"not a tcp url: {url!r}")
        host, _, port_text = rest.rpartition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise TransportError(f"bad tcp url (no port): {url!r}") from exc
        self._url = url
        self._address = (host, port)
        self._connect_timeout = connect_timeout
        self._drain_timeout = drain_timeout
        self._pending_max_s = max(
            0.0, DEFAULT_PENDING_MAX_S if pending_max_s is None else pending_max_s
        )
        self._pool_size = max(1, pool_size if pool_size is not None else DEFAULT_POOL_SIZE)
        if not multiplex:
            self._pool_size = 1
        self._serial_lock = None if multiplex else threading.Lock()
        self._lock = threading.Lock()
        self._channels: list[_Channel] = []
        self._closed = False
        # dial eagerly so an unreachable peer fails at construction
        self._channels.append(self._dial())

    def _dial(self) -> _Channel:
        try:
            sock = socket.create_connection(self._address, timeout=self._connect_timeout)
        except OSError as exc:
            raise TransportError(f"cannot connect to {self._url}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        _DIALS.inc()
        _CHANNELS.inc()
        return _Channel(self._url, sock, pending_max_s=self._pending_max_s)

    def _pick(self) -> _Channel:
        with self._lock:
            if self._closed:
                raise TransportClosedError("transport closed")
            if any(channel.dead for channel in self._channels):
                self._channels = [c for c in self._channels if not c.dead]
            for channel in self._channels:
                if channel.in_flight == 0:
                    return channel
            if len(self._channels) < self._pool_size:
                channel = self._dial()
                self._channels.append(channel)
                return channel
            if not self._channels:
                channel = self._dial()
                self._channels.append(channel)
                return channel
            return min(self._channels, key=lambda c: c.in_flight)

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        if self._closed:
            raise TransportClosedError("transport closed")
        if self._serial_lock is not None:
            with self._serial_lock:  # protocol-v1 behaviour: one call at a time
                response, status = self._pick().request(message, timeout)
        else:
            response, status = self._pick().request(message, timeout)
        if status == STATUS_BUSY:
            raise ServerBusyError(
                f"{self._url} shed the request: "
                f"{bytes(response.payload).decode('utf-8', 'replace')}"
            )
        if status == STATUS_FAULT:
            raise TransportError(
                f"remote fault from {self._url}: "
                f"{bytes(response.payload).decode('utf-8', 'replace')}"
            )
        return response

    def close(self) -> None:
        """Graceful drain: no new requests, in-flight ones get to finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = self._channels[:]
            self._channels.clear()
        for channel in channels:
            channel.close(self._drain_timeout)
