"""servicegen — static stub/interface source generation."""

import numpy as np
import pytest

from repro.container import LightweightContainer
from repro.plugins.services import CounterService, MatMul
from repro.tools.servicegen import generate_port_type_source, generate_stub_source
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import WsdlError


class TestPortTypeSource:
    def test_compiles_and_defines_abstract_class(self):
        doc = generate_wsdl(MatMul)
        source = generate_port_type_source(doc)
        namespace: dict = {}
        exec(compile(source, "<gen>", "exec"), namespace)
        cls = namespace["MatMulPortType"]
        import abc

        assert isinstance(cls, abc.ABCMeta)
        with pytest.raises(TypeError):
            cls()  # abstract

    def test_methods_signature_from_messages(self):
        doc = generate_wsdl(MatMul)
        source = generate_port_type_source(doc)
        assert "def getResult(self, mata, matb):" in source
        assert "def multiply(self, mata, matb):" in source

    def test_multiple_port_types_require_name(self):
        from dataclasses import replace

        doc = generate_wsdl(MatMul)
        doc2 = replace(doc, port_types=doc.port_types + doc.port_types)
        with pytest.raises(WsdlError):
            generate_port_type_source(doc2)


class TestStubSource:
    def test_requires_deployed_service(self):
        doc = generate_wsdl(MatMul)  # no service/ports yet
        with pytest.raises(WsdlError, match="deploy"):
            generate_stub_source(doc, service_name=None)

    def test_generated_stub_runs_against_live_container(self, rng):
        with LightweightContainer("gen-test", host="genhost") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
            source = generate_stub_source(handle.document, class_name="MatMulClient")
            namespace: dict = {}
            exec(compile(source, "<stub>", "exec"), namespace)
            from repro.bindings import ClientContext

            client = namespace["MatMulClient"](
                context=ClientContext(container_uri=container.uri, host="genhost")
            )
            assert client.protocol == "local-instance"
            a = rng.random((3, 3))
            assert np.allclose(client.multiply(a, a), a @ a)
            client.close()

    def test_generated_stub_remote_binding(self, rng):
        with LightweightContainer("gen-test2", host="genhost2") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
            source = generate_stub_source(handle.document)
            namespace: dict = {}
            exec(compile(source, "<stub>", "exec"), namespace)
            from repro.bindings import ClientContext

            client = namespace["MatMulStub"](context=ClientContext(host="elsewhere"))
            assert client.protocol == "xdr"
            a = rng.random(4)
            result = client.getResult(a, a)
            assert np.allclose(result, (a.reshape(2, 2) @ a.reshape(2, 2)).ravel())
            client.close()

    def test_embedded_wsdl_is_self_contained(self):
        with LightweightContainer("gen-test3", host="genhost3") as container:
            handle = container.deploy(CounterService)
            source = generate_stub_source(handle.document)
            assert "WSDL_TEXT = " in source
            assert "CounterService" in source

    def test_invalid_class_name_rejected(self):
        with LightweightContainer("gen-test4", host="genhost4") as container:
            handle = container.deploy(CounterService)
            with pytest.raises(WsdlError):
                generate_stub_source(handle.document, class_name="not a name")
