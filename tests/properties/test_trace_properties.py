"""Property tests: the three trace wire forms are lossless and agree.

The tentpole claim is one consistent trace context regardless of carrier:
any context pushed through the binary (TCP), text (HTTP header), and SOAP
(envelope header block) forms must decode back to the *same* context, and
corrupted carriers must raise :class:`TraceWireError`, never decode to a
different context.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import trace
from repro.obs.trace import TraceContext, TraceWireError
from repro.soap.envelope import build_call_envelope, parse_call_envelope

# -- strategies ---------------------------------------------------------------

hex_id = st.integers(min_value=1, max_value=2**64 - 1).map(lambda v: f"{v:016x}")

# Baggage text is arbitrary unicode minus surrogates: every form
# percent-encodes (text/SOAP) or length-prefixes UTF-8 (binary).
bag_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)

contexts = st.builds(
    TraceContext,
    trace_id=hex_id,
    span_id=hex_id,
    parent_id=st.one_of(st.just(""), hex_id),
    baggage=st.lists(st.tuples(bag_text, bag_text), max_size=4).map(tuple),
)


# -- round trips --------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(contexts)
def test_binary_round_trip(ctx):
    assert trace.from_bytes(trace.to_bytes(ctx)) == ctx


@settings(max_examples=150, deadline=None)
@given(contexts)
def test_header_round_trip(ctx):
    assert trace.from_header(trace.to_header(ctx)) == ctx


@settings(max_examples=100, deadline=None)
@given(contexts)
def test_soap_round_trip_inside_real_envelope(ctx):
    envelope = build_call_envelope("Svc", "op", [1.0, "payload"], "base64")
    spliced = trace.splice_soap(envelope, ctx)
    assert trace.extract_soap(spliced) == ctx
    # splicing must not disturb the call the envelope carries
    target, operation, args = parse_call_envelope(spliced)
    assert (target, operation) == ("Svc", "op")
    assert args[1] == "payload"


@settings(max_examples=100, deadline=None)
@given(contexts)
def test_all_three_forms_agree(ctx):
    """binary ⇄ header ⇄ SOAP: every decode yields the same context."""
    via_binary = trace.from_bytes(trace.to_bytes(ctx))
    via_header = trace.from_header(trace.to_header(ctx))
    via_soap = trace.extract_soap(
        trace.splice_soap(build_call_envelope("S", "o", [], "base64"), ctx)
    )
    assert via_binary == via_header == via_soap == ctx


# -- rejection ----------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(contexts, st.integers(min_value=0))
def test_binary_prefixes_rejected(ctx, cut):
    blob = trace.to_bytes(ctx)
    cut %= len(blob)  # every strict prefix
    with pytest.raises(TraceWireError):
        trace.from_bytes(blob[:cut])


@settings(max_examples=150, deadline=None)
@given(st.binary(max_size=64))
def test_binary_garbage_never_decodes_silently(blob):
    """Random bytes either raise or round-trip to themselves (a valid block)."""
    try:
        ctx = trace.from_bytes(blob)
    except TraceWireError:
        return
    assert trace.to_bytes(ctx) == blob


def test_seeded_random_header_garbage_rejected():
    rng = random.Random(20260805)
    alphabet = "0123456789abcdefg-;=,% "
    rejected = 0
    for _ in range(500):
        text = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 60)))
        try:
            ctx = trace.from_header(text)
        except TraceWireError:
            rejected += 1
        else:
            # the rare accidental valid header must re-encode to match
            assert trace.to_header(ctx).startswith(text[:49])
    assert rejected > 450  # almost everything random is garbage


def test_seeded_random_bitflips_in_binary_form_detected():
    rng = random.Random(98127)
    ctx = trace.new_trace().child().with_baggage("k", "v")
    blob = bytearray(trace.to_bytes(ctx))
    flips_that_matter = 0
    for _ in range(300):
        index = rng.randrange(len(blob))
        bit = 1 << rng.randrange(8)
        mutated = bytearray(blob)
        mutated[index] ^= bit
        try:
            decoded = trace.from_bytes(bytes(mutated))
        except TraceWireError:
            flips_that_matter += 1
        else:
            # a flip inside an id/baggage byte yields a *different* context,
            # never a silent equal one
            if decoded != ctx:
                flips_that_matter += 1
    assert flips_that_matter == 300
