"""F3/F4 — Figures 3 and 4: Web-Services deployment loop and DVM interaction.

Figure 3: a provider deploys services A, B, C into a container, publishes
interface + access point documents to a lookup system; a client queries the
lookup system once, then "interaction takes place directly between the Web
Service and the client.  There is no need for further interrogation of the
lookup service."

Figure 4: inside a DVM, component A registers in the DVM lookup service,
other components query it for a handle (a proxy hiding connection details)
and call through the proxy.
"""

import numpy as np
import pytest

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins.services import CounterService, LinearAlgebraService, MatMul, WSTime
from repro.registry.uddi import UddiRegistry
from repro.registry.wsil import WsilDocument


class TestFigure3WebServicesLoop:
    def test_deploy_publish_discover_invoke(self, rng):
        # -- deployment of three services into one provider container
        with LightweightContainer("provider", host="prov") as container:
            handles = {
                "A": container.deploy(MatMul, name="A", bindings=("local-instance", "soap")),
                "B": container.deploy(WSTime, name="B", bindings=("local-instance", "soap")),
                "C": container.deploy(CounterService, name="C", bindings=("local-instance", "soap")),
            }
            # -- publication of interface + access points to the lookup system
            uddi = UddiRegistry()
            business = uddi.save_business("provider-corp")
            for handle in handles.values():
                uddi.publish_wsdl(business.key, handle.document)

            # -- client side: one interrogation of the lookup system
            found = uddi.find_service("A")
            assert len(found) == 1
            document = uddi.get_wsdl(found[0].key)

            # -- direct interaction; the lookup service is out of the loop
            factory = DynamicStubFactory(ClientContext(host="clienthost"))
            stub = factory.create(document, prefer=("soap",))
            a = rng.random(16)
            result = stub.getResult(a, a)
            assert np.allclose(result, (a.reshape(4, 4) @ a.reshape(4, 4)).ravel())
            stub.close()

    def test_wsil_flavour_of_lookup(self):
        # WSIL lists name -> WSDL location; location here is the UDDI key
        uddi = UddiRegistry()
        business = uddi.save_business("prov")
        with LightweightContainer("prov-wsil", host="pw") as container:
            handle = container.deploy(WSTime, bindings=("local-instance", "soap"))
            service = uddi.publish_wsdl(business.key, handle.document)
            wsil = WsilDocument()
            wsil.add("WSTime", service.key, "time service")
            # a crawler parses WSIL, resolves the WSDL through the registry
            crawled = WsilDocument.from_string(wsil.to_string())
            document = uddi.get_wsdl(crawled.locate("WSTime"))
            assert document.name == "WSTime"

    def test_exposure_review_hides_service_from_lookup(self):
        """Section 6: publish only after internal testing; revocable."""
        with LightweightContainer("staged", host="st") as container:
            handle = container.deploy(LinearAlgebraService, exposure="private")
            assert container.registry.find("//service") == []
            # internal testing through the private path still works
            stub = container.lookup("LinearAlgebraService", include_private=True)
            assert stub.determinant(np.eye(2)) == 1.0
            # now publish it
            container.set_exposure(handle.instance_id, "public")
            assert len(container.registry.find("//service")) == 1


class TestFigure4DvmInteraction:
    @pytest.fixture
    def dvm(self):
        net = lan(3)
        with HarnessDvm("fig4", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            yield harness

    def test_register_query_proxy_invoke(self, dvm, rng):
        # component A is created inside the DVM and registered in the DVM
        # lookup service
        dvm.deploy("node1", MatMul, name="A")
        # another component queries the lookup service for a handle
        owner, document = dvm.lookup("node2", "A")
        assert owner == "node1"
        # the handle contains a proxy hiding remote connection details
        stub = dvm.stub("node2", "A")
        a = rng.random((4, 4))
        assert np.allclose(stub.multiply(a, a), a @ a)
        stub.close()

    def test_client_server_blur(self, dvm):
        """'every component can play both roles at the same time'"""
        dvm.deploy("node0", CounterService, name="counter0")
        dvm.deploy("node1", CounterService, name="counter1")
        # node0's component calls node1's and vice versa
        stub01 = dvm.stub("node0", "counter1")
        stub10 = dvm.stub("node1", "counter0")
        assert stub01.increment(1) == 1
        assert stub10.increment(2) == 2
        stub01.close()
        stub10.close()

    def test_lookup_then_direct_no_further_lookups(self, dvm, rng):
        # deploy over real loopback XDR so fabric traffic isolates lookups
        dvm.deploy("node1", MatMul, name="A", bindings=("local-instance", "xdr"))
        net = dvm.network
        stub = dvm.stub("node0", "A")
        net.reset_stats()
        state_endpoint_traffic = 0
        for _ in range(5):
            a = rng.random((2, 2))
            stub.multiply(a, a)
        # calls ran over the XDR socket (real loopback), not the state
        # protocol: no further fabric messages to the lookup endpoints
        assert net.total_messages == state_endpoint_traffic
        stub.close()
