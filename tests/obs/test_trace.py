"""Unit tests for trace contexts, their three wire forms, and the recorder."""

import pytest

from repro.obs import trace
from repro.obs.trace import Span, TraceContext, TraceWireError


def ctx_with_baggage() -> TraceContext:
    return trace.new_trace().child().with_baggage("tenant", "acme").with_baggage(
        "note", "a=b;c,d %"
    )


class TestContext:
    def test_new_trace_is_rooted(self):
        ctx = trace.new_trace()
        assert ctx.parent_id == ""
        assert len(ctx.trace_id) == 16
        assert ctx.trace_id != ctx.span_id

    def test_child_keeps_trace_and_parents_to_span(self):
        parent = trace.new_trace()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_baggage_round_trip_and_override(self):
        ctx = trace.new_trace().with_baggage("k", "1").with_baggage("k", "2")
        assert ctx.bag("k") == "2"
        assert ctx.bag("missing", "d") == "d"

    def test_invalid_ids_rejected(self):
        with pytest.raises(TraceWireError):
            TraceContext("nothex", "0" * 15 + "1")
        with pytest.raises(TraceWireError):
            TraceContext("0" * 16, "f" * 16)  # zero trace id
        with pytest.raises(TraceWireError):
            TraceContext("f" * 16, "a" * 16, parent_id="bad")


class TestBinaryForm:
    def test_round_trip(self):
        ctx = ctx_with_baggage()
        assert trace.from_bytes(trace.to_bytes(ctx)) == ctx

    def test_round_trip_without_parent_or_baggage(self):
        ctx = trace.new_trace()
        assert trace.from_bytes(trace.to_bytes(ctx)) == ctx

    def test_truncation_rejected(self):
        blob = trace.to_bytes(ctx_with_baggage())
        for cut in (0, 1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(TraceWireError):
                trace.from_bytes(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = trace.to_bytes(trace.new_trace())
        with pytest.raises(TraceWireError):
            trace.from_bytes(blob + b"x")

    def test_wrong_magic_and_version_rejected(self):
        blob = trace.to_bytes(trace.new_trace())
        with pytest.raises(TraceWireError):
            trace.from_bytes(b"XX" + blob[2:])
        with pytest.raises(TraceWireError):
            trace.from_bytes(blob[:2] + b"\x63" + blob[3:])


class TestHeaderForm:
    def test_round_trip(self):
        ctx = ctx_with_baggage()
        assert trace.from_header(trace.to_header(ctx)) == ctx

    def test_rootless_parent_encodes_as_zero(self):
        ctx = trace.new_trace()
        header = trace.to_header(ctx)
        assert header.endswith("-" + "0" * 16)
        assert trace.from_header(header) == ctx

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "zz",
            "deadbeef-cafe",                      # wrong widths
            "g" * 16 + "-" + "a" * 16 + "-" + "0" * 16,  # non-hex
            ("a" * 16 + "-") * 2 + "0" * 16 + ";",       # empty baggage section
            ("a" * 16 + "-") * 2 + "0" * 16 + ";novalue",
        ],
    )
    def test_garbage_rejected(self, bad):
        with pytest.raises(TraceWireError):
            trace.from_header(bad)


class TestSoapForm:
    def test_splice_and_extract(self):
        from repro.soap.envelope import build_call_envelope

        envelope = build_call_envelope("Svc", "op", [1.5, "x"], "base64")
        ctx = ctx_with_baggage()
        spliced = trace.splice_soap(envelope, ctx)
        assert trace.extract_soap(spliced) == ctx
        # the envelope still parses as the same call
        from repro.soap.envelope import parse_call_envelope

        assert parse_call_envelope(spliced)[:2] == ("Svc", "op")

    def test_no_marker_means_none(self):
        assert trace.extract_soap(b"<soapenv:Envelope/>") is None

    def test_payload_without_body_passes_through(self):
        ctx = trace.new_trace()
        assert trace.splice_soap(b"<foreign/>", ctx) == b"<foreign/>"

    def test_mangled_block_raises(self):
        envelope = trace.splice_soap(
            b'<soapenv:Envelope><soapenv:Body></soapenv:Body></soapenv:Envelope>',
            trace.new_trace(),
        )
        broken = envelope.replace(b'id="', b'id="zz', 1)
        with pytest.raises(TraceWireError):
            trace.extract_soap(broken)


class TestCurrentContext:
    def test_activate_deactivate(self):
        assert trace.current() is None
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        assert trace.current() is ctx
        trace.deactivate(token)
        assert trace.current() is None

    def test_use_is_scoped(self):
        ctx = trace.new_trace()
        with trace.use(ctx):
            assert trace.current() is ctx
        assert trace.current() is None

    def test_enable_flag(self):
        assert trace.enabled() is False
        trace.enable(True)
        assert trace.ENABLED is True
        trace.enable(False)
        assert trace.enabled() is False


class TestRecorder:
    def _span(self, i: int) -> Span:
        return Span(f"s{i}", "a" * 16, f"{i:016x}" if i else "1" * 16)

    def test_last_is_newest_first_and_bounded(self):
        rec = trace.SpanRecorder(capacity=3)
        for i in range(1, 6):
            rec.record(self._span(i))
        assert len(rec) == 3
        assert [s.name for s in rec.last(10)] == ["s5", "s4", "s3"]
        assert [s.name for s in rec.last(1)] == ["s5"]

    def test_describe_mentions_ids_and_timings(self):
        span = Span("client:xdr:op", "a" * 16, "b" * 16, timings_us={"transit": 12.0})
        text = span.describe()
        assert "client:xdr:op" in text
        assert "a" * 16 in text
        assert "transit=12us" in text
