"""In-process transport.

Connects endpoints within one Python process through a process-global name
table — the moral equivalent of components sharing a Harness kernel.  The
*encoded* flavour still pays full codec cost (used by benchmarks to isolate
encoding overhead from network overhead); the binding layer's local path
skips transports entirely.
"""

from __future__ import annotations

import threading

from repro.transport.base import Listener, RequestHandler, TransportMessage, parse_url
from repro.util.errors import TransportClosedError, TransportError

__all__ = ["InProcListener", "InProcTransport", "reset_inproc_namespace"]

_endpoints: dict[str, "InProcListener"] = {}
_lock = threading.Lock()


def reset_inproc_namespace() -> None:
    """Drop all registered endpoints (test isolation helper)."""
    with _lock:
        for listener in list(_endpoints.values()):
            listener._closed = True
        _endpoints.clear()


class InProcListener:
    """Server endpoint registered under ``inproc://<name>``."""

    def __init__(self, name: str, handler: RequestHandler):
        if "/" in name:
            raise TransportError(f"inproc endpoint name may not contain '/': {name!r}")
        self._name = name
        self._handler = handler
        self._closed = False
        with _lock:
            if name in _endpoints:
                raise TransportError(f"inproc endpoint already bound: {name!r}")
            _endpoints[name] = self

    @property
    def url(self) -> str:
        return f"inproc://{self._name}"

    def close(self) -> None:
        self._closed = True
        with _lock:
            if _endpoints.get(self._name) is self:
                del _endpoints[self._name]

    def _dispatch(self, message: TransportMessage) -> TransportMessage:
        if self._closed:
            raise TransportClosedError(f"endpoint closed: {self.url}")
        return self._handler(message)


class InProcTransport:
    """Client side dialing an ``inproc://`` URL."""

    def __init__(self, url: str):
        scheme, name = parse_url(url)
        if scheme != "inproc":
            raise TransportError(f"not an inproc url: {url!r}")
        self._name = name
        self._closed = False

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        if self._closed:
            raise TransportClosedError("transport closed")
        with _lock:
            listener = _endpoints.get(self._name)
        if listener is None:
            raise TransportError(f"no inproc endpoint named {self._name!r}")
        return listener._dispatch(message)

    def close(self) -> None:
        self._closed = True
