"""Client context: where is the caller, and what can it reach directly?

Binding selection in Harness II is a *locality* decision (Section 5): a
client co-located with the service instance should use the local-instance
binding; one on the same virtual network can use XDR sockets; anyone can
fall back to SOAP/HTTP.  :class:`ClientContext` captures the caller's
position so :mod:`repro.bindings.factory` can make that decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClientContext", "LOCAL_DIRECTORY"]

#: Process-global directory mapping container URI -> container object.
#: Containers self-register here on construction (see repro.container); the
#: local and local-instance bindings resolve through it.  The mapped object
#: must provide ``get_instance(instance_id)`` and ``instantiate(type_name)``.
LOCAL_DIRECTORY: dict[str, object] = {}


@dataclass(frozen=True)
class ClientContext:
    """The caller's location used for binding selection.

    ``container_uri`` — URI of the container the caller runs in (empty when
    the caller is a bare client outside any container).
    ``host`` — the caller's host name (virtual or real); XDR/loopback
    reachability is judged against the port address host.
    ``allow_remote`` — set False to *require* a local binding (used by tests
    asserting that co-location actually bypasses the network).
    ``network`` — the virtual fabric the caller is attached to, when any;
    required to use ``sim`` bindings (calls are charged to its link model).
    """

    container_uri: str = ""
    host: str = ""
    allow_remote: bool = True
    network: object = None  # VirtualNetwork | None (loose-typed to avoid an import cycle)

    def is_co_located(self, container_uri: str) -> bool:
        """True when the caller shares a container with the service."""
        return bool(self.container_uri) and self.container_uri == container_uri

    def resolve_container(self, container_uri: str) -> object | None:
        """The live container object for *container_uri*, if locally reachable.

        Reachability requires the container to live in this process *and*,
        when the context pins a host (virtual hosts in ``netsim`` share one
        process), the container's host part must match — otherwise two
        simulated machines would "locally" reach each other's memory.
        """
        container = LOCAL_DIRECTORY.get(container_uri)
        if container is None:
            return None
        if self.host:
            host_part = container_uri.removeprefix("container://").partition("/")[0]
            if host_part != self.host:
                return None
        return container
