"""Dynamic stub factory and binding selection policy.

Given a WSDL document and the caller's :class:`ClientContext`, the factory
picks the cheapest *usable* port and manufactures the stub for it — the
run-time counterpart of Figure 5's two arrows: a co-located client gets an
unmediated local path, a remote one gets XDR sockets or SOAP/HTTP.

Preference order (cheapest first)::

    local-instance  >  local  >  sim  >  xdr  >  mime  >  soap

A port is *usable* when its address is reachable from the context:
local-instance needs the named container to live in this process (and, on
virtual hosts, the same host); local needs an importable type; sim needs a
fabric-attached context; xdr/mime/soap need ``allow_remote``.
"""

from __future__ import annotations

from typing import Iterable

from repro.bindings.context import ClientContext
from repro.bindings.policy import BreakerRegistry, InvocationPolicy
from repro.bindings.stubs import LocalStub, ServiceStub, TransportStub, load_type
from repro.encoding.registry import CodecRegistry, default_registry
from repro.util.events import EventBus
from repro.transport.http import HttpTransport
from repro.transport.tcp import TcpTransport
from repro.util.errors import BindingError, NoBindingAvailableError
from repro.wsdl.extensions import (
    HttpAddressExt,
    LocalAddressExt,
    LocalBindingExt,
    LocalInstanceBindingExt,
    ServiceTargetExt,
    SimAddressExt,
    SoapAddressExt,
    XdrAddressExt,
    XdrBindingExt,
)
from repro.wsdl.model import WsdlDocument, WsdlPort, WsdlService

__all__ = ["DynamicStubFactory", "DEFAULT_PREFERENCE"]

DEFAULT_PREFERENCE: tuple[str, ...] = ("local-instance", "local", "sim", "xdr", "mime", "soap")

#: distinguishes "no per-call policy given, use the factory default" from
#: an explicit ``policy=None`` ("build this stub without any policy")
_UNSET = object()


class DynamicStubFactory:
    """Manufactures :class:`ServiceStub` objects from WSDL documents."""

    def __init__(
        self,
        context: ClientContext | None = None,
        codecs: CodecRegistry | None = None,
        policy: InvocationPolicy | None = None,
        events: EventBus | None = None,
        breakers: BreakerRegistry | None = None,
        tcp_pool_size: int | None = None,
        clock=None,
    ):
        self.context = context or ClientContext()
        self._codecs = codecs or default_registry
        # Default invocation policy applied to every network stub this
        # factory manufactures (None = raw, unretried invocations).  The
        # breaker registry is shared across stubs so every stub to the same
        # address trips / heals one circuit.  ``clock`` makes retry backoff
        # and breaker cooldowns test-drivable (None = wall clock).
        self.policy = policy
        self.events = events
        self.clock = clock
        self.breakers = breakers or BreakerRegistry(clock=clock)
        # Channels per TCP peer for stubs this factory builds (None = the
        # transport default, overridable via REPRO_TCP_POOL_SIZE).
        self.tcp_pool_size = tcp_pool_size

    # -- public API -----------------------------------------------------------

    def create(
        self,
        document: WsdlDocument,
        service_name: str | None = None,
        port_name: str | None = None,
        prefer: Iterable[str] | None = None,
        soap_array_mode: str = "base64",
        timeout: float | None = 30.0,
        credential: str | None = None,
        policy: InvocationPolicy | None = _UNSET,  # type: ignore[assignment]
    ) -> ServiceStub:
        """Build a stub for a service in *document*.

        With ``port_name`` the client "select[s] the type of protocol it
        wants to use"; without it the factory "dynamically generate[s] the
        required stub" for the best usable port (Section 4).

        ``policy`` overrides the factory's default invocation policy for
        this stub (pass ``None`` explicitly for a raw, unretried stub).
        Local bindings never carry a policy — there is no transport to fail.
        """
        document.validate()
        if policy is _UNSET:
            policy = self.policy
        service = self._select_service(document, service_name)
        candidates = self._rank_ports(document, service, port_name, prefer)
        errors: list[str] = []
        for port in candidates:
            try:
                return self._build(
                    document, service, port, soap_array_mode, timeout, credential, policy
                )
            except BindingError as exc:
                errors.append(f"{port.name}: {exc}")
        raise NoBindingAvailableError(
            f"no usable binding for service {service.name!r} "
            f"(context={self.context}, tried: {'; '.join(errors) or 'none'})"
        )

    def usable_protocols(self, document: WsdlDocument, service_name: str | None = None) -> list[str]:
        """Protocol tags of the ports this context could use, best first."""
        service = self._select_service(document, service_name)
        return [
            document.binding(port.binding).protocol
            for port in self._rank_ports(document, service, None, None)
        ]

    # -- selection ---------------------------------------------------------------

    @staticmethod
    def _select_service(document: WsdlDocument, service_name: str | None) -> WsdlService:
        if service_name is not None:
            return document.service(service_name)
        if len(document.services) != 1:
            raise BindingError(
                f"document {document.name!r} defines {len(document.services)} services; "
                "specify service_name"
            )
        return document.services[0]

    def _rank_ports(
        self,
        document: WsdlDocument,
        service: WsdlService,
        port_name: str | None,
        prefer: Iterable[str] | None,
    ) -> list[WsdlPort]:
        if port_name is not None:
            return [service.port(port_name)]
        order = tuple(prefer) if prefer is not None else DEFAULT_PREFERENCE
        ranked: list[tuple[int, int, WsdlPort]] = []
        for index, port in enumerate(service.ports):
            protocol = document.binding(port.binding).protocol
            if protocol not in order:
                continue
            if not self._usable(protocol, port):
                continue
            ranked.append((order.index(protocol), index, port))
        ranked.sort()
        return [port for _, _, port in ranked]

    def _usable(self, protocol: str, port: WsdlPort) -> bool:
        context = self.context
        if protocol == "local-instance":
            address = port.extension_of(LocalAddressExt)
            return address is not None and context.resolve_container(address.container) is not None
        if protocol == "local":
            address = port.extension_of(LocalAddressExt)
            if address is not None and address.container:
                return context.resolve_container(address.container) is not None
            return True  # bare local type: importable anywhere in-process
        if protocol == "sim":
            return (
                context.allow_remote
                and context.network is not None
                and bool(context.host)
            )
        return context.allow_remote

    # -- construction ---------------------------------------------------------------

    def _build(
        self,
        document: WsdlDocument,
        service: WsdlService,
        port: WsdlPort,
        soap_array_mode: str,
        timeout: float | None,
        credential: str | None = None,
        policy: InvocationPolicy | None = None,
    ) -> ServiceStub:
        binding = document.binding(port.binding)
        operations = document.port_type(binding.port_type).operation_names()
        target_ext = port.extension_of(ServiceTargetExt)
        target = target_ext.name if target_ext is not None else service.name
        protocol = binding.protocol

        def transport_stub(address_key: str, dispatch_target, codec, transport, tag):
            breaker = (
                self.breakers.get(address_key, policy) if policy is not None else None
            )
            return TransportStub(
                operations, dispatch_target, codec, transport, tag, timeout,
                policy=policy, events=self.events, breaker=breaker, clock=self.clock,
            )

        def credentialed(dispatch_target: str) -> str:
            # network paths carry the caller's credential in the target
            # (local paths never see the dispatcher, so none is needed)
            if credential is None:
                return dispatch_target
            from repro.container.security import with_credential

            return with_credential(credential, dispatch_target)

        if protocol == "soap":
            address = port.extension_of(SoapAddressExt)
            if address is None:
                raise BindingError(f"soap port {port.name!r} lacks a soap:address")
            codec = self._codecs.get(
                "text/xml" if soap_array_mode == "base64" else f"text/xml; arrays={soap_array_mode}"
            )
            transport = HttpTransport(address.location)
            return transport_stub(
                address.location, credentialed(target), codec, transport, "soap"
            )

        if protocol == "mime":
            address = port.extension_of(HttpAddressExt) or port.extension_of(SoapAddressExt)
            if address is None:
                raise BindingError(f"mime port {port.name!r} lacks an http address")
            codec = self._codecs.get("multipart/related")
            transport = HttpTransport(address.location)
            return transport_stub(
                address.location, credentialed(target), codec, transport, "mime"
            )

        if protocol == "sim":
            address = port.extension_of(SimAddressExt)
            if address is None:
                raise BindingError(f"sim port {port.name!r} lacks a harness:simAddress")
            if self.context.network is None or not self.context.host:
                raise BindingError("sim binding requires a fabric-attached context")
            from repro.transport.sim import SimTransport

            codec = self._codecs.get("application/x-xdr")
            sim_url = f"sim://{address.host}/{address.endpoint}"
            transport = SimTransport(self.context.network, self.context.host, sim_url)
            return transport_stub(
                sim_url, credentialed(address.target or target), codec, transport, "sim"
            )

        if protocol == "xdr":
            address = port.extension_of(XdrAddressExt)
            if address is None:
                raise BindingError(f"xdr port {port.name!r} lacks a harness:xdrAddress")
            codec = self._codecs.get("application/x-xdr")
            tcp_url = f"tcp://{address.host}:{address.port}"
            transport = TcpTransport(tcp_url, pool_size=self.tcp_pool_size)
            return transport_stub(
                tcp_url, credentialed(address.target or target), codec, transport, "xdr"
            )

        if protocol == "local-instance":
            ext = binding.extension_of(LocalInstanceBindingExt)
            address = port.extension_of(LocalAddressExt)
            if ext is None or address is None:
                raise BindingError(
                    f"local-instance port {port.name!r} needs binding ext + localAddress"
                )
            container = self.context.resolve_container(address.container)
            if container is None:
                raise BindingError(f"container {address.container!r} not in this process")
            instance = container.get_instance(ext.instance_id)  # type: ignore[attr-defined]
            return LocalStub(operations, ext.instance_id, instance, "local-instance")

        if protocol == "local":
            ext = binding.extension_of(LocalBindingExt)
            if ext is None:
                raise BindingError(f"local port {port.name!r} lacks harness:localBinding")
            address = port.extension_of(LocalAddressExt)
            if address is not None and address.container:
                container = self.context.resolve_container(address.container)
                if container is None:
                    raise BindingError(f"container {address.container!r} not in this process")
                instance = container.instantiate(ext.type_name)  # type: ignore[attr-defined]
            else:
                instance = load_type(ext.type_name)()
            return LocalStub(operations, target, instance, "local")

        raise BindingError(f"port {port.name!r} has unsupported protocol {protocol!r}")
