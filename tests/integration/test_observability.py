"""End-to-end observability: one trace id across every transport.

The tentpole acceptance test: with tracing enabled, a single logical
invocation keeps ONE trace id whether it travels as an XDR frame extension
over multiplexed TCP, an ``X-Repro-Trace`` header over HTTP, or a
``<harness:trace>`` SOAP header block — and the metrics registry counts
every call exactly, even under 16 threads hammering one multiplexed
transport.
"""

import threading
import time

import pytest

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import default_registry
from repro.obs import metrics, trace
from repro.transport.base import TransportMessage
from repro.transport.http import HttpTransport
from repro.transport.tcp import TcpTransport


class TraceEchoService:
    """Reports the trace context the *server* observes during dispatch."""

    def trace_id(self) -> str:
        ctx = trace.current()
        return ctx.trace_id if ctx is not None else ""

    def echo(self, tag: str) -> str:
        ctx = trace.current()
        return f"{tag}|{ctx.trace_id if ctx is not None else ''}"


@pytest.fixture
def endpoints():
    dispatcher = ObjectDispatcher()
    dispatcher.register("TraceEcho", TraceEchoService())
    server = BindingServer(dispatcher)
    http = server.expose_soap_http()
    tcp = server.expose_xdr_tcp()
    yield http, tcp
    server.close()


def _soap_stub(http):
    return TransportStub(
        ("trace_id", "echo"), "TraceEcho", default_registry.get("text/xml"),
        HttpTransport(http.url), "soap",
    )


def _xdr_stub(tcp):
    return TransportStub(
        ("trace_id", "echo"), "TraceEcho", default_registry.get("application/x-xdr"),
        TcpTransport(tcp.url), "xdr",
    )


class TestEndToEndTrace:
    def test_one_trace_id_across_http_tcp_and_soap(self, endpoints):
        http, tcp = endpoints
        trace.enable(True)
        root = trace.new_trace()
        token = trace.activate(root)
        try:
            with _soap_stub(http) as soap, _xdr_stub(tcp) as xdr:
                # SOAP over HTTP: header + envelope block carry the context
                assert soap.trace_id() == root.trace_id
                # XDR over multiplexed TCP: the frame's trace extension
                assert xdr.trace_id() == root.trace_id

            # SOAP *fallback*: no HTTP header, only the spliced envelope
            # block — the binding server recovers the context from the Body's
            # sibling Header.
            codec = default_registry.get("text/xml")
            payload = codec.encode_call("TraceEcho", "trace_id", ())
            assert trace.SOAP_MARKER in payload
            client = HttpTransport(http.url)
            try:
                with trace.use(None):  # suppress the header, keep the splice
                    response = client.request(TransportMessage("text/xml", payload))
            finally:
                client.close()
            assert codec.decode_reply(response.payload) == root.trace_id
        finally:
            trace.deactivate(token)

    def test_server_span_parents_to_client_span(self, endpoints):
        _, tcp = endpoints
        trace.enable(True)
        trace.recorder.clear()
        with trace.use(trace.new_trace()) as root:
            with _xdr_stub(tcp) as xdr:
                assert xdr.trace_id() == root.trace_id
        # the server records its span just *after* the reply frame is
        # written (bookkeeping is off the caller's critical path), so give
        # the server thread a beat to finish
        deadline = time.monotonic() + 2.0
        while len(trace.recorder) < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        spans = {s.name: s for s in trace.recorder.last(10)}
        client = spans["client:xdr:trace_id"]
        server = spans["server:trace_id"]
        assert client.trace_id == server.trace_id == root.trace_id
        assert client.parent_id == root.span_id
        assert server.parent_id == client.span_id
        assert server.status == "ok" and client.status == "ok"
        assert set(client.timings_us) == {"encode", "transit", "decode"}

    def test_disabled_tracing_means_no_spans_and_no_trace_on_server(self, endpoints):
        _, tcp = endpoints
        trace.recorder.clear()
        with _xdr_stub(tcp) as xdr:
            assert xdr.trace_id() == ""
        assert len(trace.recorder) == 0


THREADS = 16
CALLS_PER_THREAD = 20


class TestTracedConcurrencyStress:
    def test_no_span_crosstalk_and_exact_histogram_counts(self, endpoints):
        """16 threads through one multiplexed TcpTransport with tracing on:
        every reply carries the *caller's* trace id, and the per-call
        histograms count exactly THREADS × CALLS_PER_THREAD observations."""
        _, tcp = endpoints
        metrics.registry.reset()
        trace.enable(True)
        stub = _xdr_stub(tcp)
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(CALLS_PER_THREAD):
                    with trace.use(trace.new_trace()) as root:
                        tag, got = stub.echo(f"{worker_id}/{i}").split("|")
                        assert tag == f"{worker_id}/{i}"
                        assert got == root.trace_id, "span crossed threads"
            except BaseException as exc:  # noqa: BLE001 — surfaced on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stub.close()
        assert not errors, errors

        # bookkeeping is asynchronous (finisher thread): land it all first
        assert trace.flush(timeout=10.0)

        total = THREADS * CALLS_PER_THREAD
        snap = metrics.registry.snapshot("stub.xdr.")
        assert snap["stub.xdr.calls"]["value"] == total
        assert snap["stub.xdr.faults"]["value"] == 0
        # every call observes every phase histogram exactly once
        for phase in ("encode_us", "transit_us", "decode_us", "total_us"):
            assert snap[f"stub.xdr.{phase}"]["count"] == total, phase
        assert metrics.registry.snapshot("server.")["server.requests"]["value"] == total


class TestMetricsOverRpc:
    def test_metrics_snapshot_travels_over_xdr(self, endpoints):
        """The snapshot is plain nested dicts, which the XDR codec carries
        natively — observability is itself just another service."""
        from repro.plugins.services import MetricsService

        _, tcp = endpoints
        dispatcher = ObjectDispatcher()
        dispatcher.register("Metrics", MetricsService())
        server = BindingServer(dispatcher)
        listener = server.expose_xdr_tcp()
        try:
            metrics.registry.counter("demo.widget").inc(3)
            stub = TransportStub(
                ("snapshot", "names"), "Metrics",
                default_registry.get("application/x-xdr"),
                TcpTransport(listener.url), "xdr",
            )
            with stub:
                remote = stub.snapshot("demo.")
                assert remote["metrics"]["demo.widget"] == {
                    "type": "counter", "value": 3,
                }
                assert stub.names("demo.") == ["demo.widget"]
        finally:
            server.close()
