"""C4 — DVM state coherency tradeoffs (Section 6).

Claims: full synchrony "may be appropriate for relatively small DVMs
running applications with many critical components"; complete
decentralization "minimizes network traffic during state changes but
introduces overheads for state inquiry … appropriate for loosely coupled,
massively distributed applications"; mesh applications "may benefit from a
scheme that provides full synchrony across small neighborhoods but
facilitates distributed queries for farther hosts."

Reproduced series: simulated communication cost (messages and simulated
seconds on the fabric's link model) for update/query mixes × DVM sizes ×
the three protocols.  Expected shape: a crossover — full synchrony wins
query-heavy mixes, decentralization wins update-heavy mixes at scale, the
neighborhood scheme sits between and wins neighbourhood-local queries.
"""

import pytest

from benchmarks.conftest import print_table
from repro.dvm.state import DecentralizedState, FullSynchronyState, NeighborhoodState
from repro.netsim import lan, mesh_neighborhoods

SCHEMES = {
    "full-synchrony": lambda net, members: FullSynchronyState(net, members),
    "decentralized": lambda net, members: DecentralizedState(net, members),
    "neighborhood": lambda net, members: NeighborhoodState(net, members, radius=2),
}


def run_mix(scheme: str, n_nodes: int, updates: int, queries: int):
    """Simulated cost of a workload; queries read keys round-robin."""
    net = lan(n_nodes)
    members = [f"node{i}" for i in range(n_nodes)]
    protocol = SCHEMES[scheme](net, members)
    for i in range(updates):
        protocol.update(members[i % n_nodes], f"key{i}", {"value": i, "blob": "x" * 64})
    net.reset_stats()
    for i in range(updates):
        protocol.update(members[i % n_nodes], f"key{i}", {"value": i + 1, "blob": "y" * 64})
    for i in range(queries):
        protocol.get(members[(3 * i) % n_nodes], f"key{i % max(updates, 1)}")
    return net


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_mixed_workload_benchmark(benchmark, scheme):
    benchmark.pedantic(run_mix, args=(scheme, 8, 16, 16), rounds=5, iterations=1)


def test_report_c4_crossover():
    n_nodes = 12
    mixes = [(2, 96, "query-heavy"), (24, 24, "balanced"), (96, 2, "update-heavy")]
    rows = []
    sim_cost: dict[tuple[str, str], float] = {}
    for updates, queries, label in mixes:
        for scheme in sorted(SCHEMES):
            net = run_mix(scheme, n_nodes, updates, queries)
            sim_cost[(scheme, label)] = net.simulated_time
            rows.append([
                label, scheme, net.total_messages, net.total_bytes,
                f"{net.simulated_time * 1e3:.2f}ms",
            ])
    print_table(
        f"C4: coherency protocol cost on a {n_nodes}-node LAN DVM",
        ["mix", "scheme", "messages", "bytes", "sim time"],
        rows,
    )
    # the crossover the paper predicts:
    assert sim_cost[("full-synchrony", "query-heavy")] < sim_cost[("decentralized", "query-heavy")]
    assert sim_cost[("decentralized", "update-heavy")] < sim_cost[("full-synchrony", "update-heavy")]
    # the intermediate scheme lands between the extremes on the balanced mix
    balanced = {s: sim_cost[(s, "balanced")] for s in SCHEMES}
    assert (
        min(balanced["full-synchrony"], balanced["decentralized"])
        <= balanced["neighborhood"]
        <= max(balanced["full-synchrony"], balanced["decentralized"])
    ) or balanced["neighborhood"] <= min(balanced.values()) * 1.5


def test_report_c4_dvm_size_scaling():
    """Full-synchrony update cost grows linearly with DVM size; the
    neighborhood scheme's stays flat — 'relatively small DVMs' quantified."""
    rows = []
    full_costs, neigh_costs = [], []
    for n_nodes in (4, 8, 16, 32):
        for scheme, bucket in (("full-synchrony", full_costs), ("neighborhood", neigh_costs)):
            net = lan(n_nodes)
            members = [f"node{i}" for i in range(n_nodes)]
            protocol = SCHEMES[scheme](net, members)
            net.reset_stats()
            for i in range(16):
                protocol.update(members[i % n_nodes], f"k{i}", i)
            bucket.append(net.total_messages)
            rows.append([n_nodes, scheme, net.total_messages])
    print_table("C4b: messages for 16 updates vs DVM size",
                ["nodes", "scheme", "messages"], rows)
    # full synchrony scales ~linearly with node count; the neighborhood
    # scheme plateaus once the ring exceeds its radius
    assert full_costs[-1] > 6 * full_costs[0]
    assert neigh_costs[-1] == neigh_costs[1]


def test_report_c4_mesh_neighborhood_advantage():
    """On a mesh where queries are neighbourhood-local, the mixed scheme
    beats both extremes in *simulated time* (LAN neighbours, WAN strangers)."""
    n_nodes = 16
    results = {}
    for scheme in sorted(SCHEMES):
        net = mesh_neighborhoods(n_nodes, neighborhood=2)
        members = [f"node{i}" for i in range(n_nodes)]
        protocol = SCHEMES[scheme](net, members)
        # every node publishes once, then queries its ring neighbours' keys;
        # both phases count (mesh links: LAN to neighbours, WAN to strangers)
        net.reset_stats()
        for i, member in enumerate(members):
            protocol.update(member, f"key{i}", {"owner": member})
        for i, member in enumerate(members):
            for step in (1, 2):
                protocol.get(member, f"key{(i + step) % n_nodes}")
        results[scheme] = net.simulated_time
    rows = [[s, f"{t * 1e3:.2f}ms"] for s, t in sorted(results.items())]
    print_table("C4c: neighbourhood-local workload on a 16-node mesh",
                ["scheme", "sim time"], rows)
    # the mixed scheme beats both extremes when locality matches the mesh
    assert results["neighborhood"] < results["decentralized"]
    assert results["neighborhood"] < results["full-synchrony"]
