#!/usr/bin/env python
"""Offline-friendly editable install.

``pip install -e .`` needs the ``wheel`` package (PEP 660 editable wheels
on setuptools < 70); on air-gapped machines without it, this script gives
the same effect by dropping a ``.pth`` file pointing at ``src/`` into the
active interpreter's site-packages.

Usage::

    python scripts/dev_install.py          # install
    python scripts/dev_install.py --remove # uninstall
"""

from __future__ import annotations

import site
import sys
from pathlib import Path

PTH_NAME = "repro-dev.pth"


def main() -> int:
    src = Path(__file__).resolve().parents[1] / "src"
    if not (src / "repro" / "__init__.py").is_file():
        print(f"error: {src} does not contain the repro package", file=sys.stderr)
        return 1
    site_dir = Path(site.getsitepackages()[0])
    pth = site_dir / PTH_NAME
    if "--remove" in sys.argv:
        if pth.exists():
            pth.unlink()
            print(f"removed {pth}")
        else:
            print("nothing to remove")
        return 0
    pth.write_text(str(src) + "\n")
    print(f"installed: {pth} -> {src}")
    print("verify with: python -c 'import repro; print(repro.__version__)'")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
