"""``hspaces`` — the JavaSpaces emulation plugin.

The third legacy environment Section 3 names ("currently PVM, MPI, and
JavaSpaces plugins are available").  Provides a tuple space with the
JavaSpaces operations:

* ``write(entry, lease_s)`` — deposit an entry, optionally expiring
* ``read(template)`` / ``take(template)`` — non-destructive / destructive
  matching, blocking with timeout (``read_if_exists`` / ``take_if_exists``
  for the non-blocking variants)
* ``notify(template, handler)`` — event registration through ``hevent``

Entries are dicts; a *template* is a dict whose present keys must match
exactly and whose ``None`` values act as wildcards, which is how
JavaSpaces' null-field template matching worked.  The space lives on one
kernel (its *space server*); other kernels operate on it through the
kernel channel, mirroring an Outrigger-style remote space.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.core.plugin import Plugin
from repro.util.errors import HarnessTimeoutError, PluginError
from repro.util.ids import new_id

__all__ = ["TupleSpacePlugin", "matches_template"]


def matches_template(template: dict, entry: dict) -> bool:
    """JavaSpaces-style matching: keys present in the template must exist
    in the entry and be equal, except ``None`` which matches anything."""
    for key, want in template.items():
        if key not in entry:
            return False
        if want is None:
            continue
        if entry[key] != want:
            return False
    return True


class _StoredEntry:
    __slots__ = ("entry_id", "entry", "expires")

    def __init__(self, entry: dict, lease_s: float | None):
        self.entry_id = new_id("entry")
        self.entry = entry
        self.expires = None if lease_s is None else time.monotonic() + lease_s

    @property
    def live(self) -> bool:
        return self.expires is None or time.monotonic() < self.expires


class TupleSpacePlugin(Plugin):
    """A tuple space hosted on one kernel, reachable from every kernel."""

    plugin_name = "hspaces"
    requires = ("event-management",)
    provides = ("tuple-space",)

    def __init__(self, space_host: str | None = None):
        super().__init__()
        #: kernel hosting the authoritative space (None = this kernel)
        self.space_host = space_host
        self._cond = threading.Condition()
        self._entries: list[_StoredEntry] = []

    # -- local (authoritative) operations -----------------------------------------

    def _is_server(self) -> bool:
        if self.kernel is None:
            raise PluginError("hspaces is not attached")
        return self.space_host is None or self.space_host == self.kernel.host_name

    def _reap(self) -> None:
        self._entries = [e for e in self._entries if e.live]

    def write(self, entry: dict, lease_s: float | None = None) -> str:
        """Deposit *entry*; returns its id.  ``lease_s`` bounds its life."""
        if not isinstance(entry, dict):
            raise PluginError("space entries must be dicts")
        if not self._is_server():
            return self._remote({"op": "write", "entry": entry, "lease": lease_s})
        with self._cond:
            stored = _StoredEntry(dict(entry), lease_s)
            self._entries.append(stored)
            self._cond.notify_all()
        self.use("event-management").bus.publish(  # type: ignore[attr-defined]
            "space.written", dict(entry), source=self.kernel.host_name if self.kernel else ""
        )
        return stored.entry_id

    def _find(self, template: dict, remove: bool) -> dict | None:
        self._reap()
        for i, stored in enumerate(self._entries):
            if matches_template(template, stored.entry):
                if remove:
                    del self._entries[i]
                return dict(stored.entry)
        return None

    def read_if_exists(self, template: dict) -> dict | None:
        """Non-blocking non-destructive match."""
        if not self._is_server():
            return self._remote({"op": "read", "template": template})
        with self._cond:
            return self._find(template, remove=False)

    def take_if_exists(self, template: dict) -> dict | None:
        """Non-blocking destructive match."""
        if not self._is_server():
            return self._remote({"op": "take", "template": template})
        with self._cond:
            return self._find(template, remove=True)

    def read(self, template: dict, timeout: float = 10.0) -> dict:
        """Blocking non-destructive match."""
        return self._blocking(template, remove=False, timeout=timeout)

    def take(self, template: dict, timeout: float = 10.0) -> dict:
        """Blocking destructive match."""
        return self._blocking(template, remove=True, timeout=timeout)

    def _blocking(self, template: dict, remove: bool, timeout: float) -> dict:
        if self._is_server():
            end = time.monotonic() + timeout
            with self._cond:
                while True:
                    found = self._find(template, remove)
                    if found is not None:
                        return found
                    remaining = end - time.monotonic()
                    if remaining <= 0:
                        raise HarnessTimeoutError(
                            f"no entry matching {template!r} within {timeout}s"
                        )
                    self._cond.wait(min(remaining, 0.05))
        # remote space: poll the server (JavaSpaces clients did the same
        # under the covers for bounded-lease blocking calls)
        end = time.monotonic() + timeout
        op = "take" if remove else "read"
        while True:
            found = self._remote({"op": op, "template": template})
            if found is not None:
                return found
            if time.monotonic() >= end:
                raise HarnessTimeoutError(
                    f"no entry matching {template!r} within {timeout}s"
                )
            time.sleep(0.005)

    def count(self, template: dict | None = None) -> int:
        """Number of live entries (matching *template* if given)."""
        if not self._is_server():
            return self._remote({"op": "count", "template": template})
        with self._cond:
            self._reap()
            if template is None:
                return len(self._entries)
            return sum(1 for e in self._entries if matches_template(template, e.entry))

    def notify(self, template: dict, handler: Callable[[dict], None]):
        """Local notification when a matching entry is written (server side)."""
        bus = self.use("event-management").bus  # type: ignore[attr-defined]

        def on_event(event) -> None:
            if isinstance(event.payload, dict) and matches_template(template, event.payload):
                handler(event.payload)

        return bus.subscribe("space.written", on_event)

    # -- remote plumbing ------------------------------------------------------------

    def _remote(self, request: dict) -> Any:
        assert self.kernel is not None and self.space_host is not None
        return self.kernel.send(self.space_host, "tuple-space", request)

    def handle_message(self, src_host: str, payload: dict) -> Any:
        op = payload.get("op")
        if not self._is_server():
            raise PluginError("tuple-space request routed to a non-server kernel")
        if op == "write":
            return self.write(payload["entry"], payload.get("lease"))
        if op == "read":
            return self.read_if_exists(payload["template"])
        if op == "take":
            return self.take_if_exists(payload["template"])
        if op == "count":
            return self.count(payload.get("template"))
        raise PluginError(f"hspaces: unknown operation {op!r}")
