"""Framed TCP transport — the XDR binding's "direct socket level connections".

Wire format per message (both directions)::

    uint32 BE  total frame length (excluding these 4 bytes)
    uint16 BE  content-type length |ct|
    |ct| bytes content type (ASCII)
    uint8      status (requests: 0; responses: 0 = ok, 1 = fault)
    payload    remaining bytes

Connections are persistent: a client keeps one socket per server and
serializes requests over it (Harness components are expected to open one
channel per peer, matching the paper's point about minimizing "the number
of entities that need to be traversed").
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading

from repro.transport.base import RequestHandler, TransportMessage, parse_url
from repro.util.errors import HarnessTimeoutError, TransportClosedError, TransportError

__all__ = ["TcpListener", "TcpTransport"]

_HEADER = struct.Struct(">I")
_CT_LEN = struct.Struct(">H")

STATUS_OK = 0
STATUS_FAULT = 1


def _write_frame(sock: socket.socket, message: TransportMessage, status: int = STATUS_OK) -> None:
    ct = message.content_type.encode("ascii")
    body = _CT_LEN.pack(len(ct)) + ct + bytes([status]) + message.payload
    sock.sendall(_HEADER.pack(len(body)) + body)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportClosedError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock: socket.socket) -> tuple[TransportMessage, int]:
    header = _read_exact(sock, 4)
    (length,) = _HEADER.unpack(header)
    if length < 3:
        raise TransportError(f"short frame: {length} bytes")
    body = _read_exact(sock, length)
    (ct_len,) = _CT_LEN.unpack(body[:2])
    content_type = body[2 : 2 + ct_len].decode("ascii")
    status = body[2 + ct_len]
    payload = body[3 + ct_len :]
    return TransportMessage(content_type, payload), status


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection, many frames
        server: "_Server" = self.server  # type: ignore[assignment]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                message, _status = _read_frame(sock)
            except (TransportClosedError, ConnectionError, OSError):
                return
            try:
                response = server.app_handler(message)
                status = STATUS_OK
            except Exception as exc:  # deliver faults instead of dropping the socket
                response = TransportMessage("text/plain", str(exc).encode("utf-8"))
                status = STATUS_FAULT
            try:
                _write_frame(sock, response, status)
            except (ConnectionError, OSError):
                return


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app_handler: RequestHandler):
        super().__init__(address, _Handler)
        self.app_handler = app_handler


class TcpListener:
    """A framed-TCP server endpoint; URL scheme ``tcp://host:port``."""

    def __init__(self, handler: RequestHandler, host: str = "127.0.0.1", port: int = 0):
        self._server = _Server((host, port), handler)
        self._host, self._port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"tcp-listener-{self._port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()


class TcpTransport:
    """Client side of the framed-TCP transport (persistent connection)."""

    def __init__(self, url: str, connect_timeout: float = 5.0):
        scheme, rest = parse_url(url)
        if scheme != "tcp":
            raise TransportError(f"not a tcp url: {url!r}")
        host, _, port_text = rest.rpartition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise TransportError(f"bad tcp url (no port): {url!r}") from exc
        self._url = url
        self._lock = threading.Lock()
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise TransportError(f"cannot connect to {url}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        with self._lock:
            if self._closed:
                raise TransportClosedError("transport closed")
            self._sock.settimeout(timeout)
            try:
                _write_frame(self._sock, message)
                response, status = _read_frame(self._sock)
            except socket.timeout as exc:
                # The socket is mid-frame: a later reply (or the unread tail
                # of this one) would desynchronize the framing.  Poison the
                # connection so reuse fails fast with TransportClosedError.
                self._closed = True
                try:
                    self._sock.close()
                except OSError:
                    pass
                raise HarnessTimeoutError(f"request to {self._url} timed out") from exc
            except (ConnectionError, OSError) as exc:
                self._closed = True
                raise TransportClosedError(f"connection to {self._url} lost: {exc}") from exc
        if status == STATUS_FAULT:
            raise TransportError(
                f"remote fault from {self._url}: {response.payload.decode('utf-8', 'replace')}"
            )
        return response

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                try:
                    self._sock.close()
                except OSError:
                    pass
