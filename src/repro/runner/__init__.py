"""Resource Abstraction Layer: runner boxes and task specs (Figure 6)."""

from repro.runner.box import (
    RunnerBox,
    SimHostRunnerBox,
    SubprocessRunnerBox,
    ThreadRunnerBox,
)
from repro.runner.resources import (
    NoMatchError,
    Requirement,
    ResourceCatalog,
    ResourceDescriptor,
    parse_requirement,
)
from repro.runner.tasks import TaskKind, TaskSpec, TaskState, TaskStatus

__all__ = [
    "RunnerBox",
    "SimHostRunnerBox",
    "SubprocessRunnerBox",
    "ThreadRunnerBox",
    "TaskKind",
    "TaskSpec",
    "TaskState",
    "TaskStatus",
    "NoMatchError",
    "Requirement",
    "ResourceCatalog",
    "ResourceDescriptor",
    "parse_requirement",
]
