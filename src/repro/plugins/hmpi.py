"""``hmpi`` — the MPI emulation plugin.

Section 3: "users may first load plugins that emulate distributed computing
environments (currently PVM, MPI, and JavaSpaces plugins are available),
thereby creating a framework within which their legacy codes may run."
``hpvmd`` covers PVM; this module is the MPI sibling, built the same way —
entirely from the backplane services of Figure 2 (message transport,
process management, table lookup, event management).

The emulated API is the MPI-1 core a 2002 legacy code needs:

* ``init(world_size)`` → per-rank :class:`MpiContext` with ``rank``/``size``
* point-to-point: ``send`` / ``recv`` / ``sendrecv`` with tags
* collectives: ``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``reduce``, ``allreduce``, ``alltoall``
* communicator ``split`` (color/key), mirroring ``MPI_Comm_split``

Collectives are implemented with the classic linear algorithms over the
root (adequate for DVM-scale worlds and faithful to early MPICH's defaults
on ethernet clusters).  numpy arrays ride the XDR fast path of the
underlying transport, following the mpi4py convention that buffer-like
payloads are the fast ones.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.core.plugin import Plugin
from repro.plugins.hmsg import MessageTransportPlugin
from repro.plugins.hproc import ProcessManagementPlugin
from repro.plugins.htable import TableLookupPlugin
from repro.util.concurrent import CountDownLatch
from repro.util.errors import PluginError

__all__ = ["MpiPlugin", "MpiContext", "MpiRequest", "SUM", "MAX", "MIN", "PROD"]

_RANK_TABLE = "mpi-ranks"

# Reduction operators (names on the wire; callables locally).
SUM = "sum"
MAX = "max"
MIN = "min"
PROD = "prod"

_OPERATORS: dict[str, Callable[[Any, Any], Any]] = {
    SUM: lambda a, b: a + b,
    MAX: lambda a, b: a if _greater(a, b) else b,
    MIN: lambda a, b: b if _greater(a, b) else a,
    PROD: lambda a, b: a * b,
}


def _greater(a, b) -> bool:
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        raise PluginError("MAX/MIN reductions need scalars; use elementwise numpy ops")
    return a > b


def _apply(op: str, a, b):
    import numpy as np

    if op == SUM:
        return a + b
    if op == PROD:
        return a * b
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b) if op == MAX else np.minimum(a, b)
    fn = _OPERATORS.get(op)
    if fn is None:
        raise PluginError(f"unknown reduction operator {op!r}")
    return fn(a, b)


class MpiContext:
    """One rank's view of a communicator.

    ``comm`` is the communicator name; the world communicator of a job is
    ``"<job>/world"``.  Rank → (host, mailbox) placement lives in htable on
    the job's root host, so ranks on any kernel can address each other.
    """

    #: tag offset reserving a band for collective internals
    _COLLECTIVE_BASE = -1000

    def __init__(self, plugin: "MpiPlugin", job: str, comm: str, rank: int, size: int):
        self._plugin = plugin
        self.job = job
        self.comm = comm
        self.rank = rank
        self.size = size
        # Collective-call sequence number.  MPI requires every rank of a
        # communicator to invoke collectives in the same order; folding the
        # sequence into the internal tags keeps phase N's messages from
        # satisfying a slower rank's phase N-1 (classic tag-collision bug).
        self._coll_seq = 0

    def _coll_tags(self, count: int = 1) -> tuple[int, ...]:
        seq = self._coll_seq
        self._coll_seq += 1
        return tuple(self._COLLECTIVE_BASE - (seq * 8 + k) for k in range(count))

    # -- addressing -----------------------------------------------------------

    def _mailbox(self, rank: int) -> tuple[str, str]:
        """(host, mailbox) of *rank* in this communicator."""
        return self._plugin._locate(self.job, self.comm, rank)

    # -- point to point ----------------------------------------------------------

    def send(self, dest: int, data: Any, tag: int = 0) -> None:
        """Blocking-standard send (delivery into the remote mailbox)."""
        if not 0 <= dest < self.size:
            raise PluginError(f"rank {dest} out of range for {self.comm} (size {self.size})")
        host, mailbox = self._mailbox(dest)
        self._plugin.hmsg.send(host, mailbox, {"src": self.rank, "data": data}, tag)

    def recv(self, source: int | None = None, tag: int | None = None, timeout: float = 30.0) -> Any:
        """Blocking receive; ``source=None`` is ``MPI_ANY_SOURCE``."""
        _, mailbox = self._mailbox(self.rank)
        while True:
            envelope = self._plugin.hmsg.recv(mailbox, tag, timeout)
            payload = envelope.data
            if source is None or payload["src"] == source:
                return payload["data"]
            # wrong source: requeue at the back (rare; simple and correct)
            self._plugin.hmsg.send(
                self._mailbox(self.rank)[0], mailbox, payload, envelope.tag
            )

    def isend(self, dest: int, data: Any, tag: int = 0) -> "MpiRequest":
        """Nonblocking send.  Mailbox delivery is buffered, so the send
        completes immediately; the request exists for API symmetry with
        legacy codes (``req = comm.isend(...); req.wait()``)."""
        self.send(dest, data, tag)
        return MpiRequest(ready=True)

    def irecv(self, source: int | None = None, tag: int | None = None) -> "MpiRequest":
        """Nonblocking receive; complete it with ``test()`` or ``wait()``."""
        return MpiRequest(context=self, source=source, tag=tag)

    def sendrecv(self, dest: int, data: Any, source: int | None = None,
                 sendtag: int = 0, recvtag: int | None = None, timeout: float = 30.0) -> Any:
        """Combined send+receive (safe against exchange deadlock here
        because sends are buffered by the mailbox layer)."""
        self.send(dest, data, sendtag)
        return self.recv(source, recvtag if recvtag is not None else sendtag, timeout)

    # -- collectives ----------------------------------------------------------------

    def barrier(self, timeout: float = 30.0) -> None:
        """Linear barrier through rank 0."""
        arrive, release = self._coll_tags(2)
        if self.rank == 0:
            for _ in range(self.size - 1):
                self.recv(tag=arrive, timeout=timeout)
            for rank in range(1, self.size):
                self.send(rank, None, tag=release)
        else:
            self.send(0, None, tag=arrive)
            self.recv(source=0, tag=release, timeout=timeout)

    def bcast(self, data: Any = None, root: int = 0, timeout: float = 30.0) -> Any:
        """Broadcast from *root*; every rank returns the value."""
        (tag,) = self._coll_tags()
        if self.rank == root:
            for rank in range(self.size):
                if rank != root:
                    self.send(rank, data, tag=tag)
            return data
        return self.recv(source=root, tag=tag, timeout=timeout)

    def scatter(self, chunks: list | None = None, root: int = 0, timeout: float = 30.0) -> Any:
        """Rank *root* distributes ``chunks[i]`` to rank *i*."""
        (tag,) = self._coll_tags()
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise PluginError(f"scatter needs exactly {self.size} chunks at the root")
            for rank, chunk in enumerate(chunks):
                if rank != root:
                    self.send(rank, chunk, tag=tag)
            return chunks[root]
        return self.recv(source=root, tag=tag, timeout=timeout)

    def gather(self, data: Any, root: int = 0, timeout: float = 30.0) -> list | None:
        """Root returns ``[rank0, rank1, …]``; other ranks return None."""
        (tag,) = self._coll_tags()
        if self.rank == root:
            out: list = [None] * self.size
            out[root] = data
            for _ in range(self.size - 1):
                _, mailbox = self._mailbox(self.rank)
                envelope = self._plugin.hmsg.recv(mailbox, tag, timeout)
                out[envelope.data["src"]] = envelope.data["data"]
            return out
        self.send(root, data, tag=tag)
        return None

    def allgather(self, data: Any, timeout: float = 30.0) -> list:
        """gather to 0, then broadcast the list."""
        gathered = self.gather(data, root=0, timeout=timeout)
        return self.bcast(gathered, root=0, timeout=timeout)

    def reduce(self, data: Any, op: str = SUM, root: int = 0, timeout: float = 30.0) -> Any:
        """Root returns the reduction of every rank's contribution."""
        contributions = self.gather(data, root=root, timeout=timeout)
        if self.rank != root:
            return None
        assert contributions is not None
        result = contributions[0]
        for item in contributions[1:]:
            result = _apply(op, result, item)
        return result

    def allreduce(self, data: Any, op: str = SUM, timeout: float = 30.0) -> Any:
        """reduce at 0 then broadcast the result."""
        reduced = self.reduce(data, op=op, root=0, timeout=timeout)
        return self.bcast(reduced, root=0, timeout=timeout)

    def alltoall(self, chunks: list, timeout: float = 30.0) -> list:
        """Each rank sends ``chunks[i]`` to rank *i*; returns its column."""
        if len(chunks) != self.size:
            raise PluginError(f"alltoall needs exactly {self.size} chunks")
        (tag,) = self._coll_tags()
        for rank, chunk in enumerate(chunks):
            if rank != self.rank:
                self.send(rank, chunk, tag=tag)
        out: list = [None] * self.size
        out[self.rank] = chunks[self.rank]
        _, mailbox = self._mailbox(self.rank)
        for _ in range(self.size - 1):
            envelope = self._plugin.hmsg.recv(mailbox, tag, timeout)
            out[envelope.data["src"]] = envelope.data["data"]
        return out

    # -- communicator management --------------------------------------------------------

    def split(self, color: int, key: int | None = None, timeout: float = 30.0) -> "MpiContext | None":
        """``MPI_Comm_split``: ranks sharing *color* form a sub-communicator,
        ordered by *key* (default: world rank).  ``color < 0`` opts out."""
        key = self.rank if key is None else key
        table = self.allgather((color, key, self.rank), timeout=timeout)
        new_rank = None
        members: list = []
        if color >= 0:
            members = sorted(
                (entry for entry in table if entry[0] == color),
                key=lambda e: (e[1], e[2]),
            )
            new_rank = next(i for i, e in enumerate(members) if e[2] == self.rank)
            comm = f"{self.comm}/split-{color}"
            self._plugin._register_rank(
                self.job, comm, new_rank, self._mailbox(self.rank)
            )
        # every parent rank synchronises — including opted-out ones — so no
        # member communicates before all registrations landed
        self.barrier(timeout=timeout)
        if new_rank is None:
            return None
        return MpiContext(self._plugin, self.job, comm, new_rank, len(members))


class MpiRequest:
    """Handle for a nonblocking operation (the mpi4py ``Request`` shape).

    ``test()`` polls without blocking; ``wait()`` blocks until completion
    and returns the received value (``None`` for sends).
    """

    def __init__(self, ready: bool = False, context: "MpiContext | None" = None,
                 source: int | None = None, tag: int | None = None):
        self._done = ready
        self._value: Any = None
        self._context = context
        self._source = source
        self._tag = tag

    @property
    def completed(self) -> bool:
        return self._done

    def test(self) -> tuple[bool, Any]:
        """(done, value) without blocking."""
        if self._done:
            return True, self._value
        assert self._context is not None
        _, mailbox = self._context._mailbox(self._context.rank)
        envelope = self._context._plugin.hmsg.try_recv(mailbox, self._tag)
        if envelope is None:
            return False, None
        payload = envelope.data
        if self._source is not None and payload["src"] != self._source:
            # not ours: put it back for a matching receive
            host, _ = self._context._mailbox(self._context.rank)
            self._context._plugin.hmsg.send(host, mailbox, payload, envelope.tag)
            return False, None
        self._done = True
        self._value = payload["data"]
        return True, self._value

    def wait(self, timeout: float = 30.0) -> Any:
        """Block until the operation completes; returns the received value."""
        if self._done:
            return self._value
        assert self._context is not None
        self._value = self._context.recv(self._source, self._tag, timeout)
        self._done = True
        return self._value


class MpiPlugin(Plugin):
    """The per-host MPI daemon (`hmpid`), composed from backplane services."""

    plugin_name = "hmpi"
    requires = ("message-transport", "process-management", "table-lookup")
    provides = ("mpi",)

    def __init__(self, root_host: str | None = None):
        super().__init__()
        #: host holding the rank table; defaults to the launching kernel
        self.root_host = root_host
        self._job_counter = 0
        self._lock = threading.Lock()

    # -- service accessors ---------------------------------------------------------

    @property
    def hmsg(self) -> MessageTransportPlugin:
        return self.use("message-transport")  # type: ignore[return-value]

    @property
    def hproc(self) -> ProcessManagementPlugin:
        return self.use("process-management")  # type: ignore[return-value]

    @property
    def htable(self) -> TableLookupPlugin:
        return self.use("table-lookup")  # type: ignore[return-value]

    # -- rank table -------------------------------------------------------------------

    def _table_host(self) -> str:
        if self.kernel is None:
            raise PluginError("hmpi is not attached")
        return self.root_host or self.kernel.host_name

    def _register_rank(self, job: str, comm: str, rank: int, place: tuple[str, str]) -> None:
        key = f"{job}/{comm}/{rank}"
        host = self._table_host()
        if self.kernel is not None and host == self.kernel.host_name:
            self.htable.put(_RANK_TABLE, key, list(place))
        else:
            self.htable.put_remote(host, _RANK_TABLE, key, list(place))

    def _locate(self, job: str, comm: str, rank: int) -> tuple[str, str]:
        key = f"{job}/{comm}/{rank}"
        host = self._table_host()
        if self.kernel is not None and host == self.kernel.host_name:
            place = self.htable.get(_RANK_TABLE, key)
        else:
            place = self.htable.get_remote(host, _RANK_TABLE, key)
        if place is None:
            raise PluginError(f"no rank {rank} registered in {job}/{comm}")
        return place[0], place[1]

    # -- job launch -----------------------------------------------------------------------

    def run(
        self,
        fn: Callable | str,
        world_size: int,
        args: tuple = (),
        placement: list[str] | None = None,
        timeout: float = 60.0,
    ) -> list[Any]:
        """``mpiexec``: run ``fn(ctx, *args)`` as *world_size* ranks.

        ``placement[i]`` names the host for rank *i* (default: this kernel).
        Remote placement requires *fn* as an import path.  Blocks until
        every rank returns; returns their results ordered by rank.
        """
        if self.kernel is None:
            raise PluginError("hmpi is not attached")
        my_host = self.kernel.host_name
        placement = placement or [my_host] * world_size
        if len(placement) != world_size:
            raise PluginError("placement list must have world_size entries")
        with self._lock:
            self._job_counter += 1
            job = f"mpijob-{my_host}-{self._job_counter}"
        comm = "world"

        # register every rank's mailbox before any rank starts
        for rank, host in enumerate(placement):
            mailbox = f"mpi:{job}:{rank}"
            self._register_rank(job, comm, rank, (host, mailbox))

        results: list[Any] = [None] * world_size
        errors: list[str] = []
        latch = CountDownLatch(world_size)
        # register the job before any rank can possibly report completion
        self._pending_jobs = getattr(self, "_pending_jobs", {})
        self._pending_jobs[job] = (results, errors, latch)

        for rank, host in enumerate(placement):
            if host == my_host:
                self._start_local_rank(fn, job, rank, world_size, args, results, errors, latch)
            else:
                if not isinstance(fn, str):
                    raise PluginError("remote ranks require an import path")
                self.kernel.send(host, "mpi", {
                    "op": "start-rank", "path": fn, "job": job,
                    "rank": rank, "size": world_size, "args": list(args),
                    "reply_to": my_host,
                })
        # remote ranks report completion via kernel messages handled below;
        # local ranks count the latch down directly
        latch.wait(timeout=timeout)
        del self._pending_jobs[job]
        if errors:
            raise PluginError(f"MPI job {job} failed: {errors[0]}")
        return results

    def _start_local_rank(self, fn, job, rank, size, args, results, errors, latch) -> None:
        callee = fn
        if isinstance(callee, str):
            from repro.runner.box import _resolve_import_path

            callee = _resolve_import_path(callee)
        host, mailbox = self._locate(job, "world", rank)
        self.hmsg.open_mailbox(mailbox)
        context = MpiContext(self, job, "world", rank, size)

        def body() -> None:
            try:
                results[rank] = callee(context, *args)
            except Exception as exc:
                errors.append(f"rank {rank}: {type(exc).__name__}: {exc}")
            finally:
                latch.count_down()

        self.hproc.spawn(body, name=f"mpi-{job}-r{rank}")

    # -- inter-kernel -------------------------------------------------------------------------

    def handle_message(self, src_host: str, payload: dict) -> Any:
        op = payload.get("op")
        if op == "start-rank":
            from repro.runner.box import _resolve_import_path

            callee = _resolve_import_path(payload["path"])
            job = payload["job"]
            rank = payload["rank"]
            size = payload["size"]
            reply_to = payload["reply_to"]
            _, mailbox = self._locate(job, "world", rank)
            self.hmsg.open_mailbox(mailbox)
            context = MpiContext(self, job, "world", rank, size)

            def body() -> None:
                try:
                    result = callee(context, *payload.get("args", ()))
                    report = {"op": "rank-done", "job": job, "rank": rank, "result": result}
                except Exception as exc:
                    report = {"op": "rank-done", "job": job, "rank": rank,
                              "error": f"rank {rank}: {type(exc).__name__}: {exc}"}
                assert self.kernel is not None
                self.kernel.send(reply_to, "mpi", report)

            self.hproc.spawn(body, name=f"mpi-{job}-r{rank}")
            return True
        if op == "rank-done":
            pending = getattr(self, "_pending_jobs", {}).get(payload["job"])
            if pending is None:
                return False
            results, errors, latch = pending
            if payload.get("error"):
                errors.append(payload["error"])
            else:
                results[payload["rank"]] = payload.get("result")
            latch.count_down()
            return True
        raise PluginError(f"hmpi: unknown operation {op!r}")
