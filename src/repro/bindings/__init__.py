"""Bindings: server-side exposure, client stubs, and selection policy."""

from repro.bindings.context import LOCAL_DIRECTORY, ClientContext
from repro.bindings.dispatcher import ObjectDispatcher, exposed_operations
from repro.bindings.factory import DEFAULT_PREFERENCE, DynamicStubFactory
from repro.bindings.policy import (
    DEFAULT_POLICY,
    BreakerRegistry,
    CircuitBreaker,
    InvocationPolicy,
    PolicyExecutor,
    backoff_schedule,
    retry_safe,
)
from repro.bindings.resilient import ResilientStub
from repro.bindings.server import BindingServer
from repro.bindings.stubs import LocalStub, ServiceStub, TransportStub, load_type

__all__ = [
    "LOCAL_DIRECTORY",
    "ClientContext",
    "ObjectDispatcher",
    "exposed_operations",
    "DEFAULT_PREFERENCE",
    "DynamicStubFactory",
    "BindingServer",
    "LocalStub",
    "ServiceStub",
    "TransportStub",
    "load_type",
    "DEFAULT_POLICY",
    "BreakerRegistry",
    "CircuitBreaker",
    "InvocationPolicy",
    "PolicyExecutor",
    "backoff_schedule",
    "retry_safe",
    "ResilientStub",
]
