"""Component containers: deployment, lifecycle, lookup, exposure."""

import numpy as np
import pytest

from repro.bindings.context import LOCAL_DIRECTORY, ClientContext
from repro.bindings.factory import DynamicStubFactory
from repro.container.component import ComponentState
from repro.container.container import (
    ApplicationServerContainer,
    LightweightContainer,
)
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import (
    ComponentStateError,
    ContainerError,
    ServiceNotFoundError,
)


@pytest.fixture
def container():
    with LightweightContainer("c1", host="hostA") as c:
        yield c


class TestDeploy:
    def test_deploy_class(self, container):
        handle = container.deploy(MatMul)
        assert handle.name == "MatMul"
        assert handle.state is ComponentState.ACTIVE
        assert isinstance(handle.instance, MatMul)

    def test_deploy_instance(self, container):
        counter = CounterService()
        counter.increment(7)
        handle = container.deploy(counter)
        assert handle.instance is counter
        assert container.get_instance(handle.instance_id).value() == 7

    def test_custom_name(self, container):
        handle = container.deploy(MatMul, name="FastMatMul")
        assert handle.name == "FastMatMul"
        assert container.component_named("FastMatMul") is handle

    def test_duplicate_name_rejected(self, container):
        container.deploy(MatMul)
        with pytest.raises(ContainerError):
            container.deploy(MatMul)

    def test_wsdl_has_instance_port(self, container):
        handle = container.deploy(MatMul)
        service = handle.document.service("MatMul")
        assert service.port("MatMulInstancePort")
        handle.document.validate()

    def test_deploy_without_start(self, container):
        handle = container.deploy(MatMul, start=False)
        assert handle.state is ComponentState.DEPLOYED
        assert not handle.invocable

    def test_unknown_binding_kind(self, container):
        with pytest.raises(ContainerError):
            container.deploy(MatMul, bindings=("corba",))

    def test_registered_in_container_registry(self, container):
        container.deploy(MatMul)
        assert container.registry.lookup_name("MatMul")

    def test_closed_container_rejects_deploy(self):
        container = LightweightContainer("closed-one", host="hostX")
        container.close()
        with pytest.raises(ContainerError):
            container.deploy(MatMul)


class TestLocalDirectory:
    def test_container_self_registers(self, container):
        assert LOCAL_DIRECTORY[container.uri] is container

    def test_close_removes_from_directory(self):
        container = LightweightContainer("temp", host="hostX")
        uri = container.uri
        container.close()
        assert uri not in LOCAL_DIRECTORY

    def test_duplicate_uri_rejected(self, container):
        with pytest.raises(ContainerError):
            LightweightContainer("c1", host="hostA")

    def test_get_instance_unknown(self, container):
        with pytest.raises(ServiceNotFoundError):
            container.get_instance("ghost#1")

    def test_instantiate(self, container):
        obj = container.instantiate("repro.plugins.services:MatMul")
        assert isinstance(obj, MatMul)


class TestLifecycle:
    def test_stop_and_restart(self, container):
        handle = container.deploy(CounterService)
        container.stop_component(handle.instance_id)
        assert handle.state is ComponentState.STOPPED
        container.start_component(handle.instance_id)
        assert handle.state is ComponentState.ACTIVE

    def test_undeploy(self, container):
        handle = container.deploy(MatMul)
        container.undeploy(handle.instance_id)
        assert handle.state is ComponentState.UNDEPLOYED
        with pytest.raises(ServiceNotFoundError):
            container.component_named("MatMul")
        with pytest.raises(ServiceNotFoundError):
            container.get_instance(handle.instance_id)

    def test_illegal_transition(self, container):
        handle = container.deploy(MatMul)  # ACTIVE
        with pytest.raises(ComponentStateError):
            handle.transition(ComponentState.DEPLOYED)

    def test_lifecycle_hooks_called(self, container):
        calls = []

        class Hooked:
            def on_start(self, c):
                calls.append(("start", c))

            def on_stop(self):
                calls.append(("stop", None))

            def work(self):
                return 1

        handle = container.deploy(Hooked())
        assert calls == [("start", container)]
        container.stop_component(handle.instance_id)
        assert calls[-1] == ("stop", None)

    def test_events_published(self, container):
        topics = []
        container.events.subscribe("container.component", lambda e: topics.append(e.topic))
        handle = container.deploy(MatMul)
        container.undeploy(handle.instance_id)
        assert "container.component.deployed" in topics
        assert "container.component.started" in topics
        assert "container.component.undeployed" in topics

    def test_describe(self, container):
        container.deploy(MatMul)
        info = container.describe()
        assert info["components"] == {"MatMul": "active"}
        assert info["kind"] == "lightweight"


class TestLocalLookup:
    def test_lookup_gets_local_instance_stub(self, container):
        container.deploy(CounterService)
        stub = container.lookup("CounterService")
        assert stub.protocol == "local-instance"
        stub.increment(4)
        # the same live instance, not a copy
        assert container.lookup("CounterService").value() == 4

    def test_lookup_unknown(self, container):
        with pytest.raises(ServiceNotFoundError):
            container.lookup("Ghost")

    def test_remote_client_uses_network_binding(self, container, rng):
        handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
        factory = DynamicStubFactory(ClientContext(host="otherHost"))
        stub = factory.create(handle.document)
        assert stub.protocol == "xdr"
        a = rng.random((4, 4))
        assert np.allclose(stub.multiply(a, a), a @ a)
        stub.close()

    def test_exposure_control(self, container):
        handle = container.deploy(CounterService)
        container.set_exposure(handle.instance_id, "private")
        assert container.registry.find("//service") == []
        # private services still resolvable within the container
        assert container.lookup("CounterService", include_private=True)
        container.set_exposure(handle.instance_id, "public")
        assert len(container.registry.find("//service")) == 1


class TestApplicationServerContainer:
    def test_deploy_publishes_to_uddi(self):
        with ApplicationServerContainer("as-test", host="hostB") as container:
            container.deploy(MatMul, bindings=("soap",))
            assert len(container.uddi.find_service("MatMul")) == 1

    def test_dedicated_endpoint_per_component(self):
        with ApplicationServerContainer("as-test2", host="hostB") as container:
            h1 = container.deploy(MatMul, bindings=("soap",))
            h2 = container.deploy(CounterService, bindings=("soap",))
            listeners = container._dedicated_listeners
            assert h1.instance_id in listeners and h2.instance_id in listeners

    def test_undeploy_closes_dedicated_endpoint(self):
        with ApplicationServerContainer("as-test3", host="hostB") as container:
            handle = container.deploy(MatMul, bindings=("soap",))
            container.undeploy(handle.instance_id)
            assert handle.instance_id not in container._dedicated_listeners

    def test_still_serves_calls(self, rng):
        with ApplicationServerContainer("as-test4", host="hostB") as container:
            container.deploy(MatMul, bindings=("soap",))
            stub = container.lookup("MatMul")
            a = rng.random(4)
            result = stub.getResult(a, a)
            assert np.allclose(result, (a.reshape(2, 2) @ a.reshape(2, 2)).ravel())

    def test_validation_rounds_configurable(self):
        with ApplicationServerContainer("as-test5", host="hostB", validation_rounds=1) as c:
            assert c.validation_rounds == 1
            c.deploy(MatMul, bindings=("soap",))
