"""UDDI registry XML export/import — durable accessible locations."""

import pytest

from repro.plugins.services import MatMul, WSTime
from repro.registry.uddi import UddiRegistry
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import RegistryError
from repro.wsdl.extensions import SoapAddressExt
from repro.wsdl.model import WsdlPort, WsdlService


def _deployed(cls, location: str):
    doc = generate_wsdl(cls, bindings=("soap",))
    return doc.with_service(
        WsdlService(
            cls.__name__,
            (WsdlPort("p", f"{cls.__name__}SoapBinding", (SoapAddressExt(location),)),),
        )
    )


@pytest.fixture
def populated():
    registry = UddiRegistry()
    business = registry.save_business("dept", "departmental supplier")
    registry.publish_wsdl(business.key, _deployed(MatMul, "http://h:1/"))
    registry.publish_wsdl(business.key, _deployed(WSTime, "http://h:2/"))
    return registry, business


class TestExportImport:
    def test_round_trip_preserves_everything(self, populated):
        registry, business = populated
        revived = UddiRegistry.import_xml(registry.export_xml())
        assert revived.find_business("dept")[0].description == "departmental supplier"
        assert {s.name for s in revived.find_service()} == {"MatMul", "WSTime"}
        service = revived.find_service("MatMul")[0]
        assert service.business_key == business.key
        assert service.bindings[0].access_point == "http://h:1/"
        assert len(revived.find_tmodel("PortType")) == 2

    def test_wsdl_still_resolvable_after_round_trip(self, populated):
        registry, _ = populated
        revived = UddiRegistry.import_xml(registry.export_xml())
        key = revived.find_service("WSTime")[0].key
        document = revived.get_wsdl(key)
        document.validate()
        assert document.port_type("WSTimePortType")

    def test_generic_queries_work_after_round_trip(self, populated):
        registry, _ = populated
        revived = UddiRegistry.import_xml(registry.export_xml())
        matches = revived.map_generic_query("//operation[@name='getTime']")
        assert [s.name for s in matches] == ["WSTime"]

    def test_empty_registry_round_trip(self):
        revived = UddiRegistry.import_xml(UddiRegistry().export_xml())
        assert revived.find_service() == []

    def test_double_round_trip_stable(self, populated):
        registry, _ = populated
        once = UddiRegistry.import_xml(registry.export_xml())
        assert once.export_xml() == UddiRegistry.import_xml(once.export_xml()).export_xml()

    def test_import_rejects_non_registry(self):
        with pytest.raises(RegistryError):
            UddiRegistry.import_xml("<something/>")

    def test_import_rejects_dangling_business_reference(self, populated):
        registry, business = populated
        text = registry.export_xml()
        corrupted = text.replace(business.key, "business:ghost", 1)  # entity key only
        with pytest.raises(RegistryError):
            UddiRegistry.import_xml(corrupted)

    def test_export_is_valid_xml_with_uddi_namespace(self, populated):
        registry, _ = populated
        from repro.xmlkit import parse

        root = parse(registry.export_xml())
        assert root.name.local == "registry"
        assert root.name.namespace == "urn:uddi-org:api_v2"
