"""DVM distributed-state coherency protocols.

Section 6: "the Harness II framework defines only the DVM API and does not
mandate any particular solution to maintain global state coherency.
Concrete implementations are provided by the DVM-enabling components that
may vary in implementation from the full synchrony method to complete
decentralization."

Three DVM-enabling components are provided:

* :class:`FullSynchronyState` — "the entire state information is replicated
  across all participating nodes.  All system events are synchronously
  distributed to maintain coherency. … may be appropriate for relatively
  small DVMs running applications with many critical components."
* :class:`DecentralizedState` — "state change events are not propagated to
  other nodes.  Instead, every request for state information triggers a
  distributed query spanning across the DVM. … appropriate for loosely
  coupled, massively distributed applications such as Seti@home."
* :class:`NeighborhoodState` — the mixed solution: "full synchrony across
  small neighborhoods but … distributed queries for farther hosts."

All three expose the same functional interface (:class:`DvmStateProtocol`),
which is the portability property experiment C7 asserts.  Entries carry
``(lamport, origin)`` versions merged last-writer-wins, so decentralized
reads converge deterministically.  Messages are XDR-encoded real bytes over
the :class:`~repro.netsim.VirtualNetwork` — the C4 benchmark compares
protocols by the fabric's message/byte/simulated-time accounting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.encoding.xdr import pack_value, unpack_value
from repro.netsim.fabric import HostDownError, MessageDroppedError, VirtualNetwork
from repro.transport.base import TransportMessage
from repro.util.concurrent import AtomicCounter
from repro.util.errors import CoherencyError, DvmError

#: "this peer is effectively unreachable right now" — a crashed/partitioned
#: host or a message lost beyond the retry budget.  Every best-effort path
#: (decentralized reads, neighbourhood pushes, state transfer) skips peers
#: failing with these.
_UNREACHABLE = (HostDownError, MessageDroppedError)

__all__ = [
    "StateEntry",
    "DvmStateProtocol",
    "FullSynchronyState",
    "DecentralizedState",
    "NeighborhoodState",
]

_CT = "application/x-harness-state"
_ENDPOINT = "dvm-state"


@dataclass(frozen=True)
class StateEntry:
    """A versioned state value: last-writer-wins on (lamport, origin)."""

    key: str
    value: Any
    lamport: int
    origin: str

    def newer_than(self, other: "StateEntry | None") -> bool:
        if other is None:
            return True
        return (self.lamport, self.origin) > (other.lamport, other.origin)

    def to_wire(self) -> dict:
        return {"key": self.key, "value": self.value, "lamport": self.lamport, "origin": self.origin}

    @classmethod
    def from_wire(cls, data: dict) -> "StateEntry":
        return cls(data["key"], data["value"], data["lamport"], data["origin"])


class _StateNode:
    """Per-member local store plus the network endpoint serving peers."""

    def __init__(self, protocol: "DvmStateProtocol", host_name: str):
        self.host_name = host_name
        self.store: dict[str, StateEntry] = {}
        self.lock = threading.RLock()
        self._protocol = protocol
        host = protocol.network.host(host_name)
        # a node re-enrolled after eviction replaces its stale handler
        # (remove_member leaves the endpoint bound, see its docstring)
        host.unbind(_ENDPOINT)
        host.bind(_ENDPOINT, self._serve)

    def apply(self, entry: StateEntry) -> bool:
        """Merge an entry; True when it superseded the stored one."""
        with self.lock:
            current = self.store.get(entry.key)
            if entry.newer_than(current):
                self.store[entry.key] = entry
                return True
            return False

    def get(self, key: str) -> StateEntry | None:
        with self.lock:
            return self.store.get(key)

    def snapshot(self) -> dict[str, StateEntry]:
        with self.lock:
            return dict(self.store)

    def _serve(self, message: TransportMessage) -> TransportMessage:
        request = unpack_value(message.payload)
        kind = request["kind"]
        if kind == "update":
            self.apply(StateEntry.from_wire(request["entry"]))
            reply: Any = {"ok": True}
        elif kind == "get":
            entry = self.get(request["key"])
            reply = {"entry": entry.to_wire() if entry else None}
        elif kind == "snapshot":
            prefix = request.get("prefix", "")
            with self.lock:
                entries = [
                    e.to_wire() for k, e in self.store.items() if k.startswith(prefix)
                ]
            reply = {"entries": entries}
        else:
            raise CoherencyError(f"unknown state request kind {kind!r}")
        return TransportMessage(_CT, pack_value(reply))


class DvmStateProtocol:
    """Shared plumbing + the uniform interface of all coherency schemes."""

    #: human-readable protocol tag used by benchmarks and status queries
    scheme = "abstract"

    #: per-member node type; schemes with richer endpoints (gossip) override
    node_class = _StateNode

    def __init__(
        self,
        network: VirtualNetwork,
        members: list[str] | None = None,
        send_retries: int = 0,
    ):
        members = list(members or [])
        self.network = network
        self.members = list(members)
        self.nodes: dict[str, _StateNode] = {
            name: self.node_class(self, name) for name in self.members
        }
        self._clock = AtomicCounter()
        # Bounded resends over lossy links.  State operations are idempotent
        # (entries merge last-writer-wins), so resending either phase of a
        # dropped exchange is always safe; each resend is charged to the
        # fabric like any other message.  0 = drops surface to the caller.
        self.send_retries = send_retries

    # -- the uniform interface ---------------------------------------------------

    def update(self, origin: str, key: str, value: Any) -> StateEntry:
        """Apply a state change originating at *origin*."""
        raise NotImplementedError

    def get(self, node: str, key: str) -> Any:
        """The value of *key* as observed from *node* (None if absent)."""
        raise NotImplementedError

    def snapshot(self, node: str, prefix: str = "") -> dict[str, Any]:
        """All known key→value pairs (optionally under *prefix*) from *node*."""
        raise NotImplementedError

    # -- membership -----------------------------------------------------------------

    def add_member(self, name: str) -> None:
        """Enroll a new node into the protocol (DVM grow operation)."""
        if name in self.nodes:
            raise DvmError(f"node {name!r} is already a member")
        existing = list(self.members)
        self.members.append(name)
        self.nodes[name] = self.node_class(self, name)
        self._on_member_added(name, existing)

    def _on_member_added(self, name: str, existing: list[str]) -> None:
        """Scheme-specific join work (e.g. state transfer to the newcomer)."""

    def _pull_state(self, newcomer: str, sources: list[str]) -> None:
        """Transfer the current replica to *newcomer* from the first live source."""
        node = self.nodes[newcomer]
        for source in sources:
            try:
                for entry in self._remote_snapshot(newcomer, source, ""):
                    node.apply(entry)
                return
            except _UNREACHABLE:
                continue

    def remove_member(self, name: str) -> None:
        """Drop a node (its endpoint stays bound but is no longer consulted)."""
        if name not in self.nodes:
            raise DvmError(f"node {name!r} is not a member")
        self.members.remove(name)
        del self.nodes[name]

    # -- helpers ---------------------------------------------------------------------

    def _node(self, name: str) -> _StateNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise DvmError(f"node {name!r} is not a DVM member") from None

    def _stamp(self, origin: str, key: str, value: Any) -> StateEntry:
        return StateEntry(key, value, self._clock.increment(), origin)

    def _send(self, src: str, dst: str, request: dict) -> dict:
        message = TransportMessage(_CT, pack_value(request))
        attempts = self.send_retries + 1
        for attempt in range(attempts):
            try:
                response = self.network.request(src, dst, _ENDPOINT, message)
            except MessageDroppedError:
                if attempt + 1 >= attempts:
                    raise
                continue
            return unpack_value(response.payload)
        raise AssertionError("unreachable")  # pragma: no cover

    def _remote_get(self, src: str, dst: str, key: str) -> StateEntry | None:
        reply = self._send(src, dst, {"kind": "get", "key": key})
        wire = reply.get("entry")
        return StateEntry.from_wire(wire) if wire else None

    def _remote_snapshot(self, src: str, dst: str, prefix: str) -> list[StateEntry]:
        reply = self._send(src, dst, {"kind": "snapshot", "prefix": prefix})
        return [StateEntry.from_wire(w) for w in reply.get("entries", [])]

    def _push(self, src: str, dst: str, entry: StateEntry) -> None:
        self._send(src, dst, {"kind": "update", "entry": entry.to_wire()})


class FullSynchronyState(DvmStateProtocol):
    """Synchronous replication to every member; local reads."""

    scheme = "full-synchrony"

    def _on_member_added(self, name: str, existing: list[str]) -> None:
        # a newcomer must start from the full replica
        self._pull_state(name, existing)

    def update(self, origin: str, key: str, value: Any) -> StateEntry:
        entry = self._stamp(origin, key, value)
        self._node(origin).apply(entry)
        failures = []
        for member in self.members:
            if member == origin:
                continue
            try:
                self._push(origin, member, entry)
            except _UNREACHABLE as exc:
                failures.append(f"{member}: {exc}")
        if failures:
            raise CoherencyError(
                f"synchronous update of {key!r} failed on: {'; '.join(failures)}"
            )
        return entry

    def get(self, node: str, key: str) -> Any:
        entry = self._node(node).get(key)
        return entry.value if entry else None

    def snapshot(self, node: str, prefix: str = "") -> dict[str, Any]:
        return {
            k: e.value
            for k, e in self._node(node).snapshot().items()
            if k.startswith(prefix)
        }


class DecentralizedState(DvmStateProtocol):
    """Local writes; reads flood the DVM and merge by version."""

    scheme = "decentralized"

    def update(self, origin: str, key: str, value: Any) -> StateEntry:
        entry = self._stamp(origin, key, value)
        self._node(origin).apply(entry)
        return entry

    def get(self, node: str, key: str) -> Any:
        best = self._node(node).get(key)
        for member in self.members:
            if member == node:
                continue
            try:
                remote = self._remote_get(node, member, key)
            except _UNREACHABLE:
                continue
            if remote is not None and remote.newer_than(best):
                best = remote
        return best.value if best else None

    def snapshot(self, node: str, prefix: str = "") -> dict[str, Any]:
        merged: dict[str, StateEntry] = {
            k: e for k, e in self._node(node).snapshot().items() if k.startswith(prefix)
        }
        for member in self.members:
            if member == node:
                continue
            try:
                for entry in self._remote_snapshot(node, member, prefix):
                    if entry.newer_than(merged.get(entry.key)):
                        merged[entry.key] = entry
            except _UNREACHABLE:
                continue
        return {k: e.value for k, e in merged.items()}


class NeighborhoodState(DvmStateProtocol):
    """Full synchrony across ring neighbourhoods, flooding beyond them."""

    scheme = "neighborhood"

    def __init__(
        self, network: VirtualNetwork, members: list[str] | None = None, radius: int = 2
    ):
        super().__init__(network, members)
        if radius < 1:
            raise DvmError("neighborhood radius must be >= 1")
        self.radius = radius
        self._ring = sorted(self.members)

    def _on_member_added(self, name: str, existing: list[str]) -> None:
        self._ring = sorted(self.members)
        if existing:
            # seed the newcomer from its neighbourhood (preferred) or anyone
            sources = [p for p in self.neighbors(name) if p in existing] or existing
            self._pull_state(name, sources)

    def remove_member(self, name: str) -> None:
        super().remove_member(name)
        self._ring = sorted(self.members)

    def neighbors(self, node: str) -> list[str]:
        """The nodes within ``radius`` ring hops (both directions)."""
        index = self._ring.index(node)
        out: list[str] = []
        for step in range(1, self.radius + 1):
            for direction in (+1, -1):
                peer = self._ring[(index + direction * step) % len(self._ring)]
                if peer != node and peer not in out:
                    out.append(peer)
        return out

    def update(self, origin: str, key: str, value: Any) -> StateEntry:
        entry = self._stamp(origin, key, value)
        self._node(origin).apply(entry)
        for neighbor in self.neighbors(origin):
            try:
                self._push(origin, neighbor, entry)
            except _UNREACHABLE:
                continue
        return entry

    def get(self, node: str, key: str) -> Any:
        # Within the neighbourhood reads are coherent: merge self + all
        # neighbours by version (a writer's replicas land on *its*
        # neighbours, so overlapping neighbourhoods see the newest entry).
        # Only when the whole neighbourhood misses do we flood the ring.
        best = self._node(node).get(key)
        neighborhood = self.neighbors(node)
        for peer in neighborhood:
            try:
                remote = self._remote_get(node, peer, key)
            except _UNREACHABLE:
                continue
            if remote is not None and remote.newer_than(best):
                best = remote
        if best is not None:
            return best.value
        for peer in self._ring:
            if peer == node or peer in neighborhood:
                continue
            try:
                remote = self._remote_get(node, peer, key)
            except _UNREACHABLE:
                continue
            if remote is not None and remote.newer_than(best):
                best = remote
        return best.value if best else None

    def snapshot(self, node: str, prefix: str = "") -> dict[str, Any]:
        merged: dict[str, StateEntry] = {
            k: e for k, e in self._node(node).snapshot().items() if k.startswith(prefix)
        }
        for peer in self._ring:
            if peer == node:
                continue
            try:
                for entry in self._remote_snapshot(node, peer, prefix):
                    if entry.newer_than(merged.get(entry.key)):
                        merged[entry.key] = entry
            except _UNREACHABLE:
                continue
        return {k: e.value for k, e in merged.items()}
