"""Trace contexts propagated across every Harness transport.

A :class:`TraceContext` is (trace id, span id, parent span id, baggage):
the trace id names one end-to-end invocation no matter how many hops it
takes, span ids name the hops, and baggage is a small set of key/value
pairs that travels with the call.  Ids are 64-bit, written as 16 lowercase
hex digits.

Three wire forms carry the same context (property-tested to agree):

* **binary** (:func:`to_bytes` / :func:`from_bytes`) — ``"RT" | version |
  trace | span | parent | n | (klen k vlen v)*``, attached to TCP
  protocol-v2 frames behind a status-byte flag;
* **text** (:func:`to_header` / :func:`from_header`) —
  ``trace-span-parent[;k=v,…]`` with percent-encoded baggage, carried in
  the ``X-Repro-Trace`` HTTP header;
* **SOAP** (:func:`splice_soap` / :func:`extract_soap`) — a
  ``<soapenv:Header><harness:trace …>`` block spliced ahead of the Body
  (the streaming envelope reader skips Header subtrees, so call parsing is
  unaffected).

The in-process and simulated transports need no wire form: invocation is
synchronous in the caller's thread, so the contextvar flows by itself.

Tracing is globally off by default.  Hot paths read the module attribute
:data:`ENABLED` — one dict lookup — and do nothing else when it is false.
"""

from __future__ import annotations

import atexit
import os
import random
import re
import struct
import threading
from collections import deque
from time import monotonic as _monotonic, sleep as _sleep
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import NamedTuple
from urllib.parse import quote, unquote

__all__ = [
    "TraceContext",
    "TraceWireError",
    "Span",
    "SpanRecorder",
    "recorder",
    "new_trace",
    "current",
    "activate",
    "activate_wire",
    "peek",
    "LazyChild",
    "deactivate",
    "use",
    "finisher",
    "flush",
    "enable",
    "enabled",
    "to_bytes",
    "from_bytes",
    "to_header",
    "from_header",
    "soap_header_block",
    "splice_soap",
    "extract_soap",
    "TRACE_HEADER",
    "SOAP_MARKER",
]

#: HTTP request header carrying the text wire form.
TRACE_HEADER = "X-Repro-Trace"

_ZERO = "0" * 16
_HEX16 = re.compile(r"[0-9a-f]{16}$")


class TraceWireError(ValueError):
    """A wire form that is truncated, corrupt, or not a trace at all."""


@dataclass(frozen=True)
class TraceContext:
    """One hop of one distributed invocation."""

    trace_id: str
    span_id: str
    parent_id: str = ""
    baggage: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        for name in ("trace_id", "span_id"):
            value = getattr(self, name)
            if not _HEX16.fullmatch(value):
                raise TraceWireError(f"{name} must be 16 hex digits, got {value!r}")
        if self.trace_id == _ZERO:
            raise TraceWireError("trace_id must be nonzero")
        if self.parent_id and not _HEX16.fullmatch(self.parent_id):
            raise TraceWireError(f"parent_id must be 16 hex digits, got {self.parent_id!r}")

    def child(self) -> "TraceContext":
        """A new span in the same trace, parented to this one."""
        return _make(self.trace_id, _new_id(), self.span_id, self.baggage)

    def with_baggage(self, key: str, value: str) -> "TraceContext":
        kept = tuple((k, v) for k, v in self.baggage if k != key)
        return TraceContext(
            self.trace_id, self.span_id, self.parent_id, kept + ((key, value),)
        )

    def bag(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.baggage:
            if k == key:
                return v
        return default


# Ids need uniqueness, not unpredictability: a process-local PRNG seeded
# from the OS avoids a syscall per id (three per traced call adds up).
# getrandbits on a shared Random is a single C call, atomic under the GIL.
_id_source = random.Random(os.urandom(16))


def _new_id() -> str:
    value = 0
    while not value:
        value = _id_source.getrandbits(64)
    return f"{value:016x}"


_setattr = object.__setattr__


def _make(trace_id: str, span_id: str, parent_id: str,
          baggage: tuple[tuple[str, str], ...]) -> TraceContext:
    """Trusted constructor for fields already known to be well-formed
    (freshly minted ids, or ids a wire parser regex just matched): skips
    the dataclass ``__init__`` and its validation.  Hot-path only —
    anything user-supplied goes through :class:`TraceContext` proper."""
    ctx = object.__new__(TraceContext)
    _setattr(ctx, "trace_id", trace_id)
    _setattr(ctx, "span_id", span_id)
    _setattr(ctx, "parent_id", parent_id)
    _setattr(ctx, "baggage", baggage)
    return ctx


def new_trace(baggage: tuple[tuple[str, str], ...] = ()) -> TraceContext:
    """A fresh root context (its span has no parent)."""
    if baggage:
        return TraceContext(_new_id(), _new_id(), "", tuple(baggage))
    # both ids from one 128-bit draw and one hex render — half the C calls
    # of two _new_id()s on the per-call root-minting path
    while True:
        text = f"{_id_source.getrandbits(128):032x}"
        trace_id, span_id = text[:16], text[16:]
        if trace_id != _ZERO and span_id != _ZERO:
            return _make(trace_id, span_id, "", ())


# -- current-context management (contextvar: per-thread, per-task) ---------------

_current: ContextVar[TraceContext | None] = ContextVar("repro-trace", default=None)

#: Global tracing switch.  Instrumented hot paths read this attribute and
#: skip all trace work when false; flip it with :func:`enable`.
ENABLED = False


def enable(on: bool = True) -> None:
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


def current() -> TraceContext | None:
    ctx = _current.get()
    if ctx is None or ctx.__class__ is TraceContext:
        return ctx
    return ctx.get()  # a lazy cell: materialize on first read


def activate(ctx):
    """Install *ctx* (a :class:`TraceContext`, a lazy cell, or None) as the
    current context; returns the reset token."""
    return _current.set(ctx)


class _LazyWire:
    """Wire bytes a transport stashed un-parsed.

    Decoding the block and minting ids is bookkeeping the caller should
    not wait on: the cell defers the parse until somebody actually reads
    the context (a service calling :func:`current`) or the deferred server
    span is finalized.  A mangled block materializes as None — same
    outcome as the eager path, decided later.
    """

    __slots__ = ("raw", "parse", "value", "done")

    def __init__(self, raw, parse):
        self.raw = raw
        self.parse = parse
        self.value: TraceContext | None = None
        self.done = False

    def get(self) -> TraceContext | None:
        if not self.done:
            self.done = True
            try:
                self.value = self.parse(self.raw)
            except Exception:  # any mangled block means "no context" — a
                self.value = None  # corrupt frame must never fail the call
        return self.value


class LazyChild:
    """The server-side span context, minted on first use.

    *source* is whatever the transport activated: a real
    :class:`TraceContext`, an un-parsed :class:`_LazyWire`, or None.  The
    child (or fresh root) is memoized so the service's view and the
    deferred span finalizer always agree on ids.
    """

    __slots__ = ("source", "value")

    def __init__(self, source):
        self.source = source
        self.value: TraceContext | None = None

    def get(self) -> TraceContext:
        value = self.value
        if value is None:
            incoming = self.source
            if incoming is not None and incoming.__class__ is not TraceContext:
                if (
                    incoming.__class__ is _LazyWire
                    and not incoming.done
                    and incoming.parse is from_bytes
                ):
                    # nobody materialized the parent: decode the fixed head
                    # and mint the child in one step, skipping the
                    # intermediate context object entirely
                    value = _child_from_wire(incoming.raw)
                    if value is not None:
                        self.value = value
                        return value
                incoming = incoming.get()
            value = incoming.child() if incoming is not None else new_trace()
            self.value = value
        return value


def activate_wire(raw, parse):
    """Install *raw* wire bytes as the current context without parsing
    them; *parse* runs only if the context is actually read."""
    return _current.set(_LazyWire(raw, parse))


def peek():
    """The raw current value — a :class:`TraceContext`, an un-materialized
    lazy cell, or None — without forcing a parse."""
    return _current.get()


def deactivate(token) -> None:
    _current.reset(token)


@contextmanager
def use(ctx: TraceContext | None):
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


# -- asynchronous bookkeeping (span finalization off the critical path) ----------
#
# Span finalization — minting ids, observing histograms, recording the
# span — runs at the worst possible instants: on the server between the
# service returning and the reply write, and on the client just after
# the reply arrives, when the CPU is cache-cold (and mid frequency-ramp)
# from the transit wait.  Both sides therefore hand the work to one
# daemon thread: the hot path pays a deque append and an event set, and
# the drain runs while the caller is off in its *next* blocking wait —
# time the CPU would otherwise spend idle.  Readers that need a
# consistent view (console reports, tests, snapshots over RPC) call
# :func:`flush` first.


class _AsyncFinisher:
    """Single daemon thread draining ``(fn, args)`` bookkeeping items.

    ``submit`` is the per-call hot path and is nothing but a
    ``deque.append`` (atomic under the GIL) — deliberately NOT an event
    set, because waking a parked thread is a futex syscall plus a
    scheduler pass, which costs more on the caller than the bookkeeping
    it displaces.  Instead the worker self-wakes on a short tick and
    drains whatever accumulated; that tick parks in the kernel, so its
    cost lands on idle time, not on any caller.  :meth:`flush` forces an
    immediate drain for readers that need a consistent view.

    The worker starts lazily on the first submission; a finalizer that
    raises is dropped (bookkeeping must not take the process down).  The
    first start registers an ``atexit`` hook that joins the worker after
    a final drain, so a short-lived CLI run (``scenario run``, a one-shot
    console script) does not lose the tail spans still sitting in the
    queue when the interpreter exits.  After the worker has exited —
    shutdown, or an interpreter already tearing down — :meth:`flush`
    drains the queue inline on the caller's thread instead of waiting
    forever on a dead worker.
    """

    __slots__ = ("_queue", "_event", "_thread", "_start_lock", "_busy", "_stopping")

    #: Worker tick: the latency ceiling for a span/metric becoming
    #: visible without an explicit flush.
    _TICK_S = 0.005

    def __init__(self):
        self._queue = deque()
        self._event = threading.Event()
        self._thread = None
        self._start_lock = threading.Lock()
        self._busy = False
        self._stopping = False

    def submit(self, fn, args=()) -> None:
        self._queue.append((fn, args))
        if self._thread is None:
            self._start()

    def _start(self) -> None:
        with self._start_lock:
            if self._thread is None:
                thread = threading.Thread(
                    target=self._run, name="repro-obs-finisher", daemon=True
                )
                self._thread = thread
                thread.start()
                atexit.register(self.shutdown)

    def _run(self) -> None:
        queue, event = self._queue, self._event
        while True:
            event.wait(self._TICK_S)
            event.clear()
            self._busy = True
            while queue:
                try:
                    fn, args = queue.popleft()
                except IndexError:
                    break
                try:
                    fn(*args)
                except Exception:  # noqa: BLE001 — bookkeeping never propagates
                    pass
            self._busy = False
            if self._stopping and not queue:
                return

    def _drain_inline(self) -> None:
        """Run queued finalizers on the calling thread (no worker left)."""
        queue = self._queue
        while queue:
            try:
                fn, args = queue.popleft()
            except IndexError:
                break
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 — bookkeeping never propagates
                pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker after a final drain (idempotent; atexit hook)."""
        thread = self._thread
        self._stopping = True
        if thread is not None and thread.is_alive():
            self._event.set()
            thread.join(timeout)
        self._drain_inline()  # anything submitted after the worker left

    def drained(self) -> bool:
        return not self._queue and not self._busy

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every submitted finalizer has run (or *timeout*).

        Safe at any lifecycle point: with the worker gone (post-shutdown,
        interpreter exit) the queue is drained inline instead.
        """
        if self.drained():
            return True
        thread = self._thread
        if thread is None or not thread.is_alive():
            self._drain_inline()
            return self.drained()
        deadline = _monotonic() + timeout
        while not self.drained():
            self._event.set()  # cut the worker's tick short
            if not thread.is_alive():
                self._drain_inline()
                return self.drained()
            if _monotonic() >= deadline:
                return False
            _sleep(0.0005)
        return True


finisher = _AsyncFinisher()


def flush(timeout: float = 5.0) -> bool:
    """Wait for all pending span/metric bookkeeping to land."""
    return finisher.flush(timeout)


# -- binary wire form (TCP frames) -----------------------------------------------

_MAGIC = b"RT"
_VERSION = 1
_FIXED = struct.Struct(">2sBQQQB")  # magic, version, trace, span, parent, n items
_KLEN = struct.Struct(">H")


def to_bytes(ctx: TraceContext) -> bytes:
    if not ctx.baggage:  # the overwhelmingly common frame: no list, no join
        return _FIXED.pack(
            _MAGIC,
            _VERSION,
            int(ctx.trace_id, 16),
            int(ctx.span_id, 16),
            int(ctx.parent_id, 16) if ctx.parent_id else 0,
            0,
        )
    if len(ctx.baggage) > 255:
        raise TraceWireError("baggage too large for the wire (max 255 items)")
    parts = [
        _FIXED.pack(
            _MAGIC,
            _VERSION,
            int(ctx.trace_id, 16),
            int(ctx.span_id, 16),
            int(ctx.parent_id, 16) if ctx.parent_id else 0,
            len(ctx.baggage),
        )
    ]
    for key, value in ctx.baggage:
        k, v = key.encode("utf-8"), value.encode("utf-8")
        if len(k) > 0xFFFF or len(v) > 0xFFFF:
            raise TraceWireError("baggage item too large for the wire")
        parts.append(_KLEN.pack(len(k)) + k + _KLEN.pack(len(v)) + v)
    return b"".join(parts)


def from_bytes(data: bytes | bytearray | memoryview) -> TraceContext:
    data = bytes(data)
    if len(data) < _FIXED.size:
        raise TraceWireError(f"trace block truncated: {len(data)} bytes")
    magic, version, trace, span, parent, n = _FIXED.unpack_from(data)
    if magic != _MAGIC:
        raise TraceWireError(f"not a trace block (magic {magic!r})")
    if version != _VERSION:
        raise TraceWireError(f"unknown trace block version {version}")
    if not trace or not span:
        raise TraceWireError("trace and span ids must be nonzero")
    offset = _FIXED.size
    baggage = []
    for _ in range(n):
        key, offset = _take(data, offset)
        value, offset = _take(data, offset)
        baggage.append((key, value))
    if offset != len(data):
        raise TraceWireError(f"{len(data) - offset} trailing bytes after trace block")
    return _make(
        f"{trace:016x}", f"{span:016x}", f"{parent:016x}" if parent else "",
        tuple(baggage),
    )


def _child_from_wire(raw) -> TraceContext | None:
    """The server child for a baggage-free binary block, minted without
    materializing the parent context.  None means "take the general
    path": baggage present, or the block is suspect."""
    if len(raw) != _FIXED.size:
        return None
    magic, version, trace, span, _parent, n = _FIXED.unpack(
        raw if isinstance(raw, bytes) else bytes(raw)
    )
    if magic != _MAGIC or version != _VERSION or n or not trace or not span:
        return None
    return _make(f"{trace:016x}", _new_id(), f"{span:016x}", ())


def _take(data: bytes, offset: int) -> tuple[str, int]:
    if offset + _KLEN.size > len(data):
        raise TraceWireError("trace block truncated inside baggage")
    (length,) = _KLEN.unpack_from(data, offset)
    offset += _KLEN.size
    if offset + length > len(data):
        raise TraceWireError("trace block truncated inside baggage item")
    try:
        text = data[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceWireError(f"baggage is not UTF-8: {exc}") from None
    return text, offset + length


# -- text wire form (HTTP header) ------------------------------------------------

_HEADER_RE = re.compile(r"([0-9a-f]{16})-([0-9a-f]{16})-([0-9a-f]{16})$")


def to_header(ctx: TraceContext) -> str:
    text = f"{ctx.trace_id}-{ctx.span_id}-{ctx.parent_id or _ZERO}"
    if ctx.baggage:
        items = ",".join(
            f"{quote(k, safe='')}={quote(v, safe='')}" for k, v in ctx.baggage
        )
        text = f"{text};{items}"
    return text


def from_header(text: str) -> TraceContext:
    ids, sep, tail = text.partition(";")
    match = _HEADER_RE.fullmatch(ids)
    if match is None:
        raise TraceWireError(f"malformed trace header: {text[:80]!r}")
    baggage = []
    if sep:
        if not tail:
            raise TraceWireError("empty baggage section in trace header")
        for item in tail.split(","):
            # empty keys are legal (percent-encoding of "" is ""), so only
            # the separator is mandatory
            key, eq, value = item.partition("=")
            if not eq:
                raise TraceWireError(f"malformed baggage item {item!r}")
            try:
                baggage.append((unquote(key, errors="strict"), unquote(value, errors="strict")))
            except UnicodeDecodeError as exc:
                raise TraceWireError(f"baggage is not UTF-8: {exc}") from None
    trace, span, parent = match.groups()
    if trace == _ZERO:
        raise TraceWireError("trace_id must be nonzero")
    return _make(trace, span, "" if parent == _ZERO else parent, tuple(baggage))


# -- SOAP wire form (envelope header block) --------------------------------------

# NS_HARNESS from repro.xmlkit, inlined as bytes: obs sits below the soap
# layer and must not import it (soap.codec imports obs for the splice).
_NS = b"http://harness.mathcs.emory.edu/wsdl/harness/"

#: Cheap containment probe: only payloads carrying this marker are parsed.
SOAP_MARKER = b"<harness:trace"

_SOAP_TRACE_RE = re.compile(
    rb'<harness:trace xmlns:harness="[^"]+" '
    rb'id="([0-9a-f]{16})" span="([0-9a-f]{16})" parent="([0-9a-f]{16})">'
    rb'((?:<harness:bag key="[^"<>]*">[^<]*</harness:bag>)*)'
    rb"</harness:trace>"
)
_BAG_RE = re.compile(rb'<harness:bag key="([^"<>]*)">([^<]*)</harness:bag>')
_BODY_OPEN = b"<soapenv:Body>"


def soap_header_block(ctx: TraceContext) -> bytes:
    """The self-contained ``<soapenv:Header>…`` bytes for *ctx*.

    Keys and values are percent-encoded (as in the HTTP form), so the block
    is always XML-safe ASCII regardless of what the baggage holds.
    """
    bags = b"".join(
        b'<harness:bag key="%s">%s</harness:bag>'
        % (quote(k, safe="").encode("ascii"), quote(v, safe="").encode("ascii"))
        for k, v in ctx.baggage
    )
    return (
        b'<soapenv:Header><harness:trace xmlns:harness="%s" '
        b'id="%s" span="%s" parent="%s">%s</harness:trace></soapenv:Header>'
        % (
            _NS,
            ctx.trace_id.encode("ascii"),
            ctx.span_id.encode("ascii"),
            (ctx.parent_id or _ZERO).encode("ascii"),
            bags,
        )
    )


def splice_soap(envelope: bytes, ctx: TraceContext) -> bytes:
    """Insert the trace header block ahead of ``<soapenv:Body>``.

    Envelopes without a recognizable Body (foreign XML) pass through
    unchanged — tracing never breaks a payload it does not understand.
    """
    if not isinstance(envelope, (bytes, bytearray)):
        envelope = bytes(envelope)
    index = envelope.find(_BODY_OPEN)
    if index < 0:
        return bytes(envelope)
    return b"%s%s%s" % (envelope[:index], soap_header_block(ctx), envelope[index:])


def extract_soap(data: bytes | bytearray | memoryview) -> TraceContext | None:
    """The context carried in a SOAP payload, or None when it carries none.

    A payload *containing* the trace marker but failing to parse raises
    :class:`TraceWireError` — a mangled header must not be silently read as
    "no trace".
    """
    if not isinstance(data, (bytes, bytearray)):
        data = bytes(data)
    if SOAP_MARKER not in data:
        return None
    match = _SOAP_TRACE_RE.search(data)
    if match is None:
        raise TraceWireError("malformed harness:trace SOAP header block")
    trace, span, parent, bags = match.groups()
    baggage = []
    for key, value in _BAG_RE.findall(bags):
        try:
            baggage.append(
                (
                    unquote(key.decode("ascii"), errors="strict"),
                    unquote(value.decode("ascii"), errors="strict"),
                )
            )
        except UnicodeDecodeError as exc:
            raise TraceWireError(f"baggage is not UTF-8: {exc}") from None
    parent_text = parent.decode("ascii")
    trace_text = trace.decode("ascii")
    if trace_text == _ZERO:
        raise TraceWireError("trace_id must be nonzero")
    return _make(
        trace_text,
        span.decode("ascii"),
        "" if parent_text == _ZERO else parent_text,
        tuple(baggage),
    )


# -- span recording --------------------------------------------------------------


class Span(NamedTuple):
    """One finished, timed hop (client or server side of a call).

    A NamedTuple, not a dataclass: spans are minted on every traced call,
    and tuple construction is the cheapest object creation Python offers.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str = ""
    status: str = "ok"
    timings_us: dict = {}

    def describe(self) -> str:
        timings = " ".join(f"{k}={v:.0f}us" for k, v in self.timings_us.items())
        return f"{self.name} [{self.status}] trace={self.trace_id} span={self.span_id} {timings}".rstrip()


class SpanRecorder:
    """Bounded in-memory ring of finished spans (newest kept).

    ``record`` is lock-free: ``deque.append`` with a maxlen is atomic in
    CPython, and record sits on every traced call's finish path.  Readers
    (cold path) retry the snapshot if a concurrent append moves the ring
    under them.

    ``tee``, when set, is called with every recorded span — the flight
    recorder's tap (:mod:`repro.obs.recorder`).  Unset it costs one
    attribute read per record; a tee that raises is dropped.
    """

    def __init__(self, capacity: int = 512):
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.tee = None

    def record(self, span: Span) -> None:
        self._spans.append(span)
        tee = self.tee
        if tee is not None:
            try:
                tee(span)
            except Exception:  # noqa: BLE001 — a tap must not break recording
                pass

    def _snapshot(self) -> list[Span]:
        while True:
            try:
                return list(self._spans)
            except RuntimeError:  # deque mutated during iteration
                continue

    def last(self, n: int = 10) -> list[Span]:
        """The most recent *n* spans, newest first."""
        return self._snapshot()[::-1][: max(0, n)]

    def clear(self) -> None:
        # Land queued bookkeeping first: "start fresh" must not see spans
        # from *before* the clear trickling in on the finisher's next tick
        # (the reactor server made request turnaround faster than one tick,
        # which turned that trickle from theoretical into reproducible).
        finisher.flush(timeout=1.0)
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


#: Process-wide recorder the instrumented stubs/servers report into.
recorder = SpanRecorder()
