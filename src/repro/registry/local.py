"""In-process service registry: the DVM/container lookup service.

Stores WSDL descriptions and answers :class:`~repro.xmlkit.XmlQuery`
queries over them — the paper's "registry/lookup framework based on the
capability of querying XML documents (actually WSDL descriptions) for
specific nodes and values" (Section 5).

Exposure control implements Section 6's flexible publication model: "it is
the provider's run time decision whether the component is to be registered
in one or more publicly available lookup services, or if it is to be kept
private.  The decision can be reviewed at any time."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.util.errors import DuplicateNameError, RegistryError, ServiceNotFoundError
from repro.util.ids import new_uuid_key
from repro.wsdl.io import document_to_element
from repro.wsdl.model import WsdlDocument
from repro.xmlkit import XmlElement, XmlQuery

__all__ = ["RegisteredService", "ServiceRegistry", "PUBLIC", "PRIVATE"]

PUBLIC = "public"
PRIVATE = "private"


@dataclass
class RegisteredService:
    """One registry entry: a WSDL document plus publication state."""

    key: str
    name: str
    document: WsdlDocument
    xml: XmlElement
    exposure: str = PUBLIC
    metadata: dict = field(default_factory=dict)

    @property
    def public(self) -> bool:
        return self.exposure == PUBLIC


class ServiceRegistry:
    """Thread-safe registry of WSDL-described services with XML queries."""

    def __init__(self, name: str = "registry"):
        self.name = name
        self._lock = threading.RLock()
        self._entries: dict[str, RegisteredService] = {}
        self._by_name: dict[str, str] = {}

    # -- registration ------------------------------------------------------------

    def register(
        self,
        document: WsdlDocument,
        exposure: str = PUBLIC,
        metadata: dict | None = None,
        key: str | None = None,
    ) -> RegisteredService:
        """Publish *document*; returns the entry (with its registry key).

        The service name (document name) must be unique in this registry.
        """
        if exposure not in (PUBLIC, PRIVATE):
            raise RegistryError(f"bad exposure {exposure!r}")
        document.validate()
        entry = RegisteredService(
            key=key or new_uuid_key("svc"),
            name=document.name,
            document=document,
            xml=document_to_element(document),
            exposure=exposure,
            metadata=dict(metadata or {}),
        )
        with self._lock:
            if document.name in self._by_name:
                raise DuplicateNameError(
                    f"service {document.name!r} already registered in {self.name}"
                )
            self._entries[entry.key] = entry
            self._by_name[entry.name] = entry.key
        return entry

    def unregister(self, key: str) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                raise ServiceNotFoundError(f"no entry with key {key!r}")
            self._by_name.pop(entry.name, None)

    def set_exposure(self, key: str, exposure: str) -> None:
        """Publish or hide an already-registered service at run time."""
        if exposure not in (PUBLIC, PRIVATE):
            raise RegistryError(f"bad exposure {exposure!r}")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise ServiceNotFoundError(f"no entry with key {key!r}")
            entry.exposure = exposure

    # -- lookup ---------------------------------------------------------------------

    def get(self, key: str) -> RegisteredService:
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            raise ServiceNotFoundError(f"no entry with key {key!r}")
        return entry

    def lookup_name(self, name: str, include_private: bool = False) -> RegisteredService:
        """Entry by service name."""
        with self._lock:
            key = self._by_name.get(name)
            entry = self._entries.get(key) if key else None
        if entry is None or (not include_private and not entry.public):
            raise ServiceNotFoundError(f"no service named {name!r} in {self.name}")
        return entry

    def entries(self, include_private: bool = False) -> list[RegisteredService]:
        with self._lock:
            all_entries = list(self._entries.values())
        return [e for e in all_entries if include_private or e.public]

    def find(
        self, expression: str | XmlQuery, include_private: bool = False
    ) -> list[RegisteredService]:
        """Entries whose WSDL matches the XML query expression."""
        query = expression if isinstance(expression, XmlQuery) else XmlQuery(expression)
        return [e for e in self.entries(include_private) if query.exists(e.xml)]

    def find_values(
        self, expression: str | XmlQuery, include_private: bool = False
    ) -> dict[str, list[str]]:
        """Per-service string results of a value query (name → values)."""
        query = expression if isinstance(expression, XmlQuery) else XmlQuery(expression)
        out: dict[str, list[str]] = {}
        for entry in self.entries(include_private):
            values = query.values(entry.xml)
            if values:
                out[entry.name] = values
        return out

    def find_by_port_type(
        self, port_type: str, include_private: bool = False
    ) -> list[RegisteredService]:
        """Services implementing a portType — semantic lookup by interface."""
        return self.find(f"//portType[@name='{port_type}']", include_private)

    def find_by_operation(
        self, operation: str, include_private: bool = False
    ) -> list[RegisteredService]:
        """Services exposing an operation of the given name."""
        return self.find(f"//portType/operation[@name='{operation}']", include_private)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
