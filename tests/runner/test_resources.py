"""Resource description, matchmaking, allocation (§1's resource issues)."""

import pytest

from repro.runner.resources import (
    NoMatchError,
    Requirement,
    ResourceCatalog,
    ResourceDescriptor,
    parse_requirement,
)
from repro.util.errors import HarnessError, RunnerError


def fleet() -> ResourceCatalog:
    catalog = ResourceCatalog()
    catalog.register(ResourceDescriptor(
        "bigiron", cpus=16, memory_mb=32768, mflops=4000, arch="sparc", os="solaris",
        tags=frozenset({"batch"}),
    ))
    catalog.register(ResourceDescriptor(
        "cluster-a", cpus=8, memory_mb=8192, mflops=1200, arch="x86", os="linux",
        tags=frozenset({"mpi", "batch"}), attributes={"network": "myrinet"},
    ))
    catalog.register(ResourceDescriptor(
        "desktop", cpus=2, memory_mb=1024, mflops=300, arch="x86", os="linux",
        tags=frozenset({"interactive"}),
    ))
    return catalog


class TestParseRequirement:
    @pytest.mark.parametrize(
        "text,key,op,value",
        [
            ("cpus>=4", "cpus", ">=", 4),
            ("memory_mb <= 8192", "memory_mb", "<=", 8192),
            ("arch=x86", "arch", "=", "x86"),
            ("mflops>999.5", "mflops", ">", 999.5),
            ("cpus<3", "cpus", "<", 3),
        ],
    )
    def test_comparisons(self, text, key, op, value):
        req = parse_requirement(text)
        assert (req.key, req.op, req.value) == (key, op, value)

    def test_tag(self):
        req = parse_requirement("tag:gpu")
        assert req.op == "tag" and req.key == "gpu"

    def test_malformed(self):
        with pytest.raises(HarnessError):
            parse_requirement("cpus !! 4")


class TestRequirementSatisfaction:
    def test_numeric(self):
        resource = ResourceDescriptor("r", cpus=4)
        assert Requirement("cpus", ">=", 4).satisfied_by(resource)
        assert not Requirement("cpus", ">", 4).satisfied_by(resource)

    def test_string_equality(self):
        resource = ResourceDescriptor("r", arch="sparc")
        assert Requirement("arch", "=", "sparc").satisfied_by(resource)
        assert not Requirement("arch", "=", "x86").satisfied_by(resource)

    def test_tag_test(self):
        resource = ResourceDescriptor("r", tags=frozenset({"gpu"}))
        assert Requirement("gpu", "tag").satisfied_by(resource)
        assert not Requirement("fpga", "tag").satisfied_by(resource)

    def test_custom_attribute(self):
        resource = ResourceDescriptor("r", attributes={"network": "myrinet"})
        assert Requirement("network", "=", "myrinet").satisfied_by(resource)

    def test_missing_attribute_fails(self):
        assert not Requirement("gpu_ram", ">=", 1).satisfied_by(ResourceDescriptor("r"))


class TestMatchmaking:
    def test_match_filters_and_ranks(self):
        catalog = fleet()
        matches = catalog.match(["arch=x86", "os=linux"])
        assert [m.name for m in matches] == ["cluster-a", "desktop"]

    def test_string_and_object_requirements_mix(self):
        catalog = fleet()
        matches = catalog.match([Requirement("cpus", ">=", 8), "tag:batch"])
        assert {m.name for m in matches} == {"bigiron", "cluster-a"}

    def test_no_match_is_empty(self):
        assert fleet().match(["arch=ia64"]) == []

    def test_register_duplicate_rejected(self):
        catalog = fleet()
        with pytest.raises(RunnerError):
            catalog.register(ResourceDescriptor("desktop"))

    def test_unregister(self):
        catalog = fleet()
        catalog.unregister("desktop")
        assert catalog.match(["tag:interactive"]) == []
        with pytest.raises(RunnerError):
            catalog.unregister("desktop")

    def test_describe(self):
        assert fleet().describe("bigiron").arch == "sparc"
        with pytest.raises(RunnerError):
            fleet().describe("ghost")


class TestAllocation:
    def test_allocate_best_match(self):
        catalog = fleet()
        chosen = catalog.allocate(["tag:batch"], cpus=4)
        assert chosen.name == "bigiron"  # most headroom
        assert catalog.free_cpus("bigiron") == 12

    def test_allocation_shifts_ranking(self):
        catalog = fleet()
        catalog.allocate(["tag:batch"], cpus=14)  # bigiron nearly full
        chosen = catalog.allocate(["tag:batch"], cpus=4)
        assert chosen.name == "cluster-a"

    def test_release(self):
        catalog = fleet()
        catalog.allocate(["arch=x86"], cpus=2)
        catalog.release("cluster-a", 2)
        assert catalog.free_cpus("cluster-a") == 8

    def test_over_release_rejected(self):
        catalog = fleet()
        with pytest.raises(RunnerError):
            catalog.release("desktop", 1)

    def test_exhaustion_raises(self):
        catalog = fleet()
        catalog.allocate(["tag:interactive"], cpus=2)
        with pytest.raises(NoMatchError):
            catalog.allocate(["tag:interactive"], cpus=1)

    def test_no_candidate_raises(self):
        with pytest.raises(NoMatchError):
            fleet().allocate(["arch=alpha"])


class TestAggregates:
    def test_aggregate_spans_resources(self):
        catalog = fleet()
        pieces = catalog.aggregate(["tag:batch"], total_cpus=20)
        assert sum(cpus for _, cpus in pieces) == 20
        assert {r.name for r, _ in pieces} == {"bigiron", "cluster-a"}
        # capacity actually reserved
        assert catalog.free_cpus("bigiron") + catalog.free_cpus("cluster-a") == 4

    def test_aggregate_rolls_back_on_shortage(self):
        catalog = fleet()
        with pytest.raises(NoMatchError):
            catalog.aggregate(["tag:batch"], total_cpus=100)
        assert catalog.free_cpus("bigiron") == 16
        assert catalog.free_cpus("cluster-a") == 8

    def test_aggregate_exact_fit(self):
        catalog = fleet()
        pieces = catalog.aggregate(["arch=x86"], total_cpus=10)
        assert sum(c for _, c in pieces) == 10


class TestRunnerBoxIntegration:
    def test_descriptor_for_runner_box(self):
        """A runner box's describe() output publishes into the catalog."""
        from repro.runner.box import ThreadRunnerBox

        box = ThreadRunnerBox(name="thread-node")
        info = box.describe()
        catalog = ResourceCatalog()
        catalog.register(ResourceDescriptor(
            info["name"], cpus=4, tags=frozenset({info["kind"]}),
        ))
        assert catalog.match(["tag:thread"])[0].name == "thread-node"
