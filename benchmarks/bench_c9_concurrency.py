"""C9 wire-path concurrency — multiplexed vs serialized XDR/TCP.

The protocol-v2 wire path tags every frame with a correlation id so many
in-flight requests share a socket, and the server offloads decode/dispatch
to a pool instead of handling frames head-of-line.  This experiment
measures what that buys: N client threads hammer ONE stub whose service op
holds the connection for a small, GIL-releasing service time (modelling an
I/O- or compute-bound component), once over the multiplexed transport and
once over ``multiplex=False`` (one socket + serial lock — the protocol-v1
behaviour, kept as the A/B baseline).

Expected shape: serialized throughput is flat (~1/service_time) no matter
how many client threads pile up, multiplexed throughput scales with
concurrency until the server pool saturates, and at concurrency 1 the two
are indistinguishable — the correlation header costs nanoseconds.

Acceptance (asserted in ``test_report_c9``): multiplexed throughput at
concurrency 8 is **>= 3x** serialized, and single-client p50 latency is
within **10%** of the serialized baseline.

Runs under pytest (``pytest benchmarks/bench_c9_concurrency.py``) and as a
script (``python benchmarks/bench_c9_concurrency.py [--quick]`` — the CI
smoke, exits nonzero if multiplexing does not beat the serialized
baseline at concurrency 8).  Writes ``BENCH_c9.json`` next to this file.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import XdrMessageCodec
from repro.transport.tcp import TcpTransport

#: service time per call; time.sleep releases the GIL, so a concurrent
#: server can overlap calls while a serialized wire path cannot
SERVICE_TIME_S = 0.002

#: REPRO_BENCH_PAYLOAD_N pins the argument size across before/after runs
#: (same knob benchmarks/conftest.py exposes to fixture-based benchmarks)
PAYLOAD_N = int(os.environ.get("REPRO_BENCH_PAYLOAD_N", 64))

LEVELS = [1, 2, 4, 8, 16, 32]
QUICK_LEVELS = [1, 8]

RESULT_PATH = Path(__file__).with_name("BENCH_c9.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script (python benchmarks/bench_c9_concurrency.py)
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


class SlowService:
    """A component whose operations take real (GIL-releasing) time."""

    def work(self, data: str) -> int:
        time.sleep(SERVICE_TIME_S)
        return len(data)


def _measure_level(port: int, concurrency: int, calls_per_thread: int, multiplex: bool) -> dict:
    """Throughput + latency percentiles for one (transport mode, level)."""
    transport = TcpTransport(f"tcp://127.0.0.1:{port}", multiplex=multiplex)
    stub = TransportStub(("work",), "svc", XdrMessageCodec(), transport, "xdr")
    payload = "x" * PAYLOAD_N
    barrier = threading.Barrier(concurrency + 1)
    latencies_s: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        try:
            barrier.wait()
            for _ in range(calls_per_thread):
                t0 = time.perf_counter()
                assert stub.work(payload) == PAYLOAD_N
                latencies_s[slot].append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(concurrency)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed_s = time.perf_counter() - t0
    stub.close()
    if errors:
        raise errors[0]

    flat = sorted(x for per_thread in latencies_s for x in per_thread)
    return {
        "concurrency": concurrency,
        "calls": concurrency * calls_per_thread,
        "throughput_rps": round(concurrency * calls_per_thread / elapsed_s, 1),
        "p50_ms": round(statistics.median(flat) * 1e3, 3),
        "p99_ms": round(flat[min(len(flat) - 1, int(len(flat) * 0.99))] * 1e3, 3),
    }


def run_sweep(levels: list[int], calls_per_thread: int = 25) -> dict:
    """The full A/B sweep; returns the machine-readable result document."""
    dispatcher = ObjectDispatcher()
    dispatcher.register("svc", SlowService())
    server = BindingServer(dispatcher)
    listener = server.expose_xdr_tcp()
    try:
        rows = []
        for level in levels:
            serialized = _measure_level(listener.port, level, calls_per_thread, multiplex=False)
            multiplexed = _measure_level(listener.port, level, calls_per_thread, multiplex=True)
            rows.append({"serialized": serialized, "multiplexed": multiplexed})
    finally:
        server.close()
    return {
        "experiment": "C9 wire-path concurrency (XDR/TCP)",
        "service_time_ms": SERVICE_TIME_S * 1e3,
        "payload_chars": PAYLOAD_N,
        "calls_per_thread": calls_per_thread,
        "levels": rows,
    }


def _speedup_at(result: dict, concurrency: int) -> float:
    for row in result["levels"]:
        if row["serialized"]["concurrency"] == concurrency:
            return row["multiplexed"]["throughput_rps"] / row["serialized"]["throughput_rps"]
    raise KeyError(f"no level {concurrency} in sweep")


def _report(result: dict) -> None:
    rows = []
    for row in result["levels"]:
        ser, mux = row["serialized"], row["multiplexed"]
        rows.append([
            ser["concurrency"],
            f"{ser['throughput_rps']:.0f}", f"{mux['throughput_rps']:.0f}",
            f"{mux['throughput_rps'] / ser['throughput_rps']:.2f}x",
            f"{ser['p50_ms']:.2f}", f"{mux['p50_ms']:.2f}",
            f"{mux['p99_ms']:.2f}",
        ])
    _print_table(
        f"C9: one stub, N threads (service time {result['service_time_ms']:.1f} ms)",
        ["threads", "ser rps", "mux rps", "speedup", "ser p50 ms", "mux p50 ms", "mux p99 ms"],
        rows,
    )


def _write_json(result: dict) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


# -- pytest entry point ----------------------------------------------------------------


def test_report_c9_concurrency():
    result = run_sweep(QUICK_LEVELS)
    _report(result)
    _write_json(result)

    speedup = _speedup_at(result, 8)
    assert speedup >= 3.0, (
        f"multiplexed throughput at 8 threads is only {speedup:.2f}x serialized (need >= 3x)"
    )

    single = result["levels"][0]
    assert single["serialized"]["concurrency"] == 1
    ser_p50, mux_p50 = single["serialized"]["p50_ms"], single["multiplexed"]["p50_ms"]
    assert mux_p50 <= ser_p50 * 1.10, (
        f"single-client p50 regressed: {mux_p50:.3f} ms multiplexed "
        f"vs {ser_p50:.3f} ms serialized (budget: +10%)"
    )


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: levels 1 and 8 only, fewer calls (used by CI)",
    )
    options = parser.parse_args(argv)

    levels = QUICK_LEVELS if options.quick else LEVELS
    calls = 15 if options.quick else 25
    result = run_sweep(levels, calls_per_thread=calls)
    _report(result)
    _write_json(result)

    speedup = _speedup_at(result, 8)
    print(f"\nspeedup at concurrency 8: {speedup:.2f}x")
    if speedup <= 1.0:
        print("FAIL: multiplexed wire path is not faster than the serialized baseline")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
