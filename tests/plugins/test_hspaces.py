"""hspaces — tuple-space (JavaSpaces) emulation (§3's third plugin)."""

import threading
import time

import pytest

from repro.core.builder import HarnessDvm
from repro.core.kernel import HarnessKernel
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hspaces import TupleSpacePlugin, matches_template
from repro.util.errors import HarnessTimeoutError, PluginError


class TestTemplateMatching:
    def test_exact_match(self):
        assert matches_template({"kind": "job"}, {"kind": "job", "n": 1})

    def test_missing_key_fails(self):
        assert not matches_template({"kind": "job"}, {"n": 1})

    def test_value_mismatch_fails(self):
        assert not matches_template({"kind": "job"}, {"kind": "result"})

    def test_none_is_wildcard(self):
        assert matches_template({"kind": "job", "n": None}, {"kind": "job", "n": 42})
        assert not matches_template({"kind": "job", "n": None}, {"kind": "job"})

    def test_empty_template_matches_all(self):
        assert matches_template({}, {"anything": 1})


@pytest.fixture
def space():
    kernel = HarnessKernel("space-host")
    kernel.load_plugin("repro.plugins.hevent:EventManagementPlugin")
    plugin = TupleSpacePlugin()
    kernel.load_plugin(plugin)
    yield plugin
    kernel.shutdown()


class TestLocalSpace:
    def test_write_read_take(self, space):
        space.write({"kind": "job", "n": 1})
        assert space.read_if_exists({"kind": "job"}) == {"kind": "job", "n": 1}
        assert space.count() == 1  # read is non-destructive
        assert space.take_if_exists({"kind": "job"}) == {"kind": "job", "n": 1}
        assert space.count() == 0

    def test_if_exists_returns_none_on_miss(self, space):
        assert space.read_if_exists({"kind": "nothing"}) is None
        assert space.take_if_exists({"kind": "nothing"}) is None

    def test_fifo_among_matches(self, space):
        space.write({"kind": "job", "n": 1})
        space.write({"kind": "job", "n": 2})
        assert space.take_if_exists({"kind": "job"})["n"] == 1
        assert space.take_if_exists({"kind": "job"})["n"] == 2

    def test_blocking_take_waits_for_writer(self, space):
        def writer():
            time.sleep(0.05)
            space.write({"kind": "late", "v": 9})

        threading.Thread(target=writer, daemon=True).start()
        assert space.take({"kind": "late"}, timeout=2.0)["v"] == 9

    def test_blocking_timeout(self, space):
        with pytest.raises(HarnessTimeoutError):
            space.read({"kind": "never"}, timeout=0.05)

    def test_lease_expiry(self, space):
        space.write({"kind": "ephemeral"}, lease_s=0.02)
        assert space.count({"kind": "ephemeral"}) == 1
        time.sleep(0.05)
        assert space.count({"kind": "ephemeral"}) == 0
        assert space.read_if_exists({"kind": "ephemeral"}) is None

    def test_entries_are_copied(self, space):
        original = {"kind": "job", "data": [1]}
        space.write(original)
        got = space.read_if_exists({"kind": "job"})
        got["data"].append(2)  # outer dict copied; caller can't corrupt keys
        assert space.read_if_exists({"kind": "job"})["kind"] == "job"

    def test_non_dict_rejected(self, space):
        with pytest.raises(PluginError):
            space.write(["not", "a", "dict"])

    def test_notify(self, space):
        seen = []
        space.notify({"kind": "job"}, seen.append)
        space.write({"kind": "job", "n": 5})
        space.write({"kind": "other"})
        assert seen == [{"kind": "job", "n": 5}]


class TestDistributedSpace:
    @pytest.fixture
    def cluster(self):
        net = lan(3)
        with HarnessDvm("spaces-dvm", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            for host in harness.kernels:
                harness.load_plugin(host, TupleSpacePlugin(space_host="node0"))
            yield harness, net

    def test_remote_write_local_take(self, cluster):
        harness, _ = cluster
        remote = harness.kernel("node1").get_service("tuple-space")
        server = harness.kernel("node0").get_service("tuple-space")
        remote.write({"kind": "task", "payload": [1.0, 2.0]})
        entry = server.take_if_exists({"kind": "task"})
        assert list(entry["payload"]) == [1.0, 2.0]

    def test_cross_kernel_producer_consumer(self, cluster):
        harness, net = cluster
        producer = harness.kernel("node1").get_service("tuple-space")
        consumer = harness.kernel("node2").get_service("tuple-space")
        before = net.total_messages
        for i in range(5):
            producer.write({"kind": "work", "i": i})
        got = sorted(consumer.take({"kind": "work"}, timeout=5)["i"] for _ in range(5))
        assert got == [0, 1, 2, 3, 4]
        assert net.total_messages > before  # space ops crossed the fabric

    def test_count_remote(self, cluster):
        harness, _ = cluster
        harness.kernel("node2").get_service("tuple-space").write({"kind": "x"})
        assert harness.kernel("node1").get_service("tuple-space").count({"kind": "x"}) == 1

    def test_master_worker_pattern(self, cluster):
        """The canonical JavaSpaces pattern: bag of tasks, result entries."""
        harness, _ = cluster
        master = harness.kernel("node0").get_service("tuple-space")

        def worker(host):
            plugin = harness.kernel(host).get_service("tuple-space")
            while True:
                task = plugin.take_if_exists({"kind": "task"})
                if task is None:
                    return
                plugin.write({"kind": "result", "n": task["n"], "sq": task["n"] ** 2})

        for n in range(6):
            master.write({"kind": "task", "n": n})
        threads = [
            threading.Thread(target=worker, args=(host,), daemon=True)
            for host in ("node1", "node2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        results = {}
        for _ in range(6):
            entry = master.take({"kind": "result"}, timeout=5)
            results[entry["n"]] = entry["sq"]
        assert results == {n: n * n for n in range(6)}
