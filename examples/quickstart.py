#!/usr/bin/env python
"""Quickstart: build a Harness II DVM and call a service across nodes.

Mirrors Figure 1's construction sequence: create a DVM, add nodes, load the
replicated baseline plugins, deploy an application service on one node, and
invoke it from another — the framework picks the best binding each time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HarnessDvm, lan
from repro.plugins import BASELINE_PLUGINS, MatMul


def main() -> None:
    # A simulated 3-node departmental LAN (each node is a virtual host in
    # this process; message costs are charged to the fabric).
    network = lan(3)

    with HarnessDvm("quickstart", network, coherency="full-synchrony") as harness:
        # -- Figure 1 step 1: add nodes ------------------------------------
        harness.add_nodes("node0", "node1", "node2")

        # -- step 2: replicated baseline plugins on every node --------------
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)

        # -- step 3: deploy an application component on one node ------------
        harness.deploy("node1", MatMul)

        # -- use it from another node ----------------------------------------
        stub = harness.stub("node0", "MatMul")
        print(f"client on node0 reached MatMul via the {stub.protocol!r} binding")

        rng = np.random.default_rng(0)
        a = rng.random((64, 64))
        b = rng.random((64, 64))
        result = stub.multiply(a, b)
        print(f"multiplied two 64x64 matrices remotely; max error = "
              f"{np.abs(result - a @ b).max():.2e}")
        stub.close()

        # -- co-located clients get the unmediated local path ----------------
        local_stub = harness.stub("node1", "MatMul")
        print(f"client on node1 (co-located) uses the {local_stub.protocol!r} binding")

        # -- the DVM's unified namespace and status query ---------------------
        status = harness.status("node2")
        print(f"DVM status seen from node2: members={status['members']}, "
              f"components={status['components']}")
        print(f"fabric traffic so far: {network.total_messages} messages, "
              f"{network.total_bytes} bytes, "
              f"{network.simulated_time * 1e3:.2f} ms simulated")


if __name__ == "__main__":
    main()
