"""The shipped scenario library: named manifests bundled with the package.

Every ``*.json`` file in ``repro/scenario/manifests/`` is a ready-to-run
chaos scenario (its stem is its name).  :func:`run_all` is the soak
entrypoint — it runs any subset of the library and, with
``verify_determinism=True``, re-runs each manifest under the same seed and
compares audit-trail digests, turning "same seed ⇒ byte-identical
``events.jsonl``" from a promise into a checked invariant.
"""

from __future__ import annotations

from pathlib import Path

from repro.scenario.manifest import ScenarioManifest, load_manifest
from repro.scenario.runner import ScenarioResult, run_scenario
from repro.util.errors import ScenarioError

__all__ = [
    "MANIFEST_DIR",
    "scenario_names",
    "manifest_path",
    "load_scenario",
    "verify_reproducible",
    "run_all",
]

#: where the bundled manifests live
MANIFEST_DIR = Path(__file__).resolve().parent / "manifests"


def scenario_names() -> list[str]:
    """The bundled scenario names, sorted."""
    return sorted(path.stem for path in MANIFEST_DIR.glob("*.json"))


def manifest_path(name: str) -> Path:
    """Filesystem path of a bundled manifest; typed error when unknown."""
    path = MANIFEST_DIR / f"{name}.json"
    if not path.is_file():
        raise ScenarioError(
            f"no bundled scenario {name!r} (available: {scenario_names()})"
        )
    return path


def load_scenario(name: str) -> ScenarioManifest:
    """Load and validate one bundled scenario by name."""
    return load_manifest(manifest_path(name))


def verify_reproducible(
    manifest: ScenarioManifest | str, seed: int | None = None
) -> tuple[bool, str, str]:
    """Run a scenario twice under one seed; returns (identical, sha1, sha2)."""
    if isinstance(manifest, str):
        manifest = load_scenario(manifest)
    if manifest.wall:
        raise ScenarioError(
            f"scenario {manifest.name!r} runs on the wall clock; "
            "same-seed runs are not byte-reproducible by design"
        )
    first = run_scenario(manifest, seed=seed)
    second = run_scenario(manifest, seed=seed)
    return first.events_sha256 == second.events_sha256, first.events_sha256, second.events_sha256


def run_all(
    names: list[str] | None = None,
    out_root: str | Path | None = None,
    seed: int | None = None,
    verify_determinism: bool = False,
    log=None,
) -> list[ScenarioResult]:
    """Run bundled scenarios (all by default); the soak workhorse.

    With *out_root* each scenario writes its artifacts to
    ``<out_root>/<name>/``.  With ``verify_determinism=True`` every scenario
    is executed a second time and a digest mismatch marks the run failed by
    appending a synthetic failed check.  *log*, when given, is called with
    one progress line per scenario.
    """
    from repro.scenario.checks import CheckResult

    results: list[ScenarioResult] = []
    for name in names if names is not None else scenario_names():
        manifest = load_scenario(name)
        out_dir = Path(out_root) / name if out_root is not None else None
        result = run_scenario(manifest, out_dir=out_dir, seed=seed)
        # wall-clock manifests (reactor workloads on real sockets) are not
        # byte-reproducible by design; their checks carry the guarantees
        if verify_determinism and not manifest.wall:
            rerun = run_scenario(manifest, seed=seed)
            if rerun.events_sha256 != result.events_sha256:
                from dataclasses import replace

                mismatch = CheckResult(
                    "reproducible_events",
                    False,
                    f"events.jsonl digests differ across same-seed runs: "
                    f"{result.events_sha256[:12]} != {rerun.events_sha256[:12]}",
                )
                result = replace(
                    result, passed=False, checks=result.checks + (mismatch,)
                )
        results.append(result)
        if log is not None:
            verdict = "PASS" if result.passed else "FAIL"
            log(
                f"{verdict} {name}: {sum(c.passed for c in result.checks)}"
                f"/{len(result.checks)} checks, {result.n_events} events, "
                f"{result.wall_s:.2f}s"
            )
    return results
