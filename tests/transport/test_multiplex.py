"""Concurrency over shared stubs: correlation correctness under fire.

The multiplexed TCP transport shares a handful of sockets between many
in-flight requests; the correlation-id header is the only thing keeping
reply N from landing on caller M.  These tests hammer one stub (and one
raw transport) from many threads and assert every caller got *its* answer.
"""

import threading

import pytest

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import XdrMessageCodec
from repro.netsim import lan
from repro.transport.base import TransportMessage
from repro.transport.sim import SimListener, SimTransport
from repro.transport.tcp import TcpListener, TcpTransport

THREADS = 8
CALLS_PER_THREAD = 25


class Arithmetic:
    """Deterministic per-argument results so replies are attributable."""

    def add(self, a, b):
        return a + b

    def tag(self, text):
        return f"tag:{text}"


def _hammer_stub(stub):
    """Each thread makes calls whose answers encode their inputs."""
    errors: list[BaseException] = []

    def worker(worker_id: int) -> None:
        try:
            for i in range(CALLS_PER_THREAD):
                a, b = worker_id * 1000 + i, i * 7
                assert stub.add(a, b) == a + b
                assert stub.tag(f"{worker_id}/{i}") == f"tag:{worker_id}/{i}"
        except BaseException as exc:  # noqa: BLE001 — collected for the main thread
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestTcpStubConcurrency:
    @pytest.fixture
    def server(self):
        dispatcher = ObjectDispatcher()
        dispatcher.register("calc", Arithmetic())
        server = BindingServer(dispatcher)
        listener = server.expose_xdr_tcp()
        yield listener
        server.close()

    def test_threads_share_one_stub(self, server):
        stub = TransportStub(
            ("add", "tag"), "calc", XdrMessageCodec(),
            TcpTransport(f"tcp://127.0.0.1:{server.port}"), "xdr",
        )
        with stub:
            _hammer_stub(stub)

    def test_threads_share_one_stub_single_channel(self, server):
        # pool_size=1 forces every in-flight request onto ONE socket:
        # pure correlation-id demultiplexing, no pool to hide behind
        stub = TransportStub(
            ("add", "tag"), "calc", XdrMessageCodec(),
            TcpTransport(f"tcp://127.0.0.1:{server.port}", pool_size=1), "xdr",
        )
        with stub:
            _hammer_stub(stub)

    def test_serialized_mode_still_correct(self, server):
        stub = TransportStub(
            ("add", "tag"), "calc", XdrMessageCodec(),
            TcpTransport(f"tcp://127.0.0.1:{server.port}", multiplex=False), "xdr",
        )
        with stub:
            _hammer_stub(stub)

    def test_raw_transport_interleaving(self, server):
        """Distinct payload sizes per thread — framing must never mix them."""
        transport = TcpTransport(f"tcp://127.0.0.1:{server.port}", pool_size=1)
        codec = XdrMessageCodec()
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(CALLS_PER_THREAD):
                    text = str(worker_id) * (worker_id + 1) + f"-{i}"
                    payload = codec.encode_call("calc", "tag", (text,))
                    reply = transport.request(
                        TransportMessage(codec.content_type, payload), timeout=10.0
                    )
                    assert codec.decode_reply(reply.payload) == f"tag:{text}"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        transport.close()
        assert not errors, errors


class TestSimStubConcurrency:
    def test_threads_share_one_stub(self):
        net = lan(2)
        dispatcher = ObjectDispatcher()
        dispatcher.register("calc", Arithmetic())
        server = BindingServer(dispatcher)
        codec = XdrMessageCodec()
        SimListener(net, "node0", "calc-ep", server._handle)
        stub = TransportStub(
            ("add", "tag"), "calc", codec,
            SimTransport(net, "node1", "sim://node0/calc-ep"), "sim",
        )
        with stub:
            _hammer_stub(stub)
