"""Property tests on structural invariants: names, queries, state merge."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvm.state import StateEntry
from repro.util.ids import HarnessName
from repro.xmlkit import XmlElement, canonicalize, parse, to_string

name_component = st.text(
    alphabet=string.ascii_letters + string.digits + "-_.", min_size=1, max_size=8
)
name_parts = st.lists(name_component, max_size=5)


class TestHarnessNameProperties:
    @given(name_parts)
    def test_string_round_trip(self, parts):
        name = HarnessName(parts)
        assert HarnessName(str(name)) == name

    @given(name_parts, name_component)
    def test_child_parent_inverse(self, parts, component):
        name = HarnessName(parts)
        assert (name / component).parent == name

    @given(name_parts, name_component)
    def test_child_is_descendant(self, parts, component):
        name = HarnessName(parts)
        assert name.is_ancestor_of(name / component)

    @given(name_parts, name_parts)
    def test_relative_to_inverts_concatenation(self, base_parts, rest_parts):
        base = HarnessName(base_parts)
        full = HarnessName(base_parts + rest_parts)
        assert full.relative_to(base) == HarnessName(rest_parts)

    @given(name_parts)
    def test_hash_consistent_with_eq(self, parts):
        assert hash(HarnessName(parts)) == hash(HarnessName(list(parts)))


xml_name = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
xml_attr_value = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), max_size=12
)


@st.composite
def xml_trees(draw, depth=3):
    element = XmlElement(draw(xml_name))
    for key in draw(st.lists(xml_name, max_size=3, unique=True)):
        element.set(key, draw(xml_attr_value))
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            element.append(draw(xml_trees(depth=depth - 1)))
    if not element.children:
        element.text = draw(xml_attr_value)
    return element


class TestXmlProperties:
    @given(xml_trees())
    @settings(max_examples=80)
    def test_serialize_parse_preserves_structure(self, tree):
        reparsed = parse(to_string(tree))
        assert canonicalize(reparsed) == canonicalize(tree)

    @given(xml_trees())
    @settings(max_examples=50)
    def test_copy_is_structurally_equal(self, tree):
        assert tree.copy().structurally_equal(tree)

    @given(xml_trees())
    @settings(max_examples=50)
    def test_iter_count_consistent(self, tree):
        manual = 1 + sum(len(list(c.iter())) for c in tree.children)
        assert len(list(tree.iter())) == manual


entries = st.builds(
    StateEntry,
    key=st.just("k"),
    value=st.integers(),
    lamport=st.integers(min_value=0, max_value=100),
    origin=st.sampled_from(["a", "b", "c"]),
)


class TestStateMergeProperties:
    @given(entries, entries)
    def test_newer_than_is_total_for_distinct_versions(self, x, y):
        if (x.lamport, x.origin) != (y.lamport, y.origin):
            assert x.newer_than(y) != y.newer_than(x)

    @given(entries, entries, entries)
    def test_merge_order_independent(self, a, b, c):
        """Last-writer-wins merge must be associative/commutative."""

        def merge(*items):
            best = None
            for item in items:
                if item.newer_than(best):
                    best = item
            return best

        results = {
            (merge(a, b, c).lamport, merge(a, b, c).origin),
            (merge(c, b, a).lamport, merge(c, b, a).origin),
            (merge(b, a, c).lamport, merge(b, a, c).origin),
        }
        assert len(results) == 1

    @given(entries)
    def test_never_newer_than_self(self, entry):
        assert not entry.newer_than(entry)

    @given(entries)
    def test_wire_round_trip(self, entry):
        assert StateEntry.from_wire(entry.to_wire()) == entry


class TestQueryProperties:
    @given(xml_trees())
    @settings(max_examples=60)
    def test_descendant_wildcard_counts_all_elements(self, tree):
        from repro.xmlkit import XmlQuery

        root = XmlElement("root")
        root.append(tree)
        matches = XmlQuery("//*").select(root)
        assert len(matches) == len(list(root.iter()))

    @given(xml_trees())
    @settings(max_examples=60)
    def test_name_query_matches_iter_filter(self, tree):
        from repro.xmlkit import XmlQuery

        root = XmlElement("root")
        root.append(tree)
        target = tree.name.local
        expected = [e for e in root.iter() if e.name.local == target]
        assert XmlQuery(f"//{target}").select(root) == expected
