"""The Harness plugin model.

"Harness … is based on the notion of a software backplane into which
component modules are plugged in.  These components coordinate with each
other to realize the various functions required for loosely coupled
distributed computing." (Section 3.)

A plugin declares the *services it requires* and the *services it
provides*; the kernel wires them together, which is the "service-based
leveraging of functionality among plugins" that Figure 2's PVM plugin
exploits (hpvmd leans on message transport, process spawning, event
management and table lookup provided by other plugins).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.util.errors import PluginError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import HarnessKernel

__all__ = ["PluginState", "Plugin"]


class PluginState(enum.Enum):
    """Plugin lifecycle."""

    LOADED = "loaded"
    STARTED = "started"
    STOPPED = "stopped"
    UNLOADED = "unloaded"


class Plugin:
    """Base class for Harness plugins.

    Subclasses set :attr:`plugin_name`, :attr:`requires` (service names that
    must already be available in the kernel) and :attr:`provides` (service
    names this plugin contributes).  ``service(name)`` returns the provider
    object for each provided service — by default the plugin itself.
    """

    #: unique name within a kernel (defaults to the class name lowercased)
    plugin_name: str = ""
    #: services that must be present in the kernel before this plugin starts
    requires: tuple[str, ...] = ()
    #: services this plugin provides to the kernel
    provides: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.kernel: "HarnessKernel | None" = None
        self.state = PluginState.UNLOADED

    @classmethod
    def name(cls) -> str:
        return cls.plugin_name or cls.__name__.lower()

    # -- lifecycle hooks (override as needed) -----------------------------------

    def on_load(self, kernel: "HarnessKernel") -> None:
        """Called once when plugged into *kernel* (before start)."""

    def on_start(self) -> None:
        """Called when all required services are wired and the plugin starts."""

    def on_stop(self) -> None:
        """Called when the plugin stops (kernel shutdown or explicit unload)."""

    def on_unload(self) -> None:
        """Called after stop, when the plugin leaves the kernel."""

    # -- service access -------------------------------------------------------------

    def service(self, name: str) -> object:
        """Provider object for one of this plugin's ``provides`` entries."""
        if name not in self.provides:
            raise PluginError(f"plugin {self.name()!r} does not provide {name!r}")
        return self

    def use(self, service_name: str) -> object:
        """Resolve a required service through the kernel."""
        if self.kernel is None:
            raise PluginError(f"plugin {self.name()!r} is not attached to a kernel")
        return self.kernel.get_service(service_name)

    # -- internal transitions (driven by the kernel) ----------------------------------

    def _attach(self, kernel: "HarnessKernel") -> None:
        if self.state is not PluginState.UNLOADED:
            raise PluginError(f"plugin {self.name()!r} already attached")
        self.kernel = kernel
        self.state = PluginState.LOADED
        self.on_load(kernel)

    def _start(self) -> None:
        if self.state not in (PluginState.LOADED, PluginState.STOPPED):
            raise PluginError(f"cannot start plugin {self.name()!r} from {self.state}")
        self.on_start()
        self.state = PluginState.STARTED

    def _stop(self) -> None:
        if self.state is PluginState.STARTED:
            self.on_stop()
            self.state = PluginState.STOPPED

    def _detach(self) -> None:
        self._stop()
        if self.state is not PluginState.UNLOADED:
            self.on_unload()
            self.state = PluginState.UNLOADED
            self.kernel = None
