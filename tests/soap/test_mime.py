"""MIME multipart binding (SOAP with Attachments) — the third W3C binding."""

import numpy as np
import pytest

from repro.soap.mime import MimeMessageCodec
from repro.util.errors import EncodingError, SoapFaultError


@pytest.fixture
def codec():
    return MimeMessageCodec()


class TestCallRoundTrip:
    def test_mixed_arguments(self, codec, rng):
        a = rng.random((4, 6))
        data = codec.encode_call("svc#1", "solve", (a, 3, "label", b"\x00\xff", {"k": 1.5}))
        target, operation, args = codec.decode_call(data)
        assert target == "svc#1" and operation == "solve"
        assert np.array_equal(args[0], a) and args[0].shape == (4, 6)
        assert args[1:3] == [3, "label"]
        assert args[3] == b"\x00\xff"
        assert args[4] == {"k": 1.5}

    def test_no_args(self, codec):
        target, operation, args = codec.decode_call(codec.encode_call("t", "ping", ()))
        assert operation == "ping" and args == []

    def test_multiple_arrays_distinct_attachments(self, codec, rng):
        a, b = rng.random(10), rng.random((2, 5))
        _, _, args = codec.decode_call(codec.encode_call("t", "op", (a, b)))
        assert np.array_equal(args[0], a)
        assert np.array_equal(args[1], b)

    @pytest.mark.parametrize("dtype", ["float32", "int64", "uint8", "complex128"])
    def test_dtypes_preserved(self, codec, dtype):
        array = np.arange(12).astype(dtype)
        _, _, args = codec.decode_call(codec.encode_call("t", "op", (array,)))
        assert args[0].dtype == np.dtype(dtype)
        assert np.array_equal(args[0], array)

    def test_arrays_are_unencoded_on_the_wire(self, codec, rng):
        array = rng.random(50_000)
        wire = codec.encode_call("t", "op", (array,))
        # manifest + headers only; no base64 expansion
        assert len(wire) < array.nbytes * 1.01 + 2048

    def test_attachment_bytes_verbatim(self, codec, rng):
        array = np.arange(4, dtype=">f8")
        wire = codec.encode_call("t", "op", (array,))
        assert array.tobytes() in wire


class TestReplyRoundTrip:
    def test_array_result(self, codec, rng):
        array = rng.random((3, 3))
        assert np.array_equal(codec.decode_reply(codec.encode_reply(array)), array)

    def test_scalar_result(self, codec):
        assert codec.decode_reply(codec.encode_reply(42)) == 42
        assert codec.decode_reply(codec.encode_reply(None)) is None

    def test_fault(self, codec):
        with pytest.raises(SoapFaultError, match="kaput"):
            codec.decode_reply(codec.encode_reply(fault="kaput"))


class TestMalformedPayloads:
    def test_not_multipart(self, codec):
        with pytest.raises(EncodingError):
            codec.decode_call(b"<Envelope/>")

    def test_truncated_body(self, codec, rng):
        wire = codec.encode_call("t", "op", (rng.random(100),))
        with pytest.raises(EncodingError):
            codec.decode_call(wire[: len(wire) // 2])

    def test_missing_attachment_reference(self, codec):
        wire = codec.encode_call("t", "op", (np.arange(3.0),))
        corrupted = wire.replace(b"cid:part0", b"cid:ghost")
        with pytest.raises(EncodingError, match="ghost"):
            codec.decode_call(corrupted)


class TestMimeBindingEndToEnd:
    def test_container_deployment(self, rng):
        from repro.bindings import ClientContext, DynamicStubFactory
        from repro.container import LightweightContainer
        from repro.plugins.services import MatMul

        with LightweightContainer("mime-e2e", host="mimehost") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "mime"))
            assert handle.document.binding("MatMulMimeBinding").protocol == "mime"
            stub = DynamicStubFactory(ClientContext(host="client")).create(handle.document)
            assert stub.protocol == "mime"
            a = rng.random((6, 6))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()

    def test_wsdl_round_trip_with_mime_binding(self):
        from repro.plugins.services import MatMul
        from repro.tools.wsdlgen import generate_wsdl
        from repro.wsdl.io import document_from_string, document_to_string

        document = generate_wsdl(MatMul, bindings=("mime", "soap"))
        reparsed = document_from_string(document_to_string(document))
        assert reparsed == document
        assert reparsed.binding("MatMulMimeBinding").protocol == "mime"

    def test_preference_order_between_mime_and_soap(self, rng):
        from repro.bindings import ClientContext, DynamicStubFactory
        from repro.container import LightweightContainer
        from repro.plugins.services import MatMul

        with LightweightContainer("mime-pref", host="mp") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "soap", "mime"))
            factory = DynamicStubFactory(ClientContext(host="client"))
            # default order prefers mime (binary arrays) over soap
            assert factory.create(handle.document).protocol == "mime"
            assert factory.create(handle.document, prefer=("soap",)).protocol == "soap"
