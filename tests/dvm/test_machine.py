"""DistributedVirtualMachine: membership, unified namespace, stubs, status."""

import numpy as np
import pytest

from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import FullSynchronyState
from repro.netsim import lan
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import DvmError, MembershipError, ServiceNotFoundError
from repro.util.ids import HarnessName


@pytest.fixture
def dvm():
    net = lan(4)
    with DistributedVirtualMachine("testdvm", net, FullSynchronyState) as machine:
        for i in range(3):
            machine.add_node(f"node{i}")
        yield machine


class TestMembership:
    def test_add_node(self, dvm):
        assert dvm.nodes() == ["node0", "node1", "node2"]

    def test_duplicate_node_rejected(self, dvm):
        with pytest.raises(MembershipError):
            dvm.add_node("node0")

    def test_unknown_host_rejected(self, dvm):
        from repro.util.errors import TransportError

        with pytest.raises(TransportError):
            dvm.add_node("ghost")

    def test_members_seen_from_everywhere(self, dvm):
        for node in dvm.nodes():
            assert dvm.members_seen_by(node) == ["node0", "node1", "node2"]

    def test_late_joiner_sees_existing_state(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.add_node("node3")
        assert dvm.component_index("node3") == {"MatMul": "node0"}
        assert "node3" in dvm.members_seen_by("node0")

    def test_remove_node(self, dvm):
        dvm.deploy("node2", MatMul)
        dvm.remove_node("node2")
        assert dvm.nodes() == ["node0", "node1"]
        assert dvm.component_index("node0") == {}
        with pytest.raises(MembershipError):
            dvm.remove_node("node2")

    def test_member_events(self):
        net = lan(2)
        with DistributedVirtualMachine("evdvm", net, FullSynchronyState) as machine:
            topics = []
            machine.events.subscribe("dvm.member", lambda e: topics.append((e.topic, e.payload)))
            machine.add_node("node0")
            machine.add_node("node1")
            machine.remove_node("node1")
            assert ("dvm.member.joined", "node0") in topics
            assert ("dvm.member.left", "node1") in topics

    def test_protocol_factory_must_start_empty(self):
        net = lan(2)
        with pytest.raises(DvmError):
            DistributedVirtualMachine(
                "bad", net, lambda n: FullSynchronyState(n, ["node0"])
            )


class TestNamespace:
    def test_deploy_publishes_dvm_wide(self, dvm):
        dvm.deploy("node1", MatMul)
        owner, document = dvm.lookup("node2", "MatMul")
        assert owner == "node1"
        document.validate()

    def test_component_index(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.deploy("node1", CounterService)
        index = dvm.component_index("node2")
        assert index == {"MatMul": "node0", "CounterService": "node1"}

    def test_staged_publication(self, dvm):
        """§6: deploy privately in the container, validate, publish later."""
        container = dvm.node("node0").container
        container.deploy(MatMul, bindings=("local-instance", "sim"), exposure="private")
        with pytest.raises(ServiceNotFoundError):
            dvm.lookup("node1", "MatMul")
        dvm.publish("node0", "MatMul")
        owner, document = dvm.lookup("node1", "MatMul")
        assert owner == "node0"
        document.validate()

    def test_publish_unknown_component_rejected(self, dvm):
        with pytest.raises(ServiceNotFoundError):
            dvm.publish("node0", "Ghost")

    def test_undeploy_removes_from_namespace(self, dvm):
        dvm.deploy("node0", MatMul)
        dvm.undeploy("node0", "MatMul")
        with pytest.raises(ServiceNotFoundError):
            dvm.lookup("node1", "MatMul")

    def test_qualified_name(self, dvm):
        name = dvm.qualified_name("node1", "MatMul")
        assert name == HarnessName("/testdvm/node1/MatMul")

    def test_lookup_unknown(self, dvm):
        with pytest.raises(ServiceNotFoundError):
            dvm.lookup("node0", "Ghost")

    def test_status(self, dvm):
        dvm.deploy("node0", MatMul)
        status = dvm.status("node1")
        assert status["dvm"] == "testdvm"
        assert status["scheme"] == "full-synchrony"
        assert status["members"] == ["node0", "node1", "node2"]
        assert status["components"] == {"MatMul": "node0"}


class TestStubs:
    def test_co_located_stub_is_local_instance(self, dvm):
        dvm.deploy("node1", CounterService)
        stub = dvm.stub("node1", "CounterService")
        assert stub.protocol == "local-instance"
        stub.increment(2)
        assert dvm.stub("node1", "CounterService").value() == 2

    def test_remote_stub_uses_network(self, dvm, rng):
        dvm.deploy("node1", MatMul)
        stub = dvm.stub("node0", "MatMul")
        assert stub.protocol == "sim"  # fabric-charged XDR
        a = rng.random((5, 5))
        assert np.allclose(stub.multiply(a, a), a @ a)
        stub.close()

    def test_prefer_soap(self, dvm, rng):
        dvm.deploy("node1", MatMul, bindings=("local-instance", "sim", "soap"))
        stub = dvm.stub("node0", "MatMul", prefer=("soap",))
        assert stub.protocol == "soap"
        a = rng.random((3, 3))
        assert np.allclose(stub.multiply(a, a), a @ a)
        stub.close()

    def test_remote_sim_calls_charged_to_fabric(self, dvm, rng):
        dvm.deploy("node1", MatMul)
        stub = dvm.stub("node0", "MatMul")
        dvm.network.reset_stats()
        a = rng.random((8, 8))
        stub.multiply(a, a)
        # request + response, real encoded sizes (two 8x8 float64 arrays out)
        assert dvm.network.total_messages == 2
        assert dvm.network.total_bytes > 2 * a.nbytes
        stub.close()

    def test_stateful_service_shared_across_bindings(self, dvm):
        dvm.deploy("node0", CounterService)
        local = dvm.stub("node0", "CounterService")
        remote = dvm.stub("node2", "CounterService")
        local.increment(5)
        assert remote.increment(1) == 6  # same instance through the network
        remote.close()
