"""Property: all coherency protocols are observationally equivalent.

The C7 claim, hypothesis-strength: for *any* sequence of updates issued
from arbitrary member nodes, every protocol answers every subsequent read
from every node identically (last-writer-wins on the issue order, since
updates are totally ordered by the shared lamport clock).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvm.state import DecentralizedState, FullSynchronyState, NeighborhoodState
from repro.netsim import lan

N_NODES = 4
MEMBERS = [f"node{i}" for i in range(N_NODES)]

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_NODES - 1),  # origin node
        st.sampled_from(["alpha", "beta", "gamma"]),  # key
        st.integers(min_value=0, max_value=99),  # value
    ),
    max_size=12,
)


def _apply(protocol_factory, ops):
    net = lan(N_NODES)
    protocol = protocol_factory(net, list(MEMBERS))
    for origin, key, value in ops:
        protocol.update(MEMBERS[origin], key, value)
    return protocol


class TestObservationalEquivalence:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_all_protocols_agree_on_every_read(self, ops):
        protocols = [
            _apply(lambda n, m: FullSynchronyState(n, m), ops),
            _apply(lambda n, m: DecentralizedState(n, m), ops),
            _apply(lambda n, m: NeighborhoodState(n, m, radius=1), ops),
        ]
        for key in ("alpha", "beta", "gamma", "never-written"):
            views = {
                protocol.scheme: {m: protocol.get(m, key) for m in MEMBERS}
                for protocol in protocols
            }
            baseline = views.pop("full-synchrony")
            for scheme, view in views.items():
                assert view == baseline, (key, scheme, view, baseline)

    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_snapshots_agree(self, ops):
        protocols = [
            _apply(lambda n, m: FullSynchronyState(n, m), ops),
            _apply(lambda n, m: DecentralizedState(n, m), ops),
            _apply(lambda n, m: NeighborhoodState(n, m, radius=2), ops),
        ]
        snapshots = [p.snapshot(MEMBERS[-1]) for p in protocols]
        assert snapshots[0] == snapshots[1] == snapshots[2]

    @given(operations)
    @settings(max_examples=25, deadline=None)
    def test_last_writer_wins_matches_issue_order(self, ops):
        protocol = _apply(lambda n, m: FullSynchronyState(n, m), ops)
        expected: dict = {}
        for origin, key, value in ops:
            expected[key] = value
        for key, value in expected.items():
            assert protocol.get("node0", key) == value
