"""``hpvmd`` — the PVM daemon emulation plugin (Figure 2).

"The hpvmd plugin emulates the PVM daemon on each host, but leverages
process spawning, message transport, general event management, and table
lookup from other plugins — both within the same address space … as well as
in remote Harness kernels."  That is exactly the wiring here: ``hpvmd``
*requires* the services of :mod:`~repro.plugins.hmsg`,
:mod:`~repro.plugins.hproc`, :mod:`~repro.plugins.htable` and
:mod:`~repro.plugins.hevent`; it implements none of that machinery itself.

The emulated API is the classic PVM core: ``spawn``, ``send``/``recv`` with
tags, task ids, groups and barriers.  Task ids are strings ``tid:<host>:<n>``
so routing is host-extractable without a directory, while the task table
(parents, state) lives in ``htable`` as Figure 2 shows.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.core.plugin import Plugin
from repro.plugins.hevent import EventManagementPlugin
from repro.plugins.hmsg import Envelope, MessageTransportPlugin
from repro.plugins.hproc import ProcessManagementPlugin
from repro.plugins.htable import TableLookupPlugin
from repro.util.concurrent import AtomicCounter
from repro.util.errors import PluginError

__all__ = ["PvmDaemonPlugin", "PvmTaskContext", "TAG_BARRIER_ARRIVE", "TAG_BARRIER_RELEASE"]

_TASK_TABLE = "pvm-tasks"
_GROUP_TABLE = "pvm-groups"

TAG_BARRIER_ARRIVE = -101
TAG_BARRIER_RELEASE = -102


def _host_of(tid: str) -> str:
    parts = tid.split(":")
    if len(parts) != 3 or parts[0] != "tid":
        raise PluginError(f"malformed tid {tid!r}")
    return parts[1]


class PvmTaskContext:
    """The handle a PVM task uses to talk to its daemon (its `libpvm`).

    Task functions receive this as their first argument::

        def worker(pvm, n):
            data = pvm.recv(tag=1).data
            pvm.send(pvm.parent, 2, data * n)
    """

    def __init__(self, daemon: "PvmDaemonPlugin", tid: str, parent: str):
        self._daemon = daemon
        self.tid = tid
        self.parent = parent

    # -- messaging ------------------------------------------------------------

    def send(self, dst_tid: str, tag: int, data: Any) -> None:
        """Send *data* to another task, tagged."""
        self._daemon.send(dst_tid, tag, data)

    def recv(self, tag: int | None = None, timeout: float = 10.0) -> Envelope:
        """Receive the next message for this task (optionally by tag)."""
        return self._daemon._recv_for(self.tid, tag, timeout)

    def try_recv(self, tag: int | None = None) -> Envelope | None:
        return self._daemon._try_recv_for(self.tid, tag)

    def mcast(self, tids: list[str], tag: int, data: Any) -> int:
        """Multicast to an explicit tid list."""
        return self._daemon.mcast(tids, tag, data)

    def bcast(self, group: str, tag: int, data: Any) -> int:
        """Broadcast to a group, excluding this task itself."""
        return self._daemon.bcast(group, tag, data, exclude=self.tid)

    # -- task management ----------------------------------------------------------

    def spawn(self, fn: Callable, count: int = 1, where: str | None = None, args: tuple = ()) -> list[str]:
        """Spawn child tasks; they see this task as their parent."""
        return self._daemon.spawn(fn, count=count, where=where, args=args, parent=self.tid)

    # -- groups ----------------------------------------------------------------------

    def joingroup(self, group: str) -> None:
        self._daemon.joingroup(group, self.tid)

    def barrier(self, group: str, count: int, timeout: float = 10.0) -> None:
        self._daemon.barrier(group, count, self.tid, timeout=timeout)

    def gettids(self, group: str) -> list[str]:
        return self._daemon.group_members(group)


class PvmDaemonPlugin(Plugin):
    """The per-host PVM daemon built from other plugins' services."""

    plugin_name = "hpvmd"
    requires = ("message-transport", "process-management", "table-lookup", "event-management")
    provides = ("pvm",)

    #: host holding group membership tables (set after first joingroup)
    group_server: str | None = None

    def __init__(self, group_server: str | None = None) -> None:
        super().__init__()
        self._counter = AtomicCounter()
        self.group_server = group_server
        self._lock = threading.RLock()

    # -- service accessors (resolved through the backplane, Figure 2) ----------------

    @property
    def hmsg(self) -> MessageTransportPlugin:
        return self.use("message-transport")  # type: ignore[return-value]

    @property
    def hproc(self) -> ProcessManagementPlugin:
        return self.use("process-management")  # type: ignore[return-value]

    @property
    def htable(self) -> TableLookupPlugin:
        return self.use("table-lookup")  # type: ignore[return-value]

    @property
    def hevent(self) -> EventManagementPlugin:
        return self.use("event-management")  # type: ignore[return-value]

    # -- tid management ------------------------------------------------------------------

    def _new_tid(self) -> str:
        if self.kernel is None:
            raise PluginError("hpvmd is not attached")
        return f"tid:{self.kernel.host_name}:{self._counter.increment()}"

    def mytid(self) -> str:
        """A tid for the calling (non-spawned) context — the 'console' task."""
        tid = self._new_tid()
        self.hmsg.open_mailbox(f"pvm:{tid}")
        self.htable.put(_TASK_TABLE, tid, {"host": _host_of(tid), "parent": "", "state": "console"})
        self.hevent.bus.publish("pvm.task.enrolled", tid, source=_host_of(tid))
        return tid

    def context_for(self, tid: str, parent: str = "") -> PvmTaskContext:
        """A task context for an already-enrolled tid."""
        return PvmTaskContext(self, tid, parent)

    # -- spawn -------------------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable | str,
        count: int = 1,
        where: str | None = None,
        args: tuple = (),
        parent: str = "",
    ) -> list[str]:
        """Start *count* tasks running *fn(ctx, *args)*.

        ``where`` targets a specific host; remote spawns require *fn* to be
        an import path (the code is 'retrieved' via the import system).
        Returns the new tids.
        """
        if self.kernel is None:
            raise PluginError("hpvmd is not attached")
        my_host = self.kernel.host_name
        if where is not None and where != my_host:
            return self.kernel.send(where, "pvm", {
                "op": "spawn", "path": fn if isinstance(fn, str) else None,
                "count": count, "args": list(args), "parent": parent,
            })
        tids = []
        for _ in range(count):
            tid = self._new_tid()
            self.hmsg.open_mailbox(f"pvm:{tid}")
            self.htable.put(_TASK_TABLE, tid, {"host": my_host, "parent": parent, "state": "spawned"})
            context = PvmTaskContext(self, tid, parent)
            callee = fn
            if isinstance(callee, str):
                from repro.runner.box import _resolve_import_path

                callee = _resolve_import_path(callee)

            def body(context=context, callee=callee) -> Any:
                try:
                    return callee(context, *args)
                finally:
                    self.htable.put(_TASK_TABLE, context.tid, {
                        "host": my_host, "parent": parent, "state": "exited",
                    })
                    self.hevent.bus.publish("pvm.task.exited", context.tid, source=my_host)

            self.hproc.spawn(body, name=f"pvm-{tid}")
            tids.append(tid)
            self.hevent.bus.publish("pvm.task.spawned", tid, source=my_host)
        return tids

    def task_info(self, tid: str) -> dict | None:
        """The task table record (queried remotely when needed)."""
        host = _host_of(tid)
        if self.kernel is not None and host == self.kernel.host_name:
            return self.htable.get(_TASK_TABLE, tid)
        return self.htable.get_remote(host, _TASK_TABLE, tid)

    def wait_all(self, tids: list[str], timeout: float = 30.0) -> None:
        """Block until every tid has exited."""
        from repro.util.concurrent import wait_for

        def done() -> bool:
            return all(
                (self.task_info(t) or {}).get("state") == "exited" for t in tids
            )

        wait_for(done, timeout=timeout, interval=0.002)

    # -- messaging -------------------------------------------------------------------------

    def send(self, dst_tid: str, tag: int, data: Any) -> None:
        self.hmsg.send(_host_of(dst_tid), f"pvm:{dst_tid}", data, tag)

    def mcast(self, tids: list[str], tag: int, data: Any) -> int:
        """``pvm_mcast``: deliver *data* to every tid; returns the count.

        Tids are grouped by host and delivered with one ``hmsg.fanout``
        message per destination host, so broadcasting to *k* tasks on *h*
        hosts costs *h* inter-kernel messages instead of *k* — the fan-out
        amplification the C11 bench measures.
        """
        by_host: dict[str, list[str]] = {}
        for tid in tids:
            by_host.setdefault(_host_of(tid), []).append(f"pvm:{tid}")
        for host, mailboxes in by_host.items():
            self.hmsg.fanout(host, mailboxes, data, tag)
        return len(tids)

    def bcast(self, group: str, tag: int, data: Any, exclude: str = "") -> int:
        """``pvm_bcast``: multicast to a group's members (minus *exclude*,
        conventionally the sender's own tid)."""
        members = [t for t in self.group_members(group) if t != exclude]
        return self.mcast(members, tag, data)

    def _recv_for(self, tid: str, tag: int | None, timeout: float) -> Envelope:
        return self.hmsg.recv(f"pvm:{tid}", tag, timeout)

    def _try_recv_for(self, tid: str, tag: int | None) -> Envelope | None:
        return self.hmsg.try_recv(f"pvm:{tid}", tag)

    # -- groups -----------------------------------------------------------------------------

    def _group_host(self) -> str:
        if self.kernel is None:
            raise PluginError("hpvmd is not attached")
        return self.group_server or self.kernel.host_name

    def joingroup(self, group: str, tid: str) -> None:
        """Add *tid* to *group* (membership lives on the group server host)."""
        server = self._group_host()
        if self.kernel is not None and server == self.kernel.host_name:
            members = self.htable.get(_GROUP_TABLE, group) or []
            if tid not in members:
                members = members + [tid]
            self.htable.put(_GROUP_TABLE, group, members)
        else:
            members = self.htable.get_remote(server, _GROUP_TABLE, group) or []
            if tid not in members:
                members = members + [tid]
            self.htable.put_remote(server, _GROUP_TABLE, group, members)

    def group_members(self, group: str) -> list[str]:
        server = self._group_host()
        if self.kernel is not None and server == self.kernel.host_name:
            return list(self.htable.get(_GROUP_TABLE, group) or [])
        return list(self.htable.get_remote(server, _GROUP_TABLE, group) or [])

    def barrier(self, group: str, count: int, tid: str, timeout: float = 10.0) -> None:
        """Classic coordinator barrier over hmsg.

        The member with the smallest tid coordinates: others send an ARRIVE
        token to it; once ``count`` arrivals (including its own) are in, it
        releases everyone.
        """
        from repro.util.concurrent import wait_for

        wait_for(lambda: len(self.group_members(group)) >= count, timeout=timeout, interval=0.002)
        members = sorted(self.group_members(group))[:count]
        coordinator = members[0]
        if tid == coordinator:
            arrived = 1
            while arrived < count:
                self._recv_for(tid, TAG_BARRIER_ARRIVE, timeout)
                arrived += 1
            for member in members:
                if member != tid:
                    self.send(member, TAG_BARRIER_RELEASE, group)
        else:
            self.send(coordinator, TAG_BARRIER_ARRIVE, tid)
            self._recv_for(tid, TAG_BARRIER_RELEASE, timeout)

    # -- inter-kernel ---------------------------------------------------------------------------

    def handle_message(self, src_host: str, payload: dict) -> Any:
        op = payload.get("op")
        if op == "spawn":
            path = payload.get("path")
            if not path:
                raise PluginError("remote spawn requires an import path")
            return self.spawn(
                path,
                count=payload.get("count", 1),
                args=tuple(payload.get("args", ())),
                parent=payload.get("parent", ""),
            )
        raise PluginError(f"hpvmd: unknown operation {op!r}")
