"""Event-loop transport core: a selectors reactor with admission control.

The thread-per-connection servers (``socketserver.ThreadingTCPServer`` for
XDR/TCP, ``ThreadingHTTPServer`` for SOAP/HTTP) tie the number of open
sockets to the number of live threads, which caps a kernel at a few dozen
concurrent clients before thread churn and GIL convoy dominate.  HARNESS
II's DVM is meant to serve *many* clients per kernel — the TCP v2
correlation-id protocol was designed so one socket can carry thousands of
in-flight calls — so the server side here decouples the two:

* one **reactor thread** per listener multiplexes every socket through a
  ``selectors`` loop: non-blocking accept, incremental message
  reassembly (each protocol supplies a parser that exposes the *next
  buffer to fill*, keeping the zero-copy ``recv_into`` path), and
  non-blocking response writes drained from a per-connection outbox;
* a fixed **worker pool** runs decode → dispatch → encode, so slow or
  blocking service operations never stall socket handling, and socket
  count no longer adds threads;
* an **admission controller** in between decides, *before* a request is
  queued, whether the server has capacity: a global in-flight cap
  (``workers + queue_max``) and a per-principal cap (per-connection until
  the auth layer lands).  Requests over either limit are answered with an
  immediate, typed *server busy* reply built by the protocol — load is
  shed at the door instead of queueing unboundedly.

A connection slot is held until the response has been fully flushed to
the kernel, so a client that stops reading its replies exerts
backpressure on itself rather than growing the outbox without bound.

Half-written messages carry a **read deadline** (``read_deadline_s``,
env ``REPRO_SERVER_READ_DEADLINE_S``): a peer that sends half a header
and stalls — the slow-loris shape — is disconnected when the deadline
passes, mirroring the client side's ``pending_max_s`` sweep.

Everything here is protocol-agnostic; :mod:`repro.transport.tcp` and
:mod:`repro.transport.http` supply parser/job classes (see
:class:`MessageParser` and :class:`Job`) and keep their wire formats.
DESIGN.md §13 has the policy table and the shed fault contract.
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.obs import metrics as _metrics

__all__ = [
    "AdmissionController",
    "AdmissionToken",
    "Job",
    "MessageParser",
    "ReactorServer",
    "DEFAULT_QUEUE_MAX",
    "DEFAULT_PER_CONN_MAX",
    "DEFAULT_READ_DEADLINE_S",
    "DEFAULT_MAX_MESSAGE",
]


def _env_int(name: str, default: int, floor: int = 0) -> int:
    try:
        return max(floor, int(os.environ.get(name, default)))
    except ValueError:
        return default


def _env_float(name: str, default: float, floor: float = 0.0) -> float:
    try:
        return max(floor, float(os.environ.get(name, default)))
    except ValueError:
        return default


#: Requests that may wait for a worker beyond the pool's own width.  The
#: global in-flight cap is ``workers + queue_max``.
DEFAULT_QUEUE_MAX = _env_int("REPRO_SERVER_QUEUE_MAX", 1024)

#: In-flight requests one connection (= one principal, pre-auth) may hold.
DEFAULT_PER_CONN_MAX = _env_int("REPRO_SERVER_PER_CONN_MAX", 256, floor=1)

#: Budget for completing a started message before the peer is dropped.
DEFAULT_READ_DEADLINE_S = _env_float("REPRO_SERVER_READ_DEADLINE_S", 30.0)

#: Largest single message a connection may announce (64 MiB).
DEFAULT_MAX_MESSAGE = 64 * 1024 * 1024

#: Bytes read from one connection per loop pass before yielding to others.
_READ_QUANTUM = 256 * 1024

# Admission/reactor accounting (process-wide; DESIGN.md §13 names them).
_CONNS = _metrics.registry.gauge("server.reactor.conns")
_ACCEPTS = _metrics.registry.counter("server.reactor.accepts")
_INFLIGHT = _metrics.registry.gauge("server.reactor.inflight")
_QUEUE_DEPTH = _metrics.registry.gauge("server.reactor.queue_depth")
_ADMITTED = _metrics.registry.counter("server.reactor.admitted")
_SHED = _metrics.registry.counter("server.reactor.shed")
_SHED_CONN = _metrics.registry.counter("server.reactor.shed_per_conn")
_DEADLINE_CLOSES = _metrics.registry.counter("server.reactor.deadline_closes")
_LOOP_ERRORS = _metrics.registry.counter("server.reactor.loop_errors")


class AdmissionToken:
    """One admitted request's claim on server capacity.

    Released exactly once — when its response is fully flushed, when its
    connection dies first, or when the server shuts down — whichever
    happens first (``release`` is idempotent).
    """

    __slots__ = ("_controller", "_key", "_released")

    def __init__(self, controller: "AdmissionController", key: int):
        self._controller = controller
        self._key = key
        self._released = False

    def release(self) -> None:
        self._controller._release(self)


class AdmissionController:
    """Capacity gatekeeper: global in-flight cap + per-principal caps.

    ``workers + queue_max`` bounds everything admitted but not yet fully
    answered (executing, waiting for a worker, or flushing), which in turn
    bounds the worker pool's internal queue — the unbounded
    ``ThreadPoolExecutor`` queue is never reachable past this gate.
    ``per_conn_max`` keeps one principal from occupying the whole server.
    Caps are adjustable at runtime (:meth:`configure`) so operators — and
    chaos scenarios — can squeeze or widen capacity live.
    """

    def __init__(
        self,
        workers: int,
        queue_max: int | None = None,
        per_conn_max: int | None = None,
    ):
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # env knobs are re-read per construction so deployments (and tests)
        # can retune without reimporting; the module constants are defaults
        self.workers = max(1, workers)
        self.queue_max = (
            _env_int("REPRO_SERVER_QUEUE_MAX", DEFAULT_QUEUE_MAX)
            if queue_max is None else max(0, queue_max)
        )
        self.per_conn_max = (
            _env_int("REPRO_SERVER_PER_CONN_MAX", DEFAULT_PER_CONN_MAX, floor=1)
            if per_conn_max is None else max(1, per_conn_max)
        )
        self._inflight = 0
        self._per_key: dict[int, int] = {}
        self._closing = False

    @property
    def max_inflight(self) -> int:
        return self.workers + self.queue_max

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def configure(
        self, queue_max: int | None = None, per_conn_max: int | None = None
    ) -> None:
        """Adjust caps live; in-flight work is never revoked, only new
        admissions see the tightened (or widened) limits."""
        with self._lock:
            if queue_max is not None:
                self.queue_max = max(0, int(queue_max))
            if per_conn_max is not None:
                self.per_conn_max = max(1, int(per_conn_max))

    def try_admit(self, key: int) -> AdmissionToken | None:
        """Claim capacity for principal *key*; ``None`` means shed."""
        with self._lock:
            if self._closing or self._inflight >= self.max_inflight:
                _SHED.inc()
                return None
            held = self._per_key.get(key, 0)
            if held >= self.per_conn_max:
                _SHED.inc()
                _SHED_CONN.inc()
                return None
            self._inflight += 1
            self._per_key[key] = held + 1
            _ADMITTED.inc()
            _INFLIGHT.set(self._inflight)
            _QUEUE_DEPTH.set(max(0, self._inflight - self.workers))
            return AdmissionToken(self, key)

    def _release(self, token: AdmissionToken) -> None:
        with self._lock:
            if token._released:
                return
            token._released = True
            self._inflight -= 1
            held = self._per_key.get(token._key, 0) - 1
            if held <= 0:
                self._per_key.pop(token._key, None)
            else:
                self._per_key[token._key] = held
            _INFLIGHT.set(self._inflight)
            _QUEUE_DEPTH.set(max(0, self._inflight - self.workers))
            if self._inflight == 0:
                self._idle.notify_all()

    def start_closing(self) -> None:
        """Refuse all further admissions (drain mode)."""
        with self._lock:
            self._closing = True

    def wait_idle(self, timeout: float) -> bool:
        """Block until nothing is in flight (or *timeout*); True when idle."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True


class Job:
    """One fully reassembled request, ready for the worker pool.

    Protocol modules subclass this; the reactor only relies on:

    ``run(app_handler) -> buffers``
        Decode, dispatch, encode — executed on a worker thread; returns
        the response as a sequence of bytes-like buffers to write.
    ``busy_reply() -> buffers``
        The immediate typed *server busy* answer — built on the reactor
        thread when admission says shed, so it must be allocation-cheap.
    ``close_after``
        True when the connection must close once the reply is flushed
        (e.g. HTTP ``Connection: close``).
    ``wants_conn``
        True when the job needs a handle on its originating connection
        (set as ``job.conn`` before dispatch) — how subscription-style
        protocols learn where to :meth:`ReactorServer.push` frames later.
    """

    __slots__ = ()

    close_after = False
    wants_conn = False

    def run(self, app_handler):  # pragma: no cover - interface
        raise NotImplementedError

    def busy_reply(self):  # pragma: no cover - interface
        raise NotImplementedError


class MessageParser:
    """Incremental reassembly driven by the reactor's recv loop.

    The reactor asks ``next_buffer()`` for the memoryview to ``recv_into``
    next, reports how many bytes landed via ``advance(n)``, and collects
    the :class:`Job` objects that completed.  ``mid_message`` is True
    while a partially received message is buffered — the hook for the
    read-deadline sweep.
    """

    __slots__ = ()

    mid_message = False

    def next_buffer(self) -> memoryview:  # pragma: no cover - interface
        raise NotImplementedError

    def advance(self, n: int) -> list[Job]:  # pragma: no cover - interface
        raise NotImplementedError


class _Connection:
    """Reactor-side state for one accepted socket (reactor thread only)."""

    __slots__ = (
        "sock", "fd", "key", "parser", "outbox", "deadline", "interest", "closed",
        "close_when_flushed",
    )

    def __init__(self, sock: socket.socket, parser: MessageParser, key: int):
        self.sock = sock
        self.fd = sock.fileno()
        self.key = key  # admission principal id; never reused, unlike fds
        self.parser = parser
        # entries: [buffers(list of memoryview), index, token|None, close_after]
        self.outbox: deque = deque()
        self.deadline: float | None = None
        self.interest = selectors.EVENT_READ
        self.closed = False
        self.close_when_flushed = False


class ReactorServer:
    """One listening socket + one reactor thread + one worker pool.

    *parser_factory* is called per accepted connection and returns the
    protocol's :class:`MessageParser`.  *app_handler* is the binding
    server's request pipeline, invoked on worker threads only.
    """

    def __init__(
        self,
        address: tuple[str, int],
        app_handler,
        parser_factory,
        workers: int = 32,
        queue_max: int | None = None,
        per_conn_max: int | None = None,
        read_deadline_s: float | None = None,
        name: str = "reactor",
    ):
        self.app_handler = app_handler
        self._parser_factory = parser_factory
        self.admission = AdmissionController(workers, queue_max, per_conn_max)
        self.read_deadline_s = (
            _env_float("REPRO_SERVER_READ_DEADLINE_S", DEFAULT_READ_DEADLINE_S)
            if read_deadline_s is None else max(0.0, read_deadline_s)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"{name}-worker"
        )
        self._selector = selectors.DefaultSelector()
        self._listen = socket.create_server(address, backlog=1024, reuse_port=False)
        self._listen.setblocking(False)
        self.address = self._listen.getsockname()[:2]
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._conns: dict[int, _Connection] = {}
        self._next_key = 0
        #: optional callback fired (on the reactor thread) when a connection
        #: dies — subscription protocols hook consumer-death detection here.
        #: Must not block: it runs inside the event loop.
        self.on_conn_close = None
        self._completions: deque = deque()  # (conn, buffers|None, token|None, close_after)
        self._running = True
        self._accepting = True
        self._lock = threading.Lock()  # guards _running/_accepting transitions
        self._selector.register(self._listen, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._thread = threading.Thread(
            target=self._loop, name=f"{name}-loop", daemon=True
        )
        self._thread.start()

    # -- cross-thread entry points ---------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # a wakeup is already pending (or we are shutting down)

    def _complete(self, conn: _Connection, buffers, token, close_after: bool) -> None:
        """Hand a finished response to the reactor thread for writing."""
        self._completions.append((conn, buffers, token, close_after))
        self._wake()

    def push(self, conn: _Connection, buffers) -> bool:
        """Queue unsolicited *buffers* on *conn*'s outbox (server push).

        Callable from any thread; the write happens on the reactor thread
        through the same per-connection outbox as replies, so pushes and
        replies never interleave mid-frame.  Returns ``False`` when the
        connection is already closed (the frame is dropped — the caller's
        redelivery machinery owns the message, not the wire).
        """
        if conn.closed:
            return False
        self._complete(conn, buffers, None, False)
        return True

    def close(self, drain_s: float = 1.0) -> None:
        """Stop accepting, drain in-flight requests, then tear down.

        ``drain_s=0`` aborts: in-flight requests lose their connections.
        Either way every socket is closed and both threads stop.
        """
        with self._lock:
            if not self._running:
                return
            self._accepting = False
        self.admission.start_closing()
        self._wake()  # reactor deregisters the listen socket
        if drain_s > 0:
            self.admission.wait_idle(drain_s)
        with self._lock:
            self._running = False
        self._wake()
        self._thread.join(timeout=5.0)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- the loop --------------------------------------------------------------

    def _loop(self) -> None:
        next_sweep = time.monotonic() + 0.1
        try:
            while True:
                with self._lock:
                    if not self._running:
                        break
                    accepting = self._accepting
                if not accepting and self._listen.fileno() >= 0:
                    try:
                        self._selector.unregister(self._listen)
                    except KeyError:
                        pass
                    self._listen.close()
                try:
                    events = self._selector.select(timeout=0.1)
                except OSError:
                    events = []
                for key, mask in events:
                    what = key.data
                    try:
                        if what == "accept":
                            self._accept()
                        elif what == "wake":
                            self._drain_wake()
                        else:
                            if mask & selectors.EVENT_WRITE:
                                self._writable(what)
                            if mask & selectors.EVENT_READ and not what.closed:
                                self._readable(what)
                    except Exception:
                        _LOOP_ERRORS.inc()
                        if isinstance(what, _Connection):
                            self._close_conn(what)
                self._drain_completions()
                now = time.monotonic()
                if now >= next_sweep:
                    next_sweep = now + 0.1
                    self._sweep_deadlines(now)
        finally:
            self._teardown()

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        self._drain_completions()  # releases tokens of late finishers
        self._selector.close()
        for sock in (self._listen, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not a TCP socket (tests use socketpairs)
            self._next_key += 1
            conn = _Connection(sock, self._parser_factory(), self._next_key)
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            _ACCEPTS.inc()
            _CONNS.set(len(self._conns))

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _readable(self, conn: _Connection) -> None:
        budget = _READ_QUANTUM
        while budget > 0 and not conn.closed:
            try:
                view = conn.parser.next_buffer()
            except Exception:
                _LOOP_ERRORS.inc()
                self._close_conn(conn)
                return
            try:
                n = conn.sock.recv_into(view, len(view))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if n == 0:
                self._close_conn(conn)
                return
            budget -= n
            was_mid = conn.parser.mid_message
            try:
                jobs = conn.parser.advance(n)
            except Exception:
                # framing violation (oversize, corrupt): the stream can no
                # longer be trusted, so the connection dies
                _LOOP_ERRORS.inc()
                self._close_conn(conn)
                return
            for job in jobs:
                self._dispatch(conn, job)
            # read-deadline bookkeeping: a message in progress gets one
            # fixed completion budget from its first byte — progress does
            # not extend it, which is what defeats drip-feeding
            if conn.parser.mid_message:
                if not was_mid or conn.deadline is None:
                    if self.read_deadline_s > 0:
                        conn.deadline = time.monotonic() + self.read_deadline_s
            else:
                conn.deadline = None

    def _dispatch(self, conn: _Connection, job: Job) -> None:
        if getattr(job, "wants_conn", False):
            job.conn = conn
        token = self.admission.try_admit(conn.key)
        if token is None:
            self._enqueue(conn, job.busy_reply(), None, job.close_after)
            return

        def work() -> None:
            try:
                buffers = job.run(self.app_handler)
            except Exception:
                buffers = None  # protocol.run already fault-maps; belt+braces
            self._complete(conn, buffers, token, job.close_after)

        try:
            self._executor.submit(work)
        except RuntimeError:  # pool shut down mid-flight
            token.release()
            self._enqueue(conn, job.busy_reply(), None, True)

    # -- writes ----------------------------------------------------------------

    def _enqueue(self, conn: _Connection, buffers, token, close_after: bool) -> None:
        """Queue a response on *conn* and flush as much as possible now."""
        if conn.closed:
            if token is not None:
                token.release()
            return
        views = []
        for buf in buffers:
            if len(buf):
                view = memoryview(buf)
                if not view.c_contiguous:  # e.g. a reversed slice
                    view = memoryview(bytes(view))
                views.append(view)
        conn.outbox.append([views, 0, token, close_after])
        self._flush(conn)

    def _drain_completions(self) -> None:
        while True:
            try:
                conn, buffers, token, close_after = self._completions.popleft()
            except IndexError:
                return
            if conn.closed or buffers is None:
                if token is not None:
                    token.release()
                continue
            self._enqueue(conn, buffers, token, close_after)

    def _writable(self, conn: _Connection) -> None:
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.outbox:
            entry = conn.outbox[0]
            views, index, token, close_after = entry
            progressed = False
            while index < len(views):
                view = views[index]
                try:
                    sent = conn.sock.send(view)
                except (BlockingIOError, InterruptedError):
                    entry[1] = index
                    self._want_write(conn, True)
                    return
                except OSError:
                    self._close_conn(conn)
                    return
                progressed = True
                if sent < len(view):
                    views[index] = view[sent:]
                    entry[1] = index
                    self._want_write(conn, True)
                    return
                index += 1
            # entry fully on the wire: the request's capacity claim ends here
            conn.outbox.popleft()
            if token is not None:
                token.release()
            if close_after:
                self._close_conn(conn)
                return
            if not progressed:  # empty response (defensive)
                continue
        self._want_write(conn, False)
        if conn.close_when_flushed:
            self._close_conn(conn)

    def _want_write(self, conn: _Connection, want: bool) -> None:
        interest = selectors.EVENT_READ | (selectors.EVENT_WRITE if want else 0)
        if interest != conn.interest and not conn.closed:
            conn.interest = interest
            try:
                self._selector.modify(conn.sock, interest, conn)
            except (KeyError, ValueError, OSError):
                pass

    # -- lifecycle -------------------------------------------------------------

    def _sweep_deadlines(self, now: float) -> None:
        expired = [
            conn for conn in self._conns.values()
            if conn.deadline is not None and conn.deadline <= now
        ]
        for conn in expired:
            _DEADLINE_CLOSES.inc()
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.pop(conn.fd, None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        # responses that never made the wire still free their capacity
        while conn.outbox:
            _views, _index, token, _close = conn.outbox.popleft()
            if token is not None:
                token.release()
        _CONNS.set(len(self._conns))
        callback = self.on_conn_close
        if callback is not None:
            try:
                callback(conn)
            except Exception:
                _LOOP_ERRORS.inc()
