"""End-to-end scenario runs: timeline, audit trail, artifacts, determinism."""

import json

import pytest

from repro.scenario.events import EventLog, scrub
from repro.scenario.manifest import parse_manifest
from repro.scenario.runner import run_scenario
from repro.util.clock import VirtualClock


def tiny_manifest(**overrides) -> dict:
    data = {
        "name": "tiny",
        "seed": 5,
        "duration_s": 3.0,
        "tick_s": 0.5,
        "topology": {"kind": "lan", "hosts": 3},
        "services": [
            {
                "name": "counter",
                "type": "repro.plugins.services:CounterService",
                "node": "node2",
                "restartable": True,
            }
        ],
        "self_healing": {"observer": "node0", "suspect_after": 1, "evict_after": 2},
        "workload": {
            "service": "counter",
            "from_nodes": ["node1"],
            "calls_per_tick": 1,
            "resilient": True,
            "ops": [{"op": "increment", "args": [1], "weight": 1}],
        },
        "faults": [{"at": 1.0, "action": "kill", "node": "node2"}],
        "checks": [
            {"check": "no_lost_calls"},
            {"check": "typed_faults_only"},
            {"check": "event_count", "topic": "recovery.failover", "min": 1},
            {"check": "final_call", "op": "value", "expect_min": 1},
        ],
    }
    data.update(overrides)
    return data


class TestRun:
    def test_kill_triggers_failover_and_passes(self):
        result = run_scenario(parse_manifest(tiny_manifest()))
        assert result.passed, [c.detail for c in result.checks if not c.passed]
        assert result.n_events > 10
        assert "node2" not in result.final_members

    def test_trail_brackets_the_run(self):
        # reach inside via artifacts: first line is scenario.start, last is
        # scenario.end, and the injected fault appears before its eviction
        import tempfile

        with tempfile.TemporaryDirectory() as out:
            run_scenario(parse_manifest(tiny_manifest()), out_dir=out)
            lines = [
                json.loads(line)
                for line in (open(f"{out}/events.jsonl", encoding="utf-8"))
            ]
        topics = [line["topic"] for line in lines]
        # construction events (joins, deploys) precede scenario.start by
        # design — the log attaches before the world is built
        assert lines[0]["topic"].startswith("dvm.")
        assert "scenario.start" in topics
        assert lines[-1]["topic"] == "scenario.end"
        assert topics.index("scenario.start") < topics.index("scenario.fault")
        assert topics.index("scenario.fault") < topics.index("dvm.member.dead")
        # timestamps are monotone simulated seconds
        stamps = [line["t"] for line in lines]
        assert stamps == sorted(stamps)

    def test_artifacts_written(self, tmp_path):
        result = run_scenario(parse_manifest(tiny_manifest()), out_dir=tmp_path)
        saved = json.loads((tmp_path / "result.json").read_text())
        assert saved["name"] == "tiny"
        assert saved["events_sha256"] == result.events_sha256
        assert saved["passed"] is True
        assert (tmp_path / "events.jsonl").stat().st_size > 0

    def test_same_seed_byte_identical(self, tmp_path):
        manifest = parse_manifest(tiny_manifest())
        first = run_scenario(manifest, out_dir=tmp_path / "a")
        second = run_scenario(manifest, out_dir=tmp_path / "b")
        assert first.events_sha256 == second.events_sha256
        assert (tmp_path / "a" / "events.jsonl").read_bytes() == (
            tmp_path / "b" / "events.jsonl"
        ).read_bytes()

    def test_different_seed_diverges(self):
        manifest = parse_manifest(tiny_manifest())
        first = run_scenario(manifest)
        second = run_scenario(manifest, seed=1234)
        assert second.seed == 1234
        assert first.events_sha256 != second.events_sha256

    def test_failing_check_fails_the_run(self):
        data = tiny_manifest(
            checks=[{"check": "min_success_rate", "ratio": 1.0}]
        )
        result = run_scenario(parse_manifest(data))
        assert not result.passed  # the kill makes some calls fail
        assert result.checks[0].check == "min_success_rate"

    def test_manifest_path_accepted(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(tiny_manifest()))
        assert run_scenario(path).name == "tiny"


class TestScrub:
    def test_volatile_keys_dropped(self):
        cleaned = scrub({"node": "n1", "instance_id": "c-17", "trace_id": "x"})
        assert cleaned == {"node": "n1"}

    def test_instance_tags_normalized_in_strings(self):
        assert scrub("stub for counter#c-17 on node1") == "stub for counter#c on node1"

    def test_nested_structures(self):
        cleaned = scrub({"a": [{"span_id": 1, "keep": "#x-9"}], "b": (1, 2)})
        assert cleaned == {"a": [{"keep": "#x"}], "b": [1, 2]}

    def test_bytes_reduced_to_length(self):
        assert scrub(b"\x00" * 40) == "<40 bytes>"

    def test_objects_reduced_to_name(self):
        class Thing:
            name = "steady"

        assert scrub(Thing()) == "<Thing steady>"


class TestEventLog:
    def test_prefix_filtering(self):
        log = EventLog(VirtualClock())
        log.record("dvm.member.dead", "n1")
        log.record("dvm.membership", "x")
        log.record("recovery.failover", {})
        assert len(log.records("dvm.member")) == 1  # exact-prefix, dot-aware
        assert len(log.records()) == 3

    def test_sha_changes_with_content(self):
        a, b = EventLog(VirtualClock()), EventLog(VirtualClock())
        a.record("t", 1)
        b.record("t", 2)
        assert a.sha256() != b.sha256()
