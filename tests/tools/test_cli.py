"""The command-line toolkit front end."""

import subprocess
import sys

import pytest

from repro.tools.__main__ import main
from repro.wsdl.io import document_from_string


class TestWsdlgenCommand:
    def test_emits_valid_wsdl(self, capsys):
        assert main(["wsdlgen", "repro.plugins.services:WSTime"]) == 0
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert document.name == "WSTime"
        assert document.binding("WSTimeSoapBinding")

    def test_binding_selection(self, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul", "--bindings", "xdr"])
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert [b.name for b in document.bindings] == ["MatMulXdrBinding"]

    def test_custom_name_and_namespace(self, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul",
              "--name", "FastMM", "--namespace", "urn:custom"])
        out = capsys.readouterr().out
        document = document_from_string(out)
        assert document.name == "FastMM"
        assert document.target_namespace == "urn:custom"


class TestServicegenCommand:
    def test_emits_compilable_stub(self, capsys):
        assert main(["servicegen", "repro.plugins.services:WSTime",
                     "--class-name", "TimeClient"]) == 0
        out = capsys.readouterr().out
        compile(out, "<cli-stub>", "exec")
        assert "class TimeClient:" in out


class TestQueryCommand:
    def test_query_over_file(self, tmp_path, capsys):
        main(["wsdlgen", "repro.plugins.services:MatMul"])
        wsdl_text = capsys.readouterr().out
        path = tmp_path / "matmul.wsdl"
        path.write_text(wsdl_text)
        assert main(["query", str(path), "//portType/@name"]) == 0
        assert capsys.readouterr().out.strip() == "MatMulPortType"


class TestScenarioCommand:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "partition-heal" in out and "saturation-degradation" in out

    def test_run_one_with_artifacts(self, tmp_path, capsys):
        assert main(
            ["scenario", "run", "partition-heal", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "partition-heal: passed" in out
        assert (tmp_path / "partition-heal" / "events.jsonl").is_file()
        assert (tmp_path / "partition-heal" / "result.json").is_file()

    def test_run_multiple_names(self, capsys):
        assert main(["scenario", "run", "slow-consumer", "rolling-restart"]) == 0
        out = capsys.readouterr().out
        assert "slow-consumer: passed" in out
        assert "rolling-restart: passed" in out

    def test_seed_override_reported(self, capsys):
        assert main(
            ["scenario", "run", "partition-heal", "--seed", "31337"]
        ) == 0
        assert "seed 31337" in capsys.readouterr().out

    def test_failing_check_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        # a seed the manifests were not tuned for can legitimately fail a
        # check; instead force failure deterministically through a manifest
        # whose expectation is impossible
        import json

        from repro.scenario import library

        data = json.loads(library.manifest_path("partition-heal").read_text())
        data["checks"] = [{"check": "event_count", "topic": "never.seen", "min": 1}]
        bad = tmp_path / "manifests" / "impossible.json"
        bad.parent.mkdir()
        bad.write_text(json.dumps(data))
        monkeypatch.setattr(library, "MANIFEST_DIR", bad.parent)
        assert main(["scenario", "run", "impossible"]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestSubprocessInvocation:
    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "wsdlgen",
             "repro.plugins.services:WSTime"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "WSTimePortType" in result.stdout
