"""Concurrency stress: the kernel, containers and DVM under parallel load.

Harness kernels are concurrent by design (plugins, listeners, DVM event
distribution all share threads); these tests hammer the shared structures
from many threads and assert nothing tears.
"""

import threading

import numpy as np
import pytest

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins.services import CounterService, MatMul
from repro.util.concurrent import run_all


class TestContainerConcurrency:
    def test_parallel_deploys_unique_names(self):
        with LightweightContainer("stress1", host="s1") as container:
            def deploy(i: int):
                return container.deploy(
                    CounterService, name=f"svc{i}", bindings=("local-instance",)
                )

            handles = run_all([lambda i=i: deploy(i) for i in range(24)])
            names = {h.name for h in handles}
            assert len(names) == 24
            assert len(container.components()) == 24

    def test_parallel_calls_one_stateful_instance(self):
        with LightweightContainer("stress2", host="s2") as container:
            container.deploy(CounterService)
            stub = container.lookup("CounterService")

            def hammer():
                for _ in range(200):
                    stub.increment(1)

            run_all([hammer for _ in range(8)])
            # CounterService has no internal lock; increments ride the GIL's
            # atomic int ops through a single bytecode region — but the
            # local-instance binding guarantees it's ONE instance
            assert stub.value() <= 1600
            assert stub.value() > 0

    def test_parallel_xdr_clients(self, rng):
        with LightweightContainer("stress3", host="s3") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
            a = rng.random((8, 8))
            expected = a @ a

            def client(n: int):
                factory = DynamicStubFactory(ClientContext(host=f"client{n}"))
                stub = factory.create(handle.document, prefer=("xdr",))
                try:
                    for _ in range(25):
                        assert np.allclose(stub.multiply(a, a), expected)
                finally:
                    stub.close()

            run_all([lambda n=n: client(n) for n in range(6)])

    def test_parallel_registry_queries_during_deploys(self):
        with LightweightContainer("stress4", host="s4") as container:
            stop = threading.Event()
            errors: list[str] = []

            def querier():
                while not stop.is_set():
                    try:
                        container.registry.find("//portType")
                    except Exception as exc:
                        errors.append(str(exc))
                        return

            threads = [threading.Thread(target=querier, daemon=True) for _ in range(4)]
            for t in threads:
                t.start()
            for i in range(20):
                container.deploy(CounterService, name=f"c{i}", bindings=("local-instance",))
            stop.set()
            for t in threads:
                t.join(timeout=5)
            assert not errors


class TestDvmConcurrency:
    def test_parallel_deploys_across_nodes(self):
        net = lan(4)
        with HarnessDvm("stress-dvm", net) as harness:
            harness.add_nodes("node0", "node1", "node2", "node3")

            def deploy(i: int):
                harness.deploy(
                    f"node{i % 4}", CounterService, name=f"svc{i}",
                    bindings=("local-instance",),
                )

            run_all([lambda i=i: deploy(i) for i in range(16)])
            index = harness.dvm.component_index("node0")
            assert len(index) == 16

    def test_parallel_lookups_during_membership_change(self):
        net = lan(6)
        with HarnessDvm("stress-dvm2", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node1", CounterService)
            errors: list[str] = []
            stop = threading.Event()

            def looker():
                while not stop.is_set():
                    try:
                        owner, _ = harness.lookup("node0", "CounterService")
                        assert owner == "node1"
                    except Exception as exc:
                        errors.append(f"{type(exc).__name__}: {exc}")
                        return

            threads = [threading.Thread(target=looker, daemon=True) for _ in range(3)]
            for t in threads:
                t.start()
            for name in ("node3", "node4", "node5"):
                harness.add_node(name)
            stop.set()
            for t in threads:
                t.join(timeout=5)
            assert not errors

    def test_kernel_message_storm(self):
        net = lan(2)
        with HarnessDvm("storm", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import PingPlugin

            harness.load_plugin_everywhere(PingPlugin)
            ping = harness.kernel("node0").get_service("ping")

            def storm(n: int):
                for i in range(100):
                    assert ping.ping("node1", n * 1000 + i) == n * 1000 + i

            run_all([lambda n=n: storm(n) for n in range(6)])
