"""Epidemic anti-entropy coherency: the DVM control plane at 10k nodes.

§6 scopes the coherency spectrum from full synchrony to complete
decentralization; this module adds the scheme that makes the decentralized
end *converge* at scale.  :class:`GossipState` keeps writes local (like
:class:`~repro.dvm.state.DecentralizedState`) and reconciles replicas with
push-pull anti-entropy: every round each member contacts ``fanout`` random
peers, the pair exchange compact **version digests** first and only then
the entries one side is missing — O(n·fanout) messages per round and
O(log n) rounds to converge, versus the O(n) messages *per write* full
synchrony pays.

Digests are per-origin high-water marks: origin names are interned to
small integers and a digest is one int64 ndarray — the sorted origin ids
followed by the highest lamport incorporated per origin — riding the
zero-copy XDR ndarray path as a single opaque blob.  Because every entry carries a ``(lamport, origin)`` version drawn
from one atomic clock and merges last-writer-wins (commutative, idempotent,
convergent — property-tested), "all lamports of origin o up to h" is an
exact summary of what a replica holds, and the delta for a peer is
"every live entry of o above your floor".  Floors only advance on full
digest exchanges (which transfer the complete range); opportunistic
single-entry pushes merge the entry but leave the floor alone, so a floor
never overstates what a replica has seen.

Convergence detection is O(1): each replica tracks the sum of its floors,
the protocol tracks the global per-origin ceiling, and the fleet has
converged exactly when ``sum(replica totals) == n_members * sum(ceilings)``
(floors are monotone and bounded by the ceilings, so sum equality implies
element-wise equality).  :meth:`GossipState.converged` costs two integer
compares at any scale.

:class:`NeighborhoodGossipState` layers eager ring-neighbour pushes on top
— the mesh regime: writes reach the neighbourhood in the same tick and the
epidemic carries them the rest of the way.
"""

from __future__ import annotations

import random
import threading

import numpy as np

from repro.dvm.state import (
    _CT,
    _ENDPOINT,
    DvmStateProtocol,
    StateEntry,
    _StateNode,
    _UNREACHABLE,
)
from repro.encoding.xdr import pack_value, unpack_value
from repro.netsim.fabric import MessageDroppedError, VirtualNetwork
from repro.obs import metrics as _metrics
from repro.transport.base import TransportMessage
from repro.util.errors import CoherencyError, DvmError

__all__ = ["GossipState", "NeighborhoodGossipState"]

_ROUNDS = _metrics.registry.counter("dvm.gossip.rounds")
_EXCHANGES = _metrics.registry.counter("dvm.gossip.exchanges")
_DELTAS = _metrics.registry.counter("dvm.gossip.deltas_applied")
_UNREACHED = _metrics.registry.counter("dvm.gossip.unreachable")
_CONVERGED = _metrics.registry.counter("dvm.gossip.convergences")


class _GossipView:
    """One replica's anti-entropy bookkeeping, parallel to its store.

    ``versions`` are the floors (origin id → highest lamport fully
    incorporated), ``by_origin`` indexes the *live* entries for delta
    collection (superseded entries drop out — their effect survives in the
    superseding entry), ``total`` caches ``sum(versions.values())`` for the
    O(1) convergence check, and the packed digest arrays are cached until
    ``stamp`` moves.
    """

    __slots__ = (
        "versions",
        "by_origin",
        "total",
        "stamp",
        "digest_cache",
        "sync_cache",
        "dump_cache",
        "reply_cache",
        "push_cache",
    )

    def __init__(self) -> None:
        self.versions: dict[int, int] = {}
        self.by_origin: dict[int, dict[str, StateEntry]] = {}
        self.total = 0
        self.stamp = 0
        self.digest_cache: tuple[int, np.ndarray] | None = None
        self.sync_cache: tuple[int, bytes] | None = None
        # full-dump caches for empty-floored peers (the dominant exchange
        # shape while an epidemic is spreading): the columnar batch, the
        # packed sync reply carrying it, and the packed push carrying it
        self.dump_cache: tuple[int, dict | None] | None = None
        self.reply_cache: tuple[int, bytes] | None = None
        self.push_cache: tuple[int, tuple[bytes, int] | None] | None = None


# Two replicas with equal digests build byte-identical sync requests (the
# digest is canonical and the payload is packed by one shared helper), so
# "nothing to exchange" is detectable by comparing raw bytes — the converged
# steady state costs zero codec work per probe.  The reply for that case is
# likewise packed exactly once.
_SYNC_SAME = pack_value({"same": True})


class _GossipNode(_StateNode):
    """A state node that additionally serves digest-sync and delta pushes."""

    def _serve(self, message):
        protocol: GossipState = self._protocol  # type: ignore[assignment]
        if protocol._sync_same_fast(self.host_name, message.payload):
            return TransportMessage(message.content_type, _SYNC_SAME)
        request = unpack_value(message.payload)
        kind = request["kind"]
        if kind == "sync":
            raw = protocol._answer_sync_packed(self.host_name, request.get("d"))
            return TransportMessage(message.content_type, raw)
        if kind == "deltas":
            applied = protocol._apply_deltas(
                self.host_name, request.get("deltas"), request.get("d")
            )
            return TransportMessage(message.content_type, pack_value({"applied": applied}))
        return super()._serve(message)


def _floors(digest) -> dict[int, int]:
    """Decode a wire digest (ids ++ highs, one int64 array) into floors."""
    if digest is None or len(digest) == 0:
        return {}
    flat = np.asarray(digest).tolist()
    half = len(flat) // 2
    return dict(zip(flat[:half], flat[half:]))


class GossipState(DvmStateProtocol):
    """Decentralized writes reconciled by push-pull epidemic anti-entropy.

    Tunables: ``fanout`` peers contacted per member per round (higher =
    fewer rounds, more messages), ``interval_s`` the wall-clock round pacing
    for :meth:`start`, ``pull_on_miss`` bounds a local read miss to
    ``fanout`` random peers instead of flooding the DVM.  Peer choice is
    seeded — same seed, same epidemic.

    The scheme's cost shape: a *write* is free (local apply); a *round* is
    ``O(members × fanout)`` messages whose payloads shrink to bare digests
    once replicas agree; convergence takes ``O(log members)`` rounds with
    high probability.
    """

    scheme = "gossip"
    node_class = _GossipNode

    def __init__(
        self,
        network: VirtualNetwork,
        members: list[str] | None = None,
        fanout: int = 2,
        interval_s: float = 0.25,
        seed: int = 0,
        pull_on_miss: bool = True,
        send_retries: int = 0,
    ):
        if fanout < 1:
            raise DvmError("gossip fanout must be >= 1")
        self._views: dict[str, _GossipView] = {}
        super().__init__(network, members, send_retries=send_retries)
        self.fanout = fanout
        self.interval_s = interval_s
        self.pull_on_miss = pull_on_miss
        self._rng = random.Random(seed)
        # origin interning: wire digests/deltas carry small ints, not names.
        # (A deployment would piggyback new intern bindings on the exchange;
        # the in-process table stands in for that and is charged nothing.)
        self._origin_ids: dict[str, int] = {}
        self._origin_names: list[str] = []
        self._origin_max: list[int] = []
        self._origin_total = 0
        self._sum_totals = 0
        self._totals_lock = threading.Lock()
        # entry interning: one StateEntry object per (origin, lamport) no
        # matter how many replicas absorb it — at 10k nodes the alternative
        # is millions of identical frozen dataclasses
        self._entry_cache: dict[tuple[int, int], StateEntry] = {}
        self._rounds = 0
        self._was_converged = False
        self._bus = None
        self._bus_source = ""
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        for name in self.members:
            self._views[name] = _GossipView()

    # -- the uniform interface ---------------------------------------------------

    def update(self, origin: str, key: str, value) -> StateEntry:
        node = self._node(origin)
        view = self._views[origin]
        entry = self._stamp(origin, key, value)
        oid = self._intern(origin)
        self._entry_cache[(oid, entry.lamport)] = entry
        with node.lock:
            self._absorb_locked(node, view, entry, oid)
            self._grant_locked(view, oid, entry.lamport)
        with self._totals_lock:
            ceiling = self._origin_max[oid]
            if entry.lamport > ceiling:
                self._origin_total += entry.lamport - ceiling
                self._origin_max[oid] = entry.lamport
        self._was_converged = False
        return entry

    def get(self, node: str, key: str):
        best = self._node(node).get(key)
        if best is None and self.pull_on_miss:
            best = self._pull_miss(node, key)
        return best.value if best else None

    def _pull_miss(self, node: str, key: str) -> StateEntry | None:
        """A bounded read repair: ask ``fanout`` distinct peers, absorb the best."""
        candidates = [m for m in self.members if m != node]
        if not candidates:
            return None
        best: StateEntry | None = None
        # without replacement: at small n the repair degenerates to asking
        # everyone, so a freshly published record is always found
        for peer in self._rng.sample(candidates, min(self.fanout, len(candidates))):
            try:
                remote = self._remote_get(node, peer, key)
            except _UNREACHABLE:
                continue
            if remote is not None and remote.newer_than(best):
                best = remote
        if best is not None:
            local = self.nodes[node]
            with local.lock:
                self._absorb_locked(
                    local, self._views[node], best, self._intern(best.origin)
                )
        return best

    def snapshot(self, node: str, prefix: str = "") -> dict:
        # eventual by design: the local replica's view, no flood
        return {
            k: e.value
            for k, e in self._node(node).snapshot().items()
            if k.startswith(prefix)
        }

    # -- membership -----------------------------------------------------------------

    def _on_member_added(self, name: str, existing: list[str]) -> None:
        self._views[name] = _GossipView()
        # seed the newcomer with one full anti-entropy exchange; the
        # epidemic fills any gap if every candidate is unreachable
        for source in existing:
            try:
                self._exchange(name, source)
                return
            except _UNREACHABLE:
                continue

    def remove_member(self, name: str) -> None:
        super().remove_member(name)
        view = self._views.pop(name, None)
        if view is not None and view.total:
            with self._totals_lock:
                self._sum_totals -= view.total

    # -- digest bookkeeping ----------------------------------------------------------

    def _intern(self, origin: str) -> int:
        oid = self._origin_ids.get(origin)
        if oid is None:
            with self._totals_lock:
                oid = self._origin_ids.get(origin)
                if oid is None:
                    oid = len(self._origin_names)
                    self._origin_names.append(origin)
                    self._origin_max.append(0)
                    self._origin_ids[origin] = oid
        return oid

    def _absorb_locked(
        self, node: _StateNode, view: _GossipView, entry: StateEntry, oid: int
    ) -> bool:
        """LWW-merge one entry into a replica; caller holds ``node.lock``."""
        store = node.store
        previous = store.get(entry.key)
        if not entry.newer_than(previous):
            return False
        store[entry.key] = entry
        if previous is not None:
            previous_oid = self._intern(previous.origin)
            if previous_oid != oid:
                bucket = view.by_origin.get(previous_oid)
                if bucket is not None:
                    bucket.pop(entry.key, None)
        bucket = view.by_origin.get(oid)
        if bucket is None:
            bucket = view.by_origin[oid] = {}
        bucket[entry.key] = entry
        return True

    def _grant_locked(self, view: _GossipView, oid: int, floor: int) -> None:
        """Advance a replica's floor after a *complete* range transfer."""
        old = view.versions.get(oid, 0)
        if floor <= old:
            return
        view.versions[oid] = floor
        view.stamp += 1
        view.digest_cache = None
        delta = floor - old
        view.total += delta
        with self._totals_lock:
            self._sum_totals += delta

    def _digest_locked(self, view: _GossipView) -> np.ndarray:
        cached = view.digest_cache
        if cached is not None and cached[0] == view.stamp:
            return cached[1]
        count = len(view.versions)
        # canonical (sorted by origin id) so two identical replicas produce
        # byte-identical digests — equality is then one vectorized compare.
        # One flat array (ids then highs) = one codec round-trip on the wire.
        items = sorted(view.versions.items())
        digest = np.empty(2 * count, dtype=np.int64)
        digest[:count] = [oid for oid, _ in items]
        digest[count:] = [high for _, high in items]
        view.digest_cache = (view.stamp, digest)
        return digest

    def _collect_locked(
        self, view: _GossipView, floors: dict[int, int]
    ) -> dict | None:
        """Live entries the peer's floors say it is missing, columnar.

        Keys travel as one ``\\x1e``-joined string (one opaque, not one tag
        per key), lamports and origin ids as int64 ndarrays on the zero-copy
        XDR path — per-entry tag overhead is paid only for the value column,
        and even that collapses to a single ndarray when values are
        homogeneous numerics.  ``None`` when the peer is already caught up
        (the wire then carries one VOID tag).
        """
        full = not floors
        if full:
            # "peer has nothing" dominates while an epidemic spreads; the
            # full dump only changes when the stamp moves, so cache it
            cached = view.dump_cache
            if cached is not None and cached[0] == view.stamp:
                return cached[1]
        keys: list[str] = []
        values: list = []
        lamports: list[int] = []
        oids: list[int] = []
        versions = view.versions
        for oid, bucket in view.by_origin.items():
            floor = floors.get(oid, 0)
            if versions.get(oid, 0) <= floor:
                continue
            for key, entry in bucket.items():
                if entry.lamport > floor:
                    keys.append(key)
                    values.append(entry.value)
                    lamports.append(entry.lamport)
                    oids.append(oid)
        if not keys:
            batch = None
        else:
            batch = {
                "k": "\x1e".join(keys),
                "v": values,
                "l": np.asarray(lamports, dtype=np.int64),
                "o": np.asarray(oids, dtype=np.int64),
            }
        if full:
            view.dump_cache = (view.stamp, batch)
        return batch

    # -- the exchange ----------------------------------------------------------------

    def _sync_payload_locked(self, view: _GossipView) -> bytes:
        """The packed sync request for a replica, cached until its stamp moves."""
        cached = view.sync_cache
        if cached is not None and cached[0] == view.stamp:
            return cached[1]
        payload = pack_value({"kind": "sync", "d": self._digest_locked(view)})
        view.sync_cache = (view.stamp, payload)
        return payload

    def _sync_same_fast(self, name: str, payload) -> bool:
        """True when an incoming sync request matches this replica byte-for-byte."""
        view = self._views.get(name)
        node = self.nodes.get(name)
        if view is None or node is None:
            return False
        with node.lock:
            return payload == self._sync_payload_locked(view)

    def _request_raw(self, src: str, dst: str, payload: bytes):
        """``_send`` without the codec: pre-packed bytes out, raw reply back."""
        message = TransportMessage(_CT, payload)
        attempts = self.send_retries + 1
        for attempt in range(attempts):
            try:
                return self.network.request(src, dst, _ENDPOINT, message)
            except MessageDroppedError:
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _answer_sync_packed(self, name: str, peer_digest) -> bytes:
        """Packed sync reply; the empty-peer-digest answer is cached per stamp.

        An ignorant peer gets the full dump — the same bytes for every such
        peer until this replica's stamp moves, so pack once and reuse.
        """
        if peer_digest is None or len(peer_digest) == 0:
            view = self._views.get(name)
            node = self.nodes.get(name)
            if view is not None and node is not None:
                with node.lock:
                    cached = view.reply_cache
                    if cached is not None and cached[0] == view.stamp:
                        return cached[1]
                    payload = pack_value(
                        {
                            "deltas": self._collect_locked(view, {}),
                            "d": self._digest_locked(view),
                        }
                    )
                    view.reply_cache = (view.stamp, payload)
                    return payload
        return pack_value(self._answer_sync(name, peer_digest))

    def _push_payload_locked(self, view: _GossipView) -> tuple[bytes, int] | None:
        """Packed full-dump push for an empty-floored peer, cached per stamp."""
        cached = view.push_cache
        if cached is not None and cached[0] == view.stamp:
            return cached[1]
        batch = self._collect_locked(view, {})
        if batch is None:
            result = None
        else:
            payload = pack_value(
                {
                    "kind": "deltas",
                    "deltas": batch,
                    "d": self._digest_locked(view),
                }
            )
            result = (payload, int(len(batch["l"])))
        view.push_cache = (view.stamp, result)
        return result

    def _answer_sync(self, name: str, peer_digest) -> dict:
        """Server side of push-pull: my missing-for-you deltas + my digest."""
        view = self._views.get(name)
        node = self.nodes.get(name)
        if view is None or node is None:
            # an evicted node's endpoint stays bound; answer as an empty
            # replica so a racing peer learns nothing rather than faulting
            return {"deltas": None, "d": np.empty(0, dtype=np.int64)}
        with node.lock:
            digest = self._digest_locked(view)
            # identical digests (canonical order) = nothing to exchange:
            # one vectorized compare replaces the floors/collect machinery,
            # which is what keeps converged 10k-node rounds cheap
            if peer_digest is not None and np.array_equal(digest, peer_digest):
                return {"same": True}
            deltas = self._collect_locked(view, _floors(peer_digest))
        return {"deltas": deltas, "d": digest}

    def _apply_deltas(self, name: str, batch, grant_digest) -> int:
        """Merge a columnar delta batch; floors advance only with a digest."""
        view = self._views.get(name)
        node = self.nodes.get(name)
        if view is None or node is None:
            return 0  # evicted mid-flight; drop the batch
        names = self._origin_names
        cache = self._entry_cache
        versions = view.versions
        applied = 0
        with node.lock:
            if batch:
                keys = batch["k"].split("\x1e")
                values = batch["v"]
                if isinstance(values, np.ndarray):
                    # a homogeneous-numeric value column packs as an ndarray;
                    # restore Python scalars so stored values keep their type
                    values = values.tolist()
                lamports = np.asarray(batch["l"]).tolist()
                oids = np.asarray(batch["o"]).tolist()
                store = node.store
                by_origin = view.by_origin
                for key, value, lamport, oid in zip(keys, values, lamports, oids):
                    if lamport <= versions.get(oid, 0):
                        # the floor already covers this version: the entry (or
                        # its superseder) is in the store — skip the merge
                        continue
                    entry = cache.get((oid, lamport))
                    if entry is None:
                        entry = StateEntry(key, value, lamport, names[oid])
                        cache[(oid, lamport)] = entry
                    if key not in store:
                        # fresh key: the dominant case while spreading —
                        # inline the absorb without the LWW machinery
                        store[key] = entry
                        bucket = by_origin.get(oid)
                        if bucket is None:
                            bucket = by_origin[oid] = {}
                        bucket[key] = entry
                        applied += 1
                    elif self._absorb_locked(node, view, entry, oid):
                        applied += 1
            if grant_digest is not None and len(grant_digest):
                # batched floor advance: one stamp bump and one totals-lock
                # acquisition per digest, not one per origin (the per-origin
                # path was 7M no-op calls per 10k round)
                gained = 0
                flat = np.asarray(grant_digest).tolist()
                half = len(flat) // 2
                for oid, high in zip(flat[:half], flat[half:]):
                    old = versions.get(oid, 0)
                    if high > old:
                        versions[oid] = high
                        gained += high - old
                if gained:
                    view.stamp += 1
                    view.digest_cache = None
                    view.total += gained
                    with self._totals_lock:
                        self._sum_totals += gained
        if applied:
            _DELTAS.inc(applied)
        return applied

    def _exchange(self, initiator: str, peer: str) -> int:
        """One push-pull anti-entropy exchange; returns entries transferred."""
        view = self._views[initiator]
        node = self.nodes[initiator]
        with node.lock:
            payload = self._sync_payload_locked(view)
        response = self._request_raw(initiator, peer, payload)
        if response.payload == _SYNC_SAME:
            # byte-compare fast path: no unpack when the pair already agrees
            _EXCHANGES.inc()
            return 0
        reply = unpack_value(response.payload)
        if reply.get("same"):
            _EXCHANGES.inc()
            return 0
        peer_digest = reply.get("d")
        pulled = reply.get("deltas")
        transferred = self._apply_deltas(initiator, pulled, peer_digest)
        # push leg: whatever the peer's digest says it lacks from my
        # (now-merged) replica — skipped entirely when we already agree
        push = None
        push_raw = None
        with node.lock:
            my_digest = self._digest_locked(view)
            if not np.array_equal(my_digest, peer_digest):
                peer_floors = _floors(peer_digest)
                if peer_floors:
                    push = self._collect_locked(view, peer_floors)
                else:
                    # ignorant peer: reuse the packed full-dump push
                    push_raw = self._push_payload_locked(view)
        if push_raw is not None:
            self._request_raw(initiator, peer, push_raw[0])
            transferred += push_raw[1]
        elif push is not None:
            self._send(
                initiator,
                peer,
                {"kind": "deltas", "deltas": push, "d": my_digest},
            )
            transferred += int(len(push["l"]))
        _EXCHANGES.inc()
        return transferred

    # -- rounds and convergence --------------------------------------------------------

    def _gossip_peers(self, index: int, members: list[str]) -> list[str]:
        n = len(members)
        fanout = min(self.fanout, n - 1)
        chosen: list[str] = []
        for _ in range(fanout):
            j = self._rng.randrange(n - 1)
            if j >= index:
                j += 1
            peer = members[j]
            if peer not in chosen:
                chosen.append(peer)
        return chosen

    def gossip_round(self) -> dict:
        """Every live member initiates ``fanout`` exchanges; one epidemic round."""
        members = list(self.members)
        stats = {"exchanges": 0, "entries": 0, "unreachable": 0, "down": 0}
        network = self.network
        for index, name in enumerate(members):
            if self._sum_totals == len(self._views) * self._origin_total:
                break  # fleet agreed mid-round: the rest would be no-ops
            if name not in self._views:
                continue  # evicted mid-round
            if not network.host(name).up:
                stats["down"] += 1
                continue
            for peer in self._gossip_peers(index, members):
                if peer not in self._views:
                    continue
                try:
                    stats["entries"] += self._exchange(name, peer)
                except _UNREACHABLE:
                    stats["unreachable"] += 1
                    _UNREACHED.inc()
                    continue
                stats["exchanges"] += 1
        self._rounds += 1
        _ROUNDS.inc()
        self._announce_convergence()
        return stats

    def converged(self) -> bool:
        """O(1): every replica's floor-sum equals members × origin ceilings."""
        n = len(self._views)
        if n == 0:
            return True
        return self._sum_totals == n * self._origin_total

    def run_until_converged(self, max_rounds: int = 64) -> int:
        """Gossip until the fleet agrees; returns the rounds taken."""
        rounds = 0
        while not self.converged():
            if rounds >= max_rounds:
                raise CoherencyError(
                    f"gossip did not converge within {max_rounds} rounds "
                    f"({len(self._views)} members, fanout={self.fanout})"
                )
            self.gossip_round()
            rounds += 1
        return rounds

    def quiesce(self, max_rounds: int = 16) -> bool:
        """Best-effort anti-entropy sweep: rounds until agreement or the cap.

        Unlike :meth:`run_until_converged` this never raises — unreachable
        members just leave the fleet unconverged for a later round (or the
        background pump) to finish.  The builder runs this after
        control-plane publications: deploys are rare, so paying a sweep
        there keeps every *read* local while lookups anywhere still see a
        fresh record (the C7 portability contract).
        """
        for _ in range(max_rounds):
            if self.converged():
                return True
            self.gossip_round()
        return self.converged()

    def _announce_convergence(self) -> None:
        now = self.converged()
        if now and not self._was_converged:
            _CONVERGED.inc()
            if self._bus is not None:
                self._bus.publish(
                    "dvm.gossip.converged",
                    {"rounds": self._rounds, "members": len(self._views)},
                    source=self._bus_source,
                )
        self._was_converged = now

    def bind_bus(self, events, source: str = "") -> None:
        """Publish ``dvm.gossip.converged`` transitions on *events*."""
        self._bus = events
        self._bus_source = source

    # -- wall-clock mode -----------------------------------------------------------

    def start(self) -> None:
        """Run gossip rounds every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.gossip_round()
                except Exception:
                    # anti-entropy must never kill its own pump
                    pass

        self._thread = threading.Thread(target=loop, name="dvm-gossip", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "GossipState":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


class NeighborhoodGossipState(GossipState):
    """Gossip plus eager ring-neighbour pushes — the mesh regime.

    A write reaches the ``radius`` ring neighbours immediately (floors
    untouched: an eager push is opportunistic, only digest exchanges grant),
    then anti-entropy spreads it epidemic-fashion.  Costs more messages per
    write than pure gossip, converges in fewer rounds — the intermediate
    point on the C10 crossover curve.
    """

    scheme = "neighborhood-gossip"

    def __init__(
        self,
        network: VirtualNetwork,
        members: list[str] | None = None,
        radius: int = 2,
        **kwargs,
    ):
        if radius < 1:
            raise DvmError("neighborhood radius must be >= 1")
        self.radius = radius
        self._ring: list[str] = []
        super().__init__(network, members, **kwargs)
        self._ring = sorted(self.members)

    def _on_member_added(self, name: str, existing: list[str]) -> None:
        self._ring = sorted(self.members)
        super()._on_member_added(name, existing)

    def remove_member(self, name: str) -> None:
        super().remove_member(name)
        self._ring = sorted(self.members)

    def neighbors(self, node: str) -> list[str]:
        """The nodes within ``radius`` ring hops (both directions)."""
        ring = self._ring
        index = ring.index(node)
        out: list[str] = []
        for step in range(1, self.radius + 1):
            for direction in (+1, -1):
                peer = ring[(index + direction * step) % len(ring)]
                if peer != node and peer not in out:
                    out.append(peer)
        return out

    def update(self, origin: str, key: str, value) -> StateEntry:
        entry = super().update(origin, key, value)
        oid = self._origin_ids[origin]
        batch = {
            "k": entry.key,
            "v": [entry.value],
            "l": np.asarray([entry.lamport], dtype=np.int64),
            "o": np.asarray([oid], dtype=np.int64),
        }
        for neighbor in self.neighbors(origin):
            try:
                self._send(origin, neighbor, {"kind": "deltas", "deltas": batch})
            except _UNREACHABLE:
                continue
        return entry
