"""Identifier and name management.

The paper requires that "a DVM is associated with a symbolic name that is
unique in the Harness name space" and that containers "define a local name
space".  :class:`HarnessName` implements that hierarchical, slash-separated
name space (``/dvm/node-a/container0/matmul``), and :func:`new_id` produces
collision-resistant identifiers for registry keys (the analogue of UDDI
``uuid`` keys).
"""

from __future__ import annotations

import itertools
import threading
import uuid
from typing import Iterable

from repro.util.errors import HarnessError

__all__ = ["new_id", "new_uuid_key", "reset_ids", "HarnessName", "NameClashError"]

_counter = itertools.count(1)
_counter_lock = threading.Lock()


def new_id(prefix: str = "h") -> str:
    """Return a short process-unique identifier like ``h-17``.

    Monotonically increasing, cheap, and stable within a process — suitable
    for component/task ids that appear in logs and tests.  For globally
    unique registry keys use :func:`new_uuid_key`.
    """
    with _counter_lock:
        return f"{prefix}-{next(_counter)}"


def reset_ids(start: int = 1) -> None:
    """Rewind the :func:`new_id` counter (deterministic-replay support).

    The decimal width of an id leaks into wire payload sizes (ids are
    embedded in component records), so two otherwise-identical runs in one
    process accrue different simulated transfer costs unless the counter is
    rewound between them.  Only call this between fully torn-down runs —
    uniqueness guarantees restart from *start*.
    """
    global _counter
    with _counter_lock:
        _counter = itertools.count(start)


def new_uuid_key(prefix: str = "uuid") -> str:
    """Return a globally unique key like UDDI's businessKey/tModelKey."""
    return f"{prefix}:{uuid.uuid4()}"


class NameClashError(HarnessError):
    """Two distinct entities claimed the same :class:`HarnessName`."""


class HarnessName:
    """A hierarchical name in the Harness name space.

    Names are immutable sequences of non-empty components rendered as
    ``/a/b/c``.  The root name is ``/``.  Supports parent/child navigation
    and prefix tests, which the DVM layer uses to scope lookups to a node or
    container subtree.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: Iterable[str] | str = ()):
        if isinstance(parts, str):
            parts = [p for p in parts.split("/") if p]
        parts = tuple(parts)
        for part in parts:
            if not part or "/" in part:
                raise ValueError(f"invalid name component: {part!r}")
        self._parts = parts

    @classmethod
    def root(cls) -> "HarnessName":
        """The root of the name space, rendered as ``/``."""
        return cls(())

    @property
    def parts(self) -> tuple[str, ...]:
        """The name components as a tuple."""
        return self._parts

    @property
    def leaf(self) -> str:
        """The final component; raises :class:`ValueError` for the root."""
        if not self._parts:
            raise ValueError("root name has no leaf")
        return self._parts[-1]

    @property
    def parent(self) -> "HarnessName":
        """The enclosing name; the root is its own parent."""
        return HarnessName(self._parts[:-1])

    def child(self, component: str) -> "HarnessName":
        """Return this name extended by exactly one component."""
        if not component or "/" in component:
            raise ValueError(f"invalid name component: {component!r}")
        return HarnessName(self._parts + (component,))

    def is_ancestor_of(self, other: "HarnessName") -> bool:
        """True when *other* lives strictly below this name."""
        return (
            len(other._parts) > len(self._parts)
            and other._parts[: len(self._parts)] == self._parts
        )

    def relative_to(self, base: "HarnessName") -> "HarnessName":
        """Strip *base* from the front of this name."""
        if self._parts[: len(base._parts)] != base._parts:
            raise ValueError(f"{self} is not under {base}")
        return HarnessName(self._parts[len(base._parts):])

    def __truediv__(self, component: str) -> "HarnessName":
        return self.child(component)

    def __str__(self) -> str:
        return "/" + "/".join(self._parts)

    def __repr__(self) -> str:
        return f"HarnessName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HarnessName):
            return self._parts == other._parts
        if isinstance(other, str):
            return self == HarnessName(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._parts)

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self):
        return iter(self._parts)
