"""Automatic component failover — closing the paper's reconfiguration loop.

Section 1 motivates Harness with "improving robustness … through
reconfiguration": when a node dies, the DVM should not merely notice (that
is the :class:`~repro.dvm.failure.FailureDetector`'s job) but *repair
itself*.  This module supplies the repair:

* :class:`CheckpointStore` keeps the latest migration snapshot
  (:func:`~repro.core.migration.serialize_component` bytes) of every
  ``restartable`` component, refreshed by :meth:`FailoverManager.checkpoint`
  on a configurable interval.  Checkpoint bytes are charged to the fabric
  between the owning node and the store's home node, so the cost of fault
  tolerance shows up in the same cost model as everything else.
* :class:`FailoverManager` subscribes to ``dvm.member.dead`` (published by
  :meth:`~repro.dvm.machine.DistributedVirtualMachine.evict_node`).  For
  every restartable component the dead node hosted, it picks a surviving
  node, revives the instance from its last checkpoint, and re-publishes it
  in the DVM namespace — after which a pre-existing
  :class:`~repro.bindings.resilient.ResilientStub` re-resolves and completes
  its next call as if nothing happened.

Because the :class:`~repro.util.events.EventBus` is synchronous, failover
runs *inside* the eviction: by the time ``evict_node`` returns, the
component already lives on its new home.  Progress is published under
``recovery.*`` topics (``recovery.checkpoint``, ``recovery.failover``,
``recovery.failover.failed``).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.migration import deserialize_component, serialize_component
from repro.obs import metrics as _metrics
from repro.util.errors import RecoveryError
from repro.util.events import Event

__all__ = ["CheckpointStore", "FailoverManager", "least_loaded_node"]

_CHECKPOINTS = _metrics.registry.counter("recovery.checkpoints")
_FAILOVERS = _metrics.registry.counter("recovery.failovers")
_FAILOVER_FAILURES = _metrics.registry.counter("recovery.failover_failures")


class CheckpointStore:
    """Latest serialized snapshot per service, with provenance.

    Only the newest checkpoint per service is retained — failover restarts
    from the most recent state, it does not replay history.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._blobs: dict[str, tuple[str, bytes]] = {}

    def put(self, service: str, node: str, blob: bytes) -> None:
        with self._lock:
            self._blobs[service] = (node, blob)

    def get(self, service: str) -> tuple[str, bytes] | None:
        with self._lock:
            return self._blobs.get(service)

    def discard(self, service: str) -> None:
        with self._lock:
            self._blobs.pop(service, None)

    def services(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)


def least_loaded_node(dvm, record: dict) -> str | None:
    """Default placement: the surviving node hosting the fewest components."""
    candidates = dvm.nodes()
    if not candidates:
        return None
    return min(
        candidates, key=lambda n: (len(dvm.node(n).container.components()), n)
    )


class FailoverManager:
    """Checkpoints restartable components and revives them after eviction.

    ``home`` names the node conceptually holding the checkpoint store;
    checkpoint and restore transfers are charged to the fabric against it
    (``home=None`` models a store co-located with each owner — free).
    ``placement`` maps ``(dvm, lost_record) -> node`` and defaults to
    :func:`least_loaded_node`.
    """

    def __init__(
        self,
        dvm,
        store: CheckpointStore | None = None,
        placement: Callable[[object, dict], str | None] | None = None,
        home: str | None = None,
        interval_s: float = 0.5,
    ):
        self.dvm = dvm
        self.store = store or CheckpointStore()
        self.placement = placement or least_loaded_node
        self.home = home
        self.interval_s = interval_s
        self.recovered: list[dict] = []  # audit trail of completed failovers
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._subscription = dvm.events.subscribe("dvm.member.dead", self._on_member_dead)

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot every live restartable component; returns how many."""
        count = 0
        for host in self.dvm.nodes():
            try:
                node = self.dvm.node(host)
            except Exception:
                continue  # evicted between nodes() and node()
            for handle in node.container.components():
                if not handle.metadata.get("restartable"):
                    continue
                try:
                    blob = serialize_component(handle.instance)
                except Exception:
                    continue  # unserializable state: keep the previous snapshot
                if self.home is not None and self.home != host:
                    self.dvm.network.charge(host, self.home, len(blob))
                self.store.put(handle.name, host, blob)
                count += 1
                _CHECKPOINTS.inc()
                self.dvm.events.publish(
                    "recovery.checkpoint",
                    {"service": handle.name, "node": host, "bytes": len(blob)},
                    source=self.dvm.name,
                )
        return count

    # -- failover ------------------------------------------------------------------

    def _on_member_dead(self, event: Event) -> None:
        payload = event.payload or {}
        # coalesced cohort events carry "nodes" and no top-level "node";
        # either way each lost record names its own dead host
        dead = payload.get("node", "")
        for record in payload.get("components", ()):
            if record and record.get("restartable"):
                self._failover(record, dead_node=record.get("node", dead))

    def _failover(self, record: dict, dead_node: str) -> None:
        service = record.get("name", "")
        target = self.placement(self.dvm, record)
        checkpoint = self.store.get(service)
        if target is None or checkpoint is None:
            _FAILOVER_FAILURES.inc()
            self.dvm.events.publish(
                "recovery.failover.failed",
                {
                    "service": service,
                    "from": dead_node,
                    "reason": "no surviving node" if target is None else "no checkpoint",
                },
                source=self.dvm.name,
            )
            return
        _origin, blob = checkpoint
        try:
            instance = deserialize_component(blob)
            if self.home is not None and self.home != target:
                self.dvm.network.charge(self.home, target, len(blob))
            bindings = tuple(record.get("bindings") or ("local-instance", "sim"))
            handle = self.dvm.deploy(
                target, instance, name=service, bindings=bindings, restartable=True
            )
        except Exception as exc:
            _FAILOVER_FAILURES.inc()
            self.dvm.events.publish(
                "recovery.failover.failed",
                {"service": service, "from": dead_node, "reason": str(exc)},
                source=self.dvm.name,
            )
            return
        self.store.put(service, target, blob)
        done = {
            "service": service,
            "from": dead_node,
            "to": target,
            "bytes": len(blob),
            "instance_id": handle.instance_id,
        }
        with self._lock:
            self.recovered.append(done)
        _FAILOVERS.inc()
        self.dvm.events.publish("recovery.failover", done, source=self.dvm.name)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Checkpoint every ``interval_s`` seconds on a daemon thread."""
        if self._thread is not None:
            return
        if self._subscription is None or not self._subscription.active:
            raise RecoveryError("failover manager is closed")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.checkpoint()
                except Exception:
                    pass  # checkpointing must never kill the thread

        self._thread = threading.Thread(target=loop, name="dvm-failover", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def close(self) -> None:
        self.stop()
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def __enter__(self) -> "FailoverManager":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
