"""Reactor server core: admission control, load shedding, lifecycle.

Covers the event-loop transport's contract beyond plain round-trips
(those run in ``test_transports.py``, which exercises the reactor by
default): typed ``ServerBusyError`` shedding under flood, per-connection
caps, the slow-loris read deadline, drain-vs-abort shutdown, reconnect
after restart, and fd hygiene under accept/close churn.
"""

import os
import socket
import threading
import time

import pytest

from repro.obs import metrics
from repro.transport.base import TransportMessage
from repro.transport.http import HttpListener, HttpTransport
from repro.transport.tcp import TcpListener, TcpTransport
from repro.util.errors import (
    HarnessError,
    HarnessTimeoutError,
    ServerBusyError,
    TransportClosedError,
)


def echo(message: TransportMessage) -> TransportMessage:
    return TransportMessage(message.content_type, bytes(message.payload))


def slow_echo(delay: float):
    def handler(message: TransportMessage) -> TransportMessage:
        time.sleep(delay)
        return TransportMessage(message.content_type, bytes(message.payload))

    return handler


def counter_value(name: str) -> float:
    snap = metrics.registry.snapshot(name)
    return snap[name]["value"] if name in snap else 0.0


@pytest.fixture
def no_reactor_env(monkeypatch):
    monkeypatch.delenv("REPRO_SERVER_REACTOR", raising=False)


class TestAdmissionShedding:
    def test_flood_fails_fast_with_typed_fault(self):
        """A flood beyond ``workers + queue_max`` answers ServerBusyError
        immediately instead of queueing unboundedly (satellite 1)."""
        listener = TcpListener(slow_echo(0.3), workers=1, queue_max=1)
        shed_before = counter_value("server.reactor.shed")
        transport = TcpTransport(listener.url, pool_size=1)
        results: list[object] = []
        lock = threading.Lock()

        def caller(n: int) -> None:
            t0 = time.monotonic()
            try:
                transport.request(
                    TransportMessage("text/plain", b"x" * n), timeout=5.0
                )
                outcome: object = "ok"
            except ServerBusyError:
                outcome = ("busy", time.monotonic() - t0)
            with lock:
                results.append(outcome)

        try:
            threads = [
                threading.Thread(target=caller, args=(n,)) for n in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            transport.close()
            listener.close()
        served = [r for r in results if r == "ok"]
        shed = [r for r in results if isinstance(r, tuple)]
        assert len(served) + len(shed) == 12
        assert served, "admission must let capacity-worth of requests through"
        assert shed, "over-capacity requests must be shed"
        # shed answers are immediate: far faster than waiting out the 0.3s
        # handler even once, let alone a 10-deep queue of it
        assert max(t for _, t in shed) < 0.25
        assert counter_value("server.reactor.shed") >= shed_before + len(shed)

    def test_per_connection_cap_protects_other_principals(self):
        """One connection may not occupy the whole server: its requests
        past ``per_conn_max`` shed while a second connection is served."""
        listener = TcpListener(
            slow_echo(0.25), workers=4, queue_max=64, per_conn_max=2
        )
        hog = TcpTransport(listener.url, pool_size=1)
        outcomes: list[str] = []
        lock = threading.Lock()

        def hog_caller() -> None:
            try:
                hog.request(TransportMessage("text/plain", b"hog"), timeout=5.0)
                result = "ok"
            except ServerBusyError:
                result = "busy"
            with lock:
                outcomes.append(result)

        try:
            threads = [threading.Thread(target=hog_caller) for _ in range(8)]
            for t in threads:
                t.start()
            time.sleep(0.05)  # hog's pipelined burst reaches the server first
            bystander = TcpTransport(listener.url, pool_size=1)
            try:
                reply = bystander.request(
                    TransportMessage("text/plain", b"bystander"), timeout=5.0
                )
                assert bytes(reply.payload) == b"bystander"
            finally:
                bystander.close()
            for t in threads:
                t.join()
        finally:
            hog.close()
            listener.close()
        assert "busy" in outcomes, "the hog must hit its per-connection cap"
        assert "ok" in outcomes

    def test_env_knobs_configure_admission(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_QUEUE_MAX", "7")
        monkeypatch.setenv("REPRO_SERVER_PER_CONN_MAX", "3")
        listener = TcpListener(echo, workers=2)
        try:
            assert listener.admission.queue_max == 7
            assert listener.admission.per_conn_max == 3
            assert listener.admission.max_inflight == 9
        finally:
            listener.close()

    def test_caps_reconfigure_live(self):
        listener = TcpListener(slow_echo(0.2), workers=1, queue_max=64)
        transport = TcpTransport(listener.url, pool_size=1)
        try:
            listener.admission.configure(queue_max=0)
            assert listener.admission.max_inflight == 1
            errors: list[Exception] = []

            def caller() -> None:
                try:
                    transport.request(
                        TransportMessage("text/plain", b"a"), timeout=5.0
                    )
                except ServerBusyError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=caller) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors, "queue_max=0 leaves only worker-width capacity"
        finally:
            transport.close()
            listener.close()

    def test_http_flood_answers_503_as_server_busy(self):
        listener = HttpListener(slow_echo(0.3), workers=1, queue_max=0)
        transports = [HttpTransport(listener.url) for _ in range(6)]
        outcomes: list[str] = []
        lock = threading.Lock()

        def caller(transport: HttpTransport) -> None:
            try:
                transport.request(
                    TransportMessage("text/plain", b"x"), timeout=5.0
                )
                result = "ok"
            except ServerBusyError:
                result = "busy"
            with lock:
                outcomes.append(result)

        try:
            threads = [
                threading.Thread(target=caller, args=(t,)) for t in transports
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            for transport in transports:
                transport.close()
            listener.close()
        assert "busy" in outcomes and "ok" in outcomes
        # ServerBusyError derives from the framework root, so policy layers
        # treating "typed faults only" as healthy degradation see it as such
        assert issubclass(ServerBusyError, HarnessError)


class TestReadDeadline:
    def test_half_header_slow_loris_is_disconnected(self):
        """A peer sending half a v2 header and stalling is dropped at the
        read deadline — progress does not extend the budget (satellite 2)."""
        listener = TcpListener(echo, read_deadline_s=0.3)
        closes_before = counter_value("server.reactor.deadline_closes")
        sock = socket.create_connection(("127.0.0.1", listener.port))
        try:
            sock.sendall(b"\x00\x00")  # half of the 4-byte length header
            sock.settimeout(3.0)
            t0 = time.monotonic()
            assert sock.recv(1) == b"", "server should close the connection"
            elapsed = time.monotonic() - t0
            assert 0.1 < elapsed < 2.0
        finally:
            sock.close()
            listener.close()
        assert counter_value("server.reactor.deadline_closes") >= closes_before + 1

    def test_idle_connection_is_not_deadlined(self):
        """The deadline arms per *started* message: a connection that is
        merely idle between requests stays open."""
        listener = TcpListener(echo, read_deadline_s=0.3)
        transport = TcpTransport(listener.url, pool_size=1)
        try:
            transport.request(TransportMessage("text/plain", b"a"), timeout=5.0)
            time.sleep(0.6)  # idle well past the mid-message deadline
            reply = transport.request(
                TransportMessage("text/plain", b"b"), timeout=5.0
            )
            assert bytes(reply.payload) == b"b"
        finally:
            transport.close()
            listener.close()


class TestLifecycle:
    def test_drain_shutdown_answers_in_flight_requests(self):
        listener = TcpListener(slow_echo(0.4), workers=2, drain_s=5.0)
        transport = TcpTransport(listener.url, pool_size=1)
        reply: list[bytes] = []
        errors: list[Exception] = []

        def caller() -> None:
            try:
                response = transport.request(
                    TransportMessage("text/plain", b"drain-me"), timeout=5.0
                )
                reply.append(bytes(response.payload))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        thread = threading.Thread(target=caller)
        thread.start()
        time.sleep(0.1)  # let the request reach the worker
        listener.close()  # drains: the in-flight request must finish
        thread.join(timeout=5.0)
        transport.close()
        assert not errors, errors
        assert reply == [b"drain-me"]

    def test_abort_shutdown_drops_in_flight_requests(self):
        listener = TcpListener(slow_echo(1.0), workers=2, drain_s=0.0)
        transport = TcpTransport(listener.url, pool_size=1, pending_max_s=2.0)
        errors: list[Exception] = []
        done = threading.Event()

        def caller() -> None:
            try:
                transport.request(
                    TransportMessage("text/plain", b"doomed"), timeout=3.0
                )
            except (TransportClosedError, HarnessTimeoutError) as exc:
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=caller)
        thread.start()
        time.sleep(0.1)
        t0 = time.monotonic()
        listener.close()  # aborts: no drain window
        assert time.monotonic() - t0 < 0.9, "abort must not wait out the handler"
        assert done.wait(5.0)
        thread.join(timeout=5.0)
        transport.close()
        assert errors, "the aborted request must fail with a typed error"

    def test_client_reconnects_after_server_restart(self):
        listener = TcpListener(echo)
        port = listener.port
        transport = TcpTransport(listener.url, pool_size=1)
        try:
            assert bytes(
                transport.request(
                    TransportMessage("text/plain", b"one"), timeout=5.0
                ).payload
            ) == b"one"
            listener.close()
            listener = TcpListener(echo, port=port)
            # the pooled channel died with the old server; the transport
            # prunes it and dials afresh (the request that *discovers* the
            # death may fail — one retry is the documented contract)
            for attempt in range(2):
                try:
                    reply = transport.request(
                        TransportMessage("text/plain", b"two"), timeout=5.0
                    )
                    break
                except TransportClosedError:
                    if attempt:
                        raise
            assert bytes(reply.payload) == b"two"
        finally:
            transport.close()
            listener.close()


class TestFdHygiene:
    CHURN = 256

    @staticmethod
    def _fd_count() -> int:
        return len(os.listdir("/proc/self/fd"))

    @staticmethod
    def _wait_conns(value: float, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if counter_value("server.reactor.conns") == value:
                return
            time.sleep(0.01)

    def test_socket_churn_leaks_no_fds(self):
        """256 accept/close cycles leave the process fd table where it
        started: socket count decouples from both threads *and* fds."""
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc")
        listener = TcpListener(echo)
        transport = TcpTransport(listener.url, pool_size=1)
        try:
            # settle: one served request warms every lazy structure
            transport.request(TransportMessage("text/plain", b"warm"), timeout=5.0)
            baseline_conns = counter_value("server.reactor.conns")
            before = self._fd_count()
            for _ in range(4):
                socks = [
                    socket.create_connection(("127.0.0.1", listener.port))
                    for _ in range(self.CHURN // 4)
                ]
                for sock in socks:
                    sock.close()
                self._wait_conns(baseline_conns)
            self._wait_conns(baseline_conns)
            after = self._fd_count()
            assert after <= before + 4, f"fd leak: {before} -> {after}"
            # the server is still healthy after the churn
            reply = transport.request(
                TransportMessage("text/plain", b"after"), timeout=5.0
            )
            assert bytes(reply.payload) == b"after"
        finally:
            transport.close()
            listener.close()


class TestBoundedThreadedBaseline:
    def test_threaded_fallback_sheds_with_typed_fault(self):
        """satellite 1 on the A/B baseline: the thread-per-connection
        server's offload queue is admission-gated too."""
        listener = TcpListener(
            slow_echo(0.3), workers=1, queue_max=0, reactor=False
        )
        transport = TcpTransport(listener.url, pool_size=1)
        outcomes: list[str] = []
        lock = threading.Lock()

        def caller() -> None:
            try:
                transport.request(TransportMessage("text/plain", b"x"), timeout=5.0)
                result = "ok"
            except ServerBusyError:
                result = "busy"
            with lock:
                outcomes.append(result)

        try:
            threads = [threading.Thread(target=caller) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            transport.close()
            listener.close()
        assert "busy" in outcomes and "ok" in outcomes

    def test_reactor_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_REACTOR", "0")
        listener = TcpListener(echo)
        try:
            assert listener._reactor is False
            transport = TcpTransport(listener.url)
            try:
                reply = transport.request(
                    TransportMessage("text/plain", b"legacy"), timeout=5.0
                )
                assert bytes(reply.payload) == b"legacy"
            finally:
                transport.close()
        finally:
            listener.close()
