"""F5/F6 — Figures 5 and 6: local/remote communication and the 3-layer stack.

Figure 5: the same service reached through the standard remote path
(SOAP/HTTP), the fast remote path (XDR sockets) and the local unmediated
path (local/local-instance bindings).

Figure 6: runner box (resource abstraction) → component container →
distributed component container, each layer a describable service.
"""

import numpy as np
import pytest

from repro.bindings import ClientContext, DynamicStubFactory
from repro.container import LightweightContainer
from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins.services import CounterService, MatMul
from repro.runner.box import ThreadRunnerBox
from repro.runner.tasks import TaskSpec
from repro.tools.wsdlgen import generate_wsdl


class TestFigure5LocalAndRemotePaths:
    @pytest.fixture
    def deployment(self):
        with LightweightContainer("fig5", host="fig5host") as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "xdr", "soap"))
            yield container, handle

    def test_all_three_paths_give_identical_results(self, deployment, rng):
        container, handle = deployment
        a = rng.random((6, 6))
        results = {}
        co_located = DynamicStubFactory(
            ClientContext(container_uri=container.uri, host="fig5host")
        )
        remote = DynamicStubFactory(ClientContext(host="elsewhere"))
        results["local-instance"] = co_located.create(handle.document).multiply(a, a)
        for protocol in ("xdr", "soap"):
            stub = remote.create(handle.document, prefer=(protocol,))
            assert stub.protocol == protocol
            results[protocol] = stub.multiply(a, a)
            stub.close()
        for result in results.values():
            assert np.allclose(result, a @ a)

    def test_local_path_is_unmediated(self, deployment):
        """Co-located calls touch the very object — no copies, no encoding."""
        container, handle = deployment
        factory = DynamicStubFactory(
            ClientContext(container_uri=container.uri, host="fig5host")
        )
        stub = factory.create(handle.document)
        assert stub.protocol == "local-instance"
        assert stub.wrapped_object is handle.instance

    def test_remote_path_copies(self, deployment, rng):
        """Network bindings must serialize: the result is a distinct array."""
        container, handle = deployment
        remote = DynamicStubFactory(ClientContext(host="elsewhere"))
        stub = remote.create(handle.document, prefer=("xdr",))
        a = rng.random((3, 3))
        result = stub.multiply(a, a)
        assert result.flags.owndata or result.base is not a
        stub.close()

    def test_binding_choice_by_context(self, deployment):
        container, handle = deployment
        co_located = DynamicStubFactory(
            ClientContext(container_uri=container.uri, host="fig5host")
        )
        remote = DynamicStubFactory(ClientContext(host="elsewhere"))
        assert co_located.usable_protocols(handle.document)[0] == "local-instance"
        assert remote.usable_protocols(handle.document)[0] == "xdr"


class TestFigure6ThreeLayers:
    def test_runner_box_layer(self):
        """Lowest layer: enroll a computational resource, run/control tasks."""
        box = ThreadRunnerBox(name="fig6-runner")
        info = box.describe()
        assert info["kind"] == "thread"
        task_id = box.run(TaskSpec.from_callable(lambda: 7 * 6))
        assert box.wait(task_id).result == 42

    def test_container_layer_adds_shared_environment(self, rng):
        """Middle layer: query + access services hosted locally."""
        with LightweightContainer("fig6c", host="f6") as container:
            container.deploy(MatMul)
            container.deploy(CounterService)
            # query for characteristics ...
            names = {e.name for e in container.registry.entries()}
            assert names == {"MatMul", "CounterService"}
            assert container.registry.find_by_operation("increment")
            # ... and access the services hosted locally
            stub = container.lookup("MatMul")
            a = rng.random((2, 2))
            assert np.allclose(stub.multiply(a, a), a @ a)

    def test_container_is_itself_a_describable_service(self):
        """'they are full-fledged services themselves'"""
        with LightweightContainer("fig6self", host="f6s") as container:
            document = generate_wsdl(
                type(container), service_name="ContainerManagement",
                bindings=("local",),
            )
            document.validate()
            ops = document.port_type("ContainerManagementPortType").operation_names()
            assert "deploy" in ops and "lookup" in ops and "describe" in ops

    def test_distributed_container_layer(self, rng):
        """Top layer: unified namespace, status, lookup, management."""
        net = lan(3)
        with HarnessDvm("fig6dvm", net) as harness:
            harness.add_nodes("node0", "node1", "node2")
            harness.deploy("node2", MatMul)
            # unified name space
            assert harness.dvm.component_index("node0") == {"MatMul": "node2"}
            # status query
            status = harness.status("node1")
            assert status["members"] == ["node0", "node1", "node2"]
            # lookup + management (undeploy from a management point)
            stub = harness.stub("node0", "MatMul")
            a = rng.random((2, 2))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()
            harness.undeploy("node2", "MatMul")
            assert harness.dvm.component_index("node0") == {}

    def test_stack_composes_bottom_up(self):
        """All three layers in one deployment."""
        net = lan(2)
        with HarnessDvm("fig6full", net) as harness:
            harness.add_nodes("node0", "node1")
            from repro.plugins import BASELINE_PLUGINS

            for plugin in BASELINE_PLUGINS:
                harness.load_plugin_everywhere(plugin)
            # runner (hproc) under container under DVM
            hproc = harness.kernel("node0").get_service("process-management")
            task_id = hproc.spawn(lambda: "bottom layer works")
            assert hproc.wait(task_id).result == "bottom layer works"
            harness.deploy("node0", CounterService)
            stub = harness.stub("node1", "CounterService")
            assert stub.increment(1) == 1
            stub.close()
