"""XDR (RFC 1014 subset) encoder/decoder with numpy fast paths.

Section 5 of the paper proposes an *XDR binding* "capable of delivering
numerical data on direct socket level connections", relying on "the
capability of Java I/O streams to encode numeric data in XDR format" instead
of constructing an XML document.  This module is the Python equivalent: a
binary codec whose hot path for numeric arrays is a single big-endian numpy
buffer copy, not a per-element loop (per the HPC guide: vectorize the hot
loop, keep a pure-Python reference implementation for testing).

Wire format notes
-----------------
* All primitives are 4-byte aligned, big-endian, as RFC 1014 specifies.
* Strings are UTF-8 ``opaque`` with a length prefix, padded to 4 bytes.
* On top of raw XDR primitives we define a small *tagged value* layer
  (:func:`pack_value` / :func:`unpack_value`) so RPC arguments of mixed
  types can round-trip: each value is prefixed by a one-int type tag.
  Homogeneous numeric arrays (python lists of float/int or numpy arrays)
  take the vectorised path and are tagged with their dtype.
"""

from __future__ import annotations

import math
import struct
from typing import Any

import numpy as np

from repro.util.errors import EncodingError

__all__ = [
    "XdrEncoder",
    "XdrDecoder",
    "pack_value",
    "unpack_value",
    "pack_call",
    "make_call_prefix",
    "pack_call_from_prefix",
    "unpack_call",
    "pack_reply",
    "unpack_reply",
]

_PAD = b"\x00\x00\x00"

# Type tags for the tagged-value layer.
_TAG_VOID = 0
_TAG_BOOL = 1
_TAG_INT = 2  # int64 (hyper)
_TAG_DOUBLE = 3
_TAG_STRING = 4
_TAG_OPAQUE = 5
_TAG_LIST = 6  # heterogeneous sequence of tagged values
_TAG_DICT = 7  # string-keyed mapping of tagged values
_TAG_NDARRAY = 8  # homogeneous numeric array (numpy)
_TAG_FLOAT32 = 9

#: dtypes the array fast path supports, with stable wire codes.
_DTYPE_CODES: dict[str, int] = {
    "int32": 1,
    "int64": 2,
    "float32": 3,
    "float64": 4,
    "uint32": 5,
    "uint64": 6,
    "int8": 7,
    "uint8": 8,
    "int16": 9,
    "uint16": 10,
    "complex64": 11,
    "complex128": 12,
}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}
# dtype objects hash by identity-ish semantics; caching by dtype skips the
# (surprisingly costly) ``dtype.name`` property on the per-array hot path
_DTYPE_CODE_CACHE: dict[np.dtype, int] = {}


class XdrEncoder:
    """Streaming XDR writer over a growable buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        """The bytes encoded so far (a copy; see :meth:`view`)."""
        return bytes(self._buf)

    def view(self) -> memoryview:
        """Zero-copy view of the encoded bytes.

        Valid until the next ``pack_*`` call mutates the buffer — hand it
        to a transport (which only reads it) rather than storing it.
        """
        return memoryview(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # -- RFC 1014 primitives ------------------------------------------------

    def pack_int(self, value: int) -> None:
        """Signed 32-bit integer."""
        try:
            self._buf += struct.pack(">i", value)
        except struct.error as exc:
            raise EncodingError(f"int32 out of range: {value}") from exc

    def pack_uint(self, value: int) -> None:
        """Unsigned 32-bit integer."""
        try:
            self._buf += struct.pack(">I", value)
        except struct.error as exc:
            raise EncodingError(f"uint32 out of range: {value}") from exc

    def pack_hyper(self, value: int) -> None:
        """Signed 64-bit integer."""
        try:
            self._buf += struct.pack(">q", value)
        except struct.error as exc:
            raise EncodingError(f"int64 out of range: {value}") from exc

    def pack_bool(self, value: bool) -> None:
        self.pack_int(1 if value else 0)

    def pack_float(self, value: float) -> None:
        """IEEE-754 single precision."""
        self._buf += struct.pack(">f", value)

    def pack_double(self, value: float) -> None:
        """IEEE-754 double precision."""
        self._buf += struct.pack(">d", value)

    def pack_opaque(self, data: bytes) -> None:
        """Variable-length opaque: uint32 length, bytes, pad to 4."""
        self.pack_uint(len(data))
        self._buf += data
        pad = (4 - len(data) % 4) % 4
        if pad:
            self._buf += _PAD[:pad]

    def pack_string(self, text: str) -> None:
        self.pack_opaque(text.encode("utf-8"))

    def pack_double_array(self, values) -> None:
        """Vectorised variable-length array of doubles (the paper's case)."""
        array = np.ascontiguousarray(values, dtype=">f8")
        self.pack_uint(array.size)
        self._buf += array.tobytes()

    def pack_ndarray(self, array: np.ndarray) -> None:
        """Homogeneous numeric array with dtype and shape on the wire.

        Layout: uint32 dtype-code, uint32 ndim, ndim × uint32 dims, raw
        big-endian buffer (no padding needed — all supported itemsizes keep
        4-byte alignment except [u]int8/16, which we pad like opaque).
        """
        array = np.asarray(array)
        code = _DTYPE_CODE_CACHE.get(array.dtype)
        if code is None:
            name = array.dtype.name
            if name not in _DTYPE_CODES:
                raise EncodingError(f"unsupported array dtype: {array.dtype}")
            code = _DTYPE_CODE_CACHE[array.dtype] = _DTYPE_CODES[name]
        self.pack_uint(code)
        self.pack_uint(array.ndim)
        for dim in array.shape:
            self.pack_uint(dim)
        payload = np.ascontiguousarray(array, dtype=array.dtype.newbyteorder(">")).tobytes()
        self.pack_uint(len(payload))
        self._buf += payload
        pad = (4 - len(payload) % 4) % 4
        if pad:
            self._buf += _PAD[:pad]


class XdrDecoder:
    """Streaming XDR reader over a bytes-like buffer."""

    def __init__(self, data: bytes):
        self._data = memoryview(data)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        """True when the whole buffer was consumed."""
        return self._pos == len(self._data)

    def _take(self, count: int) -> memoryview:
        if self._pos + count > len(self._data):
            raise EncodingError(
                f"XDR underflow: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        view = self._data[self._pos : self._pos + count]
        self._pos += count
        return view

    def unpack_int(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def unpack_hyper(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        return self.unpack_int() != 0

    def unpack_float(self) -> float:
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def unpack_opaque_view(self) -> memoryview:
        """Zero-copy view of a variable-length opaque (shares the buffer)."""
        length = self.unpack_uint()
        data = self._take(length)
        pad = (4 - length % 4) % 4
        if pad:
            self._take(pad)
        return data

    def unpack_opaque(self) -> bytes:
        return bytes(self.unpack_opaque_view())

    def unpack_string(self) -> str:
        # decodes straight off the buffer view: no intermediate bytes() copy
        return str(self.unpack_opaque_view(), "utf-8")

    def unpack_double_array(self) -> np.ndarray:
        count = self.unpack_uint()
        raw = self._take(count * 8)
        return np.frombuffer(raw, dtype=">f8").astype(np.float64, copy=True)

    def unpack_ndarray(self) -> np.ndarray:
        code = self.unpack_uint()
        if code not in _CODE_DTYPES:
            raise EncodingError(f"unknown array dtype code: {code}")
        dtype = _CODE_DTYPES[code]
        ndim = self.unpack_uint()
        if ndim > 32:
            raise EncodingError(f"implausible array rank: {ndim}")
        shape = tuple(self.unpack_uint() for _ in range(ndim))
        nbytes = self.unpack_uint()
        raw = self._take(nbytes)
        pad = (4 - nbytes % 4) % 4
        if pad:
            self._take(pad)
        array = np.frombuffer(raw, dtype=dtype.newbyteorder(">"))
        expected = math.prod(shape) if shape else 1
        if ndim == 0:
            if array.size != 1:
                raise EncodingError("scalar array payload has wrong size")
            return array.astype(dtype, copy=True).reshape(())
        if array.size != expected:
            raise EncodingError(
                f"array payload size {array.size} != shape product {expected}"
            )
        return array.astype(dtype, copy=True).reshape(shape)


# -- tagged value layer -------------------------------------------------------


def _pack_tagged(enc: XdrEncoder, value: Any) -> None:
    if value is None:
        enc.pack_int(_TAG_VOID)
    elif isinstance(value, bool):
        enc.pack_int(_TAG_BOOL)
        enc.pack_bool(value)
    elif isinstance(value, int):
        enc.pack_int(_TAG_INT)
        enc.pack_hyper(value)
    elif isinstance(value, float):
        enc.pack_int(_TAG_DOUBLE)
        enc.pack_double(value)
    elif isinstance(value, str):
        enc.pack_int(_TAG_STRING)
        enc.pack_string(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        enc.pack_int(_TAG_OPAQUE)
        enc.pack_opaque(bytes(value))
    elif isinstance(value, np.ndarray):
        enc.pack_int(_TAG_NDARRAY)
        enc.pack_ndarray(value)
    elif isinstance(value, np.generic):
        # numpy scalar: encode as 0-d array to preserve dtype
        enc.pack_int(_TAG_NDARRAY)
        enc.pack_ndarray(np.asarray(value))
    elif isinstance(value, (list, tuple)):
        as_array = _try_as_numeric_array(value)
        if as_array is not None:
            enc.pack_int(_TAG_NDARRAY)
            enc.pack_ndarray(as_array)
        else:
            enc.pack_int(_TAG_LIST)
            enc.pack_uint(len(value))
            for item in value:
                _pack_tagged(enc, item)
    elif isinstance(value, dict):
        enc.pack_int(_TAG_DICT)
        enc.pack_uint(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(f"XDR dict keys must be str, got {type(key).__name__}")
            enc.pack_string(key)
            _pack_tagged(enc, item)
    else:
        raise EncodingError(f"cannot XDR-encode {type(value).__name__}")


def _try_as_numeric_array(seq) -> np.ndarray | None:
    """Lists of uniform numbers go down the vectorised array path."""
    if not seq:
        return None
    if all(isinstance(v, float) for v in seq):
        return np.asarray(seq, dtype=np.float64)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in seq):
        try:
            return np.asarray(seq, dtype=np.int64)
        except OverflowError:
            return None
    return None


def _unpack_tagged(dec: XdrDecoder) -> Any:
    tag = dec.unpack_int()
    if tag == _TAG_VOID:
        return None
    if tag == _TAG_BOOL:
        return dec.unpack_bool()
    if tag == _TAG_INT:
        return dec.unpack_hyper()
    if tag == _TAG_DOUBLE:
        return dec.unpack_double()
    if tag == _TAG_FLOAT32:
        return dec.unpack_float()
    if tag == _TAG_STRING:
        return dec.unpack_string()
    if tag == _TAG_OPAQUE:
        return dec.unpack_opaque()
    if tag == _TAG_NDARRAY:
        return dec.unpack_ndarray()
    if tag == _TAG_LIST:
        count = dec.unpack_uint()
        return [_unpack_tagged(dec) for _ in range(count)]
    if tag == _TAG_DICT:
        count = dec.unpack_uint()
        return {dec.unpack_string(): _unpack_tagged(dec) for _ in range(count)}
    raise EncodingError(f"unknown XDR value tag: {tag}")


def pack_value(value: Any) -> bytes:
    """Encode one tagged value to bytes."""
    enc = XdrEncoder()
    _pack_tagged(enc, value)
    return enc.getvalue()


def unpack_value(data: bytes) -> Any:
    """Decode one tagged value; the buffer must be fully consumed."""
    dec = XdrDecoder(data)
    value = _unpack_tagged(dec)
    if not dec.done():
        raise EncodingError(f"{dec.remaining()} trailing bytes after XDR value")
    return value


# -- RPC message layer ----------------------------------------------------------

_CALL = 0
_REPLY_OK = 1
_REPLY_FAULT = 2


def pack_call(target: str, operation: str, args: tuple | list) -> bytes:
    """Encode an invocation: target port/instance, operation name, arguments."""
    enc = XdrEncoder()
    enc.pack_int(_CALL)
    enc.pack_string(target)
    enc.pack_string(operation)
    enc.pack_uint(len(args))
    for arg in args:
        _pack_tagged(enc, arg)
    return enc.getvalue()


def make_call_prefix(target: str, operation: str) -> bytes:
    """Pre-encode the constant head of a call message.

    The (kind, target, operation) triple is identical for every invocation
    of one operation through one stub; encoding it once and reusing it via
    :func:`pack_call_from_prefix` is the cached *marshalling plan* the stub
    layer keeps per operation.
    """
    enc = XdrEncoder()
    enc.pack_int(_CALL)
    enc.pack_string(target)
    enc.pack_string(operation)
    return enc.getvalue()


def pack_call_from_prefix(prefix: bytes, args: tuple | list) -> memoryview:
    """Encode a call from a :func:`make_call_prefix` head plus *args*.

    Returns a zero-copy view of the encoder buffer (safe to hand to a
    transport, which only reads it; every retry resends the same bytes).
    """
    enc = XdrEncoder()
    enc._buf += prefix
    enc.pack_uint(len(args))
    for arg in args:
        _pack_tagged(enc, arg)
    return enc.view()


def unpack_call(data: bytes) -> tuple[str, str, list]:
    """Decode an invocation produced by :func:`pack_call`."""
    dec = XdrDecoder(data)
    kind = dec.unpack_int()
    if kind != _CALL:
        raise EncodingError(f"expected XDR call message, got kind {kind}")
    target = dec.unpack_string()
    operation = dec.unpack_string()
    argc = dec.unpack_uint()
    args = [_unpack_tagged(dec) for _ in range(argc)]
    if not dec.done():
        raise EncodingError("trailing bytes after XDR call")
    return target, operation, args


def pack_reply(result: Any = None, fault: str | None = None) -> bytes:
    """Encode a reply: either a result value or a fault string."""
    enc = XdrEncoder()
    if fault is not None:
        enc.pack_int(_REPLY_FAULT)
        enc.pack_string(fault)
    else:
        enc.pack_int(_REPLY_OK)
        _pack_tagged(enc, result)
    return enc.getvalue()


def unpack_reply(data: bytes) -> Any:
    """Decode a reply; raises :class:`EncodingError` wrapping remote faults."""
    dec = XdrDecoder(data)
    kind = dec.unpack_int()
    if kind == _REPLY_FAULT:
        raise EncodingError(f"remote fault: {dec.unpack_string()}")
    if kind != _REPLY_OK:
        raise EncodingError(f"expected XDR reply message, got kind {kind}")
    value = _unpack_tagged(dec)
    if not dec.done():
        raise EncodingError("trailing bytes after XDR reply")
    return value
