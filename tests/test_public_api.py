"""Public API surface: every advertised name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.xmlkit",
    "repro.encoding",
    "repro.soap",
    "repro.wsdl",
    "repro.transport",
    "repro.netsim",
    "repro.bindings",
    "repro.registry",
    "repro.runner",
    "repro.container",
    "repro.dvm",
    "repro.recovery",
    "repro.core",
    "repro.plugins",
    "repro.scenario",
    "repro.tools",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestApiSurface:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_module_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"

    def test_public_classes_documented(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "2.0.0"

    def test_quickstart_names(self):
        # the README quickstart must keep working
        from repro import HarnessDvm, lan  # noqa: F401
        from repro.plugins import BASELINE_PLUGINS, MatMul  # noqa: F401

        assert len(BASELINE_PLUGINS) == 4
