"""Process-wide metrics: lock-striped counters, gauges, histograms.

Instruments live in a :class:`MetricsRegistry` keyed by dotted name
(``stub.xdr.transit_us``, ``tcp.client.channels`` — DESIGN.md §10 has the
naming scheme).  The module-level :data:`registry` is the process default
every instrumented layer reports into; tests and the benchmark A/B call
:meth:`MetricsRegistry.reset`, which zeroes instruments *in place* so
references cached on hot paths stay valid.

Counters and histograms are striped over a small set of independently
locked cells indexed by thread id, so concurrent writers on different
threads rarely contend; reads merge the stripes.  Gauges are single-cell
(they record levels, not rates, and are updated at pool/lifecycle events
rather than per call).

When tracing is enabled, histograms also capture **exemplars**: the
(trace id, value) of observations that land in a bucket above every
bucket seen so far, so a fat tail in a snapshot links directly to a
dumpable trace (DESIGN.md §12 has the capture rules).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from threading import get_ident

import repro.obs.trace as _trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramGroup",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_US",
    "percentile_from_counts",
    "registry",
]

_STRIPES = 8  # power of two: thread id -> stripe by mask
_MASK = _STRIPES - 1

#: Default histogram bounds, in microseconds: a 1-2.5-5 ladder from 5 µs to
#: 1 s.  Everything above the last bound lands in the implicit +inf bucket.
DEFAULT_BUCKETS_US = (
    5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
)


def percentile_from_counts(bounds, counts, count, lo, hi, p: float) -> float:
    """Linear-interpolated quantile over fixed-bucket counts.

    *bounds* are the finite upper bounds, *counts* has one extra entry for
    the implicit +inf bucket, *lo*/*hi* are the observed min/max.  This is
    the single quantile definition for the whole observability stack:
    :class:`Histogram` snapshots use it directly, and the cluster merge
    (:mod:`repro.obs.cluster`) reuses it over summed per-node buckets so a
    merged p99 is bit-identical to what one histogram holding every
    observation would report.
    """
    if not count:
        return 0.0
    rank = max(1, math.ceil(p * count))
    seen = 0
    for i, c in enumerate(counts):
        if not c:
            continue
        if seen + c >= rank:
            upper = bounds[i] if i < len(bounds) else hi
            lower = bounds[i - 1] if i > 0 else min(lo, upper)
            lower = min(lower, upper)
            return lower + (upper - lower) * ((rank - seen) / c)
        seen += c
    return hi  # unreachable unless counts drifted mid-merge


class _Cell:
    """One stripe: a lock and the state it guards."""

    __slots__ = ("lock", "value")

    def __init__(self):
        self.lock = threading.Lock()
        self.value = 0


class Counter:
    """A monotonically increasing count, striped across threads."""

    __slots__ = ("name", "_cells")

    def __init__(self, name: str):
        self.name = name
        self._cells = tuple(_Cell() for _ in range(_STRIPES))

    def inc(self, n: int = 1) -> None:
        # manual acquire/release rather than ``with``: nothing between
        # them can raise, and this runs 2-3x on every traced call
        cell = self._cells[get_ident() & _MASK]
        lock = cell.lock
        lock.acquire()
        cell.value += n
        lock.release()

    def value(self) -> int:
        total = 0
        for cell in self._cells:
            with cell.lock:
                total += cell.value
        return total

    def reset(self) -> None:
        for cell in self._cells:
            with cell.lock:
                cell.value = 0

    def export(self):
        return {"type": "counter", "value": self.value()}


class Gauge:
    """A level that can go up and down (pool sizes, in-flight counts)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def export(self):
        return {"type": "gauge", "value": self.value()}


class _HistCell:
    """One histogram stripe: bucket counts plus running sum/min/max."""

    __slots__ = ("lock", "counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int):
        self.lock = threading.Lock()
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def zero(self) -> None:
        self.counts = [0] * len(self.counts)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram:
    """Fixed-bucket histogram (upper bounds + implicit +inf), striped.

    ``observe`` is the hot path: one ``bisect`` and one short lock hold on
    this thread's stripe.  Percentiles are estimated at snapshot time by
    linear interpolation inside the winning bucket — good to a bucket
    width, which is what fixed buckets buy.

    With tracing enabled, an observation landing in a bucket strictly
    above every previously-exemplified bucket captures the current trace
    id as that bucket's **exemplar** — a rising high-water ladder, so the
    capture cost is a handful of events per histogram lifetime, and the
    check itself is one attribute read and one compare per observe (and
    only the compare when tracing is off).
    """

    __slots__ = ("name", "bounds", "_cells", "exemplars", "_exemplar_high")

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS_US):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        n = len(self.bounds) + 1  # + the +inf bucket
        self._cells = tuple(_HistCell(n) for _ in range(_STRIPES))
        self.exemplars: dict[int, tuple[str, float]] = {}
        self._exemplar_high = -1

    def observe(self, value: float) -> None:
        # bisect before taking the lock (it is the only call that can
        # raise on a bad value); manual acquire/release because the
        # guarded body is straight-line arithmetic and ``observe`` runs
        # five times per traced call
        index = bisect_left(self.bounds, value)
        if _trace.ENABLED and index > self._exemplar_high:
            self._note_exemplar(index, value)
        cell = self._cells[get_ident() & _MASK]
        lock = cell.lock
        lock.acquire()
        cell.counts[index] += 1
        cell.count += 1
        cell.total += value
        if value < cell.min:
            cell.min = value
        if value > cell.max:
            cell.max = value
        lock.release()

    def _note_exemplar(self, index: int, value: float) -> None:
        """Capture the current trace id for a bucket-crossing outlier.

        Unlocked on purpose: dict stores are GIL-atomic, and a lost race
        merely keeps a different (equally valid) exemplar.  Observations
        on threads without an active context (e.g. a finalizer that did
        not re-activate its span) are skipped without raising the ladder,
        so a later attributable outlier can still claim the bucket.
        """
        ctx = _trace.current()
        if ctx is None:
            return
        self._exemplar_high = index
        self.exemplars[index] = (ctx.trace_id, value)

    def _merge(self):
        counts = [0] * (len(self.bounds) + 1)
        count, total = 0, 0.0
        lo, hi = math.inf, -math.inf
        for cell in self._cells:
            with cell.lock:
                for i, c in enumerate(cell.counts):
                    counts[i] += c
                count += cell.count
                total += cell.total
                lo = min(lo, cell.min)
                hi = max(hi, cell.max)
        return counts, count, total, lo, hi

    @property
    def count(self) -> int:
        return self._merge()[1]

    def percentile(self, p: float) -> float:
        """Estimated value at quantile *p* in [0, 1] (0.0 when empty)."""
        counts, count, _total, lo, hi = self._merge()
        return percentile_from_counts(self.bounds, counts, count, lo, hi, p)

    def _percentile_from(self, counts, count, lo, hi, p: float) -> float:
        return percentile_from_counts(self.bounds, counts, count, lo, hi, p)

    def reset(self) -> None:
        for cell in self._cells:
            with cell.lock:
                cell.zero()
        self.exemplars.clear()
        self._exemplar_high = -1

    def export(self):
        counts, count, total, lo, hi = self._merge()
        bounds = self.bounds
        data = {
            "type": "histogram",
            "count": count,
            "sum": round(total, 3),
            "min": round(lo, 3) if count else 0.0,
            "max": round(hi, 3) if count else 0.0,
            "p50": round(percentile_from_counts(bounds, counts, count, lo, hi, 0.50), 3),
            "p99": round(percentile_from_counts(bounds, counts, count, lo, hi, 0.99), 3),
            "buckets": {
                **{str(b): counts[i] for i, b in enumerate(bounds)},
                "+inf": counts[-1],
            },
        }
        if self.exemplars:
            data["exemplars"] = {
                (str(bounds[i]) if i < len(bounds) else "+inf"): {
                    "trace_id": trace_id,
                    "value": round(value, 3),
                }
                for i, (trace_id, value) in sorted(dict(self.exemplars).items())
            }
        return data


class _GroupCell:
    """One group stripe: a lock plus every member series it guards."""

    __slots__ = ("lock", "counts", "count", "total", "min", "max")

    def __init__(self, k: int, n_buckets: int):
        self.lock = threading.Lock()
        self.counts = [[0] * n_buckets for _ in range(k)]
        self.count = [0] * k
        self.total = [0.0] * k
        self.min = [math.inf] * k
        self.max = [-math.inf] * k


class HistogramGroup:
    """Several same-bounds histograms observed together in one update.

    A traced call times multiple phases and records them all at its end —
    on the coldest stretch of the whole call path, right after a blocking
    wait.  Observing k separate :class:`Histogram` objects there costs k
    thread-id hashes, k lock rounds, and touches k disjoint object graphs;
    the group keeps every member's series in one striped cell, so
    :meth:`observe` is one hash, one lock, and a few adjacent lists.

    Members are full read-API histograms (count / percentile / export /
    reset) registered under their own names — snapshots cannot tell the
    difference.
    """

    __slots__ = ("names", "bounds", "_cells", "members")

    def __init__(self, names, bounds=DEFAULT_BUCKETS_US):
        self.names = tuple(names)
        if not self.names:
            raise ValueError("histogram group needs at least one member")
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        k, n = len(self.names), len(self.bounds) + 1
        self._cells = tuple(_GroupCell(k, n) for _ in range(_STRIPES))
        self.members = tuple(
            _GroupHistogram(self, i, name) for i, name in enumerate(self.names)
        )

    def observe(self, *values: float) -> None:
        """One observation per member, in declaration order."""
        bounds = self.bounds
        indexes = [bisect_left(bounds, v) for v in values]  # may raise: pre-lock
        if _trace.ENABLED:
            members = self.members
            for j, index in enumerate(indexes):
                member = members[j]
                if index > member._exemplar_high:
                    member._note_exemplar(index, values[j])
        cell = self._cells[get_ident() & _MASK]
        lock = cell.lock
        lock.acquire()
        counts, count, total = cell.counts, cell.count, cell.total
        low, high = cell.min, cell.max
        i = 0
        for v in values:
            counts[i][indexes[i]] += 1
            count[i] += 1
            total[i] += v
            if v < low[i]:
                low[i] = v
            if v > high[i]:
                high[i] = v
            i += 1
        lock.release()

    def _observe_one(self, index: int, value: float) -> None:
        bucket = bisect_left(self.bounds, value)
        if _trace.ENABLED:
            member = self.members[index]
            if bucket > member._exemplar_high:
                member._note_exemplar(bucket, value)
        cell = self._cells[get_ident() & _MASK]
        lock = cell.lock
        lock.acquire()
        cell.counts[index][bucket] += 1
        cell.count[index] += 1
        cell.total[index] += value
        if value < cell.min[index]:
            cell.min[index] = value
        if value > cell.max[index]:
            cell.max[index] = value
        lock.release()

    def _merge_one(self, index: int):
        counts = [0] * (len(self.bounds) + 1)
        count, total = 0, 0.0
        lo, hi = math.inf, -math.inf
        for cell in self._cells:
            with cell.lock:
                for i, c in enumerate(cell.counts[index]):
                    counts[i] += c
                count += cell.count[index]
                total += cell.total[index]
                lo = min(lo, cell.min[index])
                hi = max(hi, cell.max[index])
        return counts, count, total, lo, hi

    def _reset_one(self, index: int) -> None:
        n = len(self.bounds) + 1
        for cell in self._cells:
            with cell.lock:
                cell.counts[index] = [0] * n
                cell.count[index] = 0
                cell.total[index] = 0.0
                cell.min[index] = math.inf
                cell.max[index] = -math.inf


class _GroupHistogram(Histogram):
    """One member series of a :class:`HistogramGroup`.

    Subclasses :class:`Histogram` for its read API (count, percentiles,
    export all route through ``_merge``) but stores nothing itself — the
    series lives in the group's striped cells.
    """

    __slots__ = ("_group", "_index")

    def __init__(self, group: HistogramGroup, index: int, name: str):
        self._group = group
        self._index = index
        self.name = name
        self.bounds = group.bounds
        self._cells = ()  # storage lives in the group
        self.exemplars = {}
        self._exemplar_high = -1

    def observe(self, value: float) -> None:
        self._group._observe_one(self._index, value)

    def _merge(self):
        return self._group._merge_one(self._index)

    def reset(self) -> None:
        self._group._reset_one(self._index)
        self.exemplars.clear()
        self._exemplar_high = -1


class MetricsRegistry:
    """Name → instrument table; instruments are created on first use.

    Asking for an existing name with a mismatched kind raises — metric
    names are a schema, and silent kind changes would corrupt snapshots.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._groups: dict[tuple[str, ...], HistogramGroup] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS_US) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def histogram_group(self, names, bounds=DEFAULT_BUCKETS_US) -> HistogramGroup:
        """The :class:`HistogramGroup` for *names* (created on first use);
        each member is registered under its own name and appears in
        snapshots as an ordinary histogram."""
        names = tuple(names)
        with self._lock:
            group = self._groups.get(names)
            if group is None:
                for name in names:
                    if name in self._metrics:
                        raise TypeError(
                            f"metric {name!r} already registered outside the group"
                        )
                group = HistogramGroup(names, bounds)
                for member in group.members:
                    self._metrics[member.name] = member
                self._groups[names] = group
        return group

    def snapshot(self, prefix: str = "") -> dict:
        """Every instrument (optionally name-filtered) as plain dicts."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: metric.export()
            for name, metric in metrics
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Zero every instrument *in place* (cached references stay valid)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-wide default registry all instrumented layers report into.
registry = MetricsRegistry()
