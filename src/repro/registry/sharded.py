"""Consistent-hash sharded lookup: the registry leg of the C10 crossover.

Section 5 frames discovery as a spectrum between one centralized registry
(single point of failure, serialization bottleneck) and full flooding
(every query is O(n) messages).  At gossip-fleet scale neither end works:
the central host saturates, and flooding 10k hosts per lookup is absurd.
:class:`ShardedRegistry` is the scale-out point on that spectrum —

* **Placement** is a consistent-hash ring (:class:`HashRing`): blake2b
  positions ``vnodes`` virtual points per host on a 64-bit circle, and a
  service name's shard is the first ``replication`` distinct hosts
  clockwise of its hash.  Adding or removing one host remaps only ~1/n of
  the keyspace — :meth:`rebalance` then moves exactly those entries.
* **Registration** writes the WSDL to all R owners (each leg charged to
  the fabric), so any single shard host can die without losing the name.
* **By-name lookup** asks the owners in ring order and returns the first
  answer — one round trip in the common case, a replica fallback when the
  primary is down.  Exhausting reachable owners raises a *typed*
  :class:`~repro.util.errors.ServiceNotFoundError`; a fully dark shard
  (all R owners down) raises :class:`~repro.util.errors.RegistryError`
  naming the dead replicas.  Callers never hang and never see a KeyError —
  the PR 5 error-taxonomy contract.

Expression queries (:meth:`discover`) still scatter to every host — an
XPath match can live anywhere — so the scheme's sweet spot is exactly what
the DVM needs: cheap point lookups of well-known component names.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.netsim.fabric import HostDownError, VirtualNetwork
from repro.obs import metrics as _metrics
from repro.registry.distributed import _LookupNode, _WSDL_CT, DistributedLookup
from repro.transport.base import TransportMessage
from repro.util.errors import RegistryError, ServiceNotFoundError
from repro.wsdl.io import document_from_string, document_to_string
from repro.wsdl.model import WsdlDocument

__all__ = ["HashRing", "ShardedRegistry"]

_NAME_CT = "application/x-harness-name"

_LOOKUPS = _metrics.registry.counter("registry.shard.lookups")
_FALLBACKS = _metrics.registry.counter("registry.shard.replica_fallbacks")
_REBALANCED = _metrics.registry.counter("registry.shard.rebalanced")


def _point(data: str) -> int:
    """A position on the 64-bit hash circle (blake2b, stable across runs)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes.

    Each host owns ``vnodes`` points on the circle; a key's owners are the
    first *r* distinct hosts clockwise of its hash.  With ~64 vnodes the
    per-host load imbalance stays within a few percent, and membership
    changes remap only the arcs adjacent to the changed host's points.
    """

    def __init__(self, hosts=(), vnodes: int = 64):
        if vnodes < 1:
            raise RegistryError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted hash positions
        self._owners: list[str] = []  # parallel: host at each position
        self._hosts: set[str] = set()
        # batch construction: hash everything, sort once — O(V log V) where
        # the incremental add() path would pay O(V^2) list inserts at fleet
        # scale (10k hosts x 64 vnodes)
        pairs: list[tuple[int, str]] = []
        for host in dict.fromkeys(hosts):
            self._hosts.add(host)
            pairs.extend(
                (_point(f"{host}#{v}"), host) for v in range(self.vnodes)
            )
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [host for _, host in pairs]

    def add(self, host: str) -> None:
        if host in self._hosts:
            return
        self._hosts.add(host)
        for v in range(self.vnodes):
            point = _point(f"{host}#{v}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, host)

    def remove(self, host: str) -> None:
        if host not in self._hosts:
            return
        self._hosts.discard(host)
        keep = [i for i, owner in enumerate(self._owners) if owner != host]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def hosts(self) -> set[str]:
        return set(self._hosts)

    def owners(self, key: str, r: int = 1) -> list[str]:
        """The first *r* distinct hosts clockwise of ``hash(key)``."""
        if not self._points:
            raise RegistryError("hash ring is empty")
        r = min(r, len(self._hosts))
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        found: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == r:
                    break
        return found

    def owner(self, key: str) -> str:
        return self.owners(key, 1)[0]

    def __len__(self) -> int:
        return len(self._hosts)


class _ShardNode(_LookupNode):
    """A lookup node that additionally answers by-name point queries."""

    def _serve(self, message: TransportMessage) -> TransportMessage:
        if message.content_type == _NAME_CT:
            name = message.payload.decode("utf-8")
            try:
                entry = self.registry.lookup_name(name)
            except ServiceNotFoundError:
                return TransportMessage(_WSDL_CT, b"")
            payload = document_to_string(entry.document, indent=False).encode("utf-8")
            return TransportMessage(_WSDL_CT, payload)
        return super()._serve(message)


class ShardedRegistry(DistributedLookup):
    """R-way replicated, consistent-hash placed service registry."""

    node_class = _ShardNode

    def __init__(self, network: VirtualNetwork, replication: int = 2, vnodes: int = 64):
        if replication < 1:
            raise RegistryError("replication factor must be >= 1")
        super().__init__(network)
        self.replication = replication
        self.ring = HashRing(self.nodes, vnodes=vnodes)

    # -- placement ---------------------------------------------------------------

    def owners(self, service_name: str) -> list[str]:
        """The ``replication`` hosts responsible for *service_name*."""
        return self.ring.owners(service_name, self.replication)

    # -- the scheme --------------------------------------------------------------

    def register(self, host_name: str, document: WsdlDocument) -> None:
        """Write the WSDL to every shard owner (local leg free, rest charged)."""
        self._node(host_name)  # typed fault for unknown hosts
        placed = 0
        down: list[str] = []
        for owner in self.owners(document.name):
            if owner == host_name:
                self._node(owner).registry.register(document)
                placed += 1
                continue
            try:
                self._send_wsdl(host_name, owner, document)
                placed += 1
            except HostDownError:
                down.append(owner)
        if placed == 0:
            raise RegistryError(
                f"no shard owner reachable for {document.name!r} (down: {down})"
            )

    def lookup_name(self, host_name: str, service_name: str) -> WsdlDocument:
        """Point lookup: ask the owners in ring order, first answer wins.

        A down owner falls through to the next replica.  All owners
        reachable but none holding the name is a :class:`ServiceNotFoundError`;
        every owner down is a :class:`RegistryError` naming the dark shard.
        """
        self._node(host_name)
        _LOOKUPS.inc()
        owners = self.owners(service_name)
        down: list[str] = []
        for attempt, owner in enumerate(owners):
            if owner == host_name:
                try:
                    entry = self._node(owner).registry.lookup_name(service_name)
                except ServiceNotFoundError:
                    continue
                if attempt:
                    _FALLBACKS.inc()
                return entry.document
            try:
                response = self.network.request(
                    host_name,
                    owner,
                    self.endpoint,
                    TransportMessage(_NAME_CT, service_name.encode("utf-8")),
                )
            except HostDownError:
                down.append(owner)
                continue
            if response.payload:
                if attempt:
                    _FALLBACKS.inc()
                return document_from_string(response.payload)
        if len(down) == len(owners):
            raise RegistryError(
                f"shard for {service_name!r} is dark: all {len(owners)} "
                f"replica(s) down ({down})"
            )
        raise ServiceNotFoundError(
            f"no service {service_name!r} on shard {owners} "
            f"(down: {down or 'none'})"
        )

    def discover(self, host_name: str, expression: str) -> list[WsdlDocument]:
        """Expression scatter: query every live host (matches live anywhere)."""
        results: list[WsdlDocument] = []
        seen: set[str] = set()
        for match in self._node(host_name).registry.find(expression):
            seen.add(match.name)
            results.append(match.document)
        for peer in self.nodes:
            if peer == host_name:
                continue
            try:
                for document in self._query(host_name, peer, expression):
                    if document.name not in seen:
                        seen.add(document.name)
                        results.append(document)
            except HostDownError:
                continue
        return results

    # -- membership and rebalancing ----------------------------------------------

    def add_host(self, host_name: str) -> int:
        """Bring a (new) fabric host into the ring; returns entries moved."""
        if host_name not in self.nodes:
            self.nodes[host_name] = self.node_class(self, host_name)
        self.ring.add(host_name)
        return self.rebalance()

    def remove_host(self, host_name: str) -> int:
        """Take a host out of the ring (crashed or retired); its entries
        keep serving from the surviving replicas.  Returns entries copied
        while restoring the replication factor."""
        self.nodes.pop(host_name, None)
        self.ring.remove(host_name)
        return self.rebalance()

    def rebalance(self) -> int:
        """Re-place every entry per the current ring; returns copies made.

        Each transfer is charged to the fabric from the holding host to the
        new owner.  Entries a host no longer owns are dropped *after* all
        owners hold a copy — the ring never under-replicates mid-move.
        Unreachable owners are skipped; the next rebalance retries them.
        """
        moved = 0
        # copy phase: every entry to every owner that lacks it
        for host, node in list(self.nodes.items()):
            for entry in node.registry.entries():
                for owner in self.owners(entry.name):
                    if owner == host:
                        continue
                    target = self._node(owner)
                    try:
                        target.registry.lookup_name(entry.name)
                        continue  # replica already present
                    except ServiceNotFoundError:
                        pass
                    try:
                        self._send_wsdl(host, owner, entry.document)
                        moved += 1
                        _REBALANCED.inc()
                    except HostDownError:
                        continue
        # drop phase: shed entries whose shard moved away from this host
        for host, node in list(self.nodes.items()):
            for entry in node.registry.entries():
                if host not in self.owners(entry.name):
                    node.registry.unregister(entry.key)
        return moved
