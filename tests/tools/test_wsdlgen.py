"""wsdlgen — including the F7 (WSTime) and F8 (MatMul) figure reproductions."""

import numpy as np
import pytest

from repro.plugins.services import CounterService, MatMul, WSTime
from repro.tools.wsdlgen import generate_wsdl, service_operations, xsd_type_for
from repro.util.errors import WsdlError
from repro.wsdl.extensions import (
    LocalBindingExt,
    LocalInstanceBindingExt,
    SoapBindingExt,
    SoapOperationExt,
    XdrBindingExt,
)
from repro.wsdl.io import document_from_string, document_to_element, document_to_string
from repro.xmlkit import XmlQuery


class TestTypeMapping:
    @pytest.mark.parametrize(
        "annotation,expected",
        [
            (bool, "xsd:boolean"),
            (int, "xsd:long"),
            (float, "xsd:double"),
            (str, "xsd:string"),
            (bytes, "xsd:base64Binary"),
            (np.ndarray, "harness:array"),
            (list, "soapenc:Array"),
            (dict, "harness:Struct"),
            (None, "xsd:anyType"),
            (object, "xsd:anyType"),
        ],
    )
    def test_mapping(self, annotation, expected):
        assert xsd_type_for(annotation) == expected

    def test_bool_before_int(self):
        # bool is a subclass of int; must map to boolean
        assert xsd_type_for(bool) == "xsd:boolean"

    def test_generic_alias(self):
        assert xsd_type_for(list[float]) == "soapenc:Array"


class TestServiceOperations:
    def test_matmul(self):
        assert service_operations(MatMul) == ["getResult", "multiply"]

    def test_no_operations_rejected(self):
        class Empty:
            _private = 1

        with pytest.raises(WsdlError):
            service_operations(Empty)

    def test_inherited_methods_included(self):
        class Base:
            def inherited(self):
                return 1

        class Derived(Base):
            def own(self):
                return 2

        ops = service_operations(Derived)
        assert "own" in ops and "inherited" in ops


class TestFigure7WSTime:
    """The paper's Figure 7: WSDL for the trivial Time service."""

    @pytest.fixture
    def doc(self):
        return generate_wsdl(WSTime, bindings=("soap", "local"))

    def test_validates(self, doc):
        doc.validate()

    def test_abstract_part_shape(self, doc):
        # messages, port types, operations — the figure's abstract half
        assert doc.message("getTimeRequest").parts == ()
        assert doc.message("getTimeResponse").parts[0].type_name == "xsd:string"
        port_type = doc.port_type("WSTimePortType")
        op = port_type.operation("getTime")
        assert op.input_message == "getTimeRequest"
        assert op.output_message == "getTimeResponse"

    def test_concrete_part_has_soap_and_java_style_bindings(self, doc):
        soap = doc.binding("WSTimeSoapBinding")
        assert isinstance(soap.extensions[0], SoapBindingExt)
        local = doc.binding("WSTimeLocalBinding")
        ext = local.extensions[0]
        assert isinstance(ext, LocalBindingExt)
        # the figure's java binding names the implementing class
        assert ext.type_name == "repro.plugins.services:WSTime"

    def test_xml_round_trip(self, doc):
        assert document_from_string(document_to_string(doc)) == doc

    def test_figure_structure_queryable(self, doc):
        root = document_to_element(doc)
        assert XmlQuery("//operation[@name='getTime']").exists(root)
        assert XmlQuery("//localBinding").exists(root)
        # definition order of the class's operations is preserved
        assert XmlQuery("/message/@name").values(root) == [
            "getTimeRequest", "getTimeResponse",
            "getEpochSecondsRequest", "getEpochSecondsResponse",
        ]


class TestFigure8MatMul:
    """The paper's Figure 8: WSDL for the MatMul service (SOAP + local)."""

    @pytest.fixture
    def doc(self):
        return generate_wsdl(MatMul, bindings=("soap", "local"))

    def test_get_result_signature(self, doc):
        request = doc.message("getResultRequest")
        assert [p.name for p in request.parts] == ["mata", "matb"]
        assert all(p.type_name == "harness:array" for p in request.parts)
        response = doc.message("getResultResponse")
        assert response.parts[0].type_name == "harness:array"

    def test_soap_operations_carry_soap_action(self, doc):
        binding = doc.binding("MatMulSoapBinding")
        actions = {
            bop.name: bop.extensions[0].soap_action
            for bop in binding.operations
            if isinstance(bop.extensions[0], SoapOperationExt)
        }
        assert "getResult" in actions
        assert actions["getResult"].endswith("#getResult")

    def test_dual_binding_like_figure(self, doc):
        assert doc.binding("MatMulSoapBinding").protocol == "soap"
        assert doc.binding("MatMulLocalBinding").protocol == "local"


class TestOtherBindings:
    def test_xdr_binding(self):
        doc = generate_wsdl(MatMul, bindings=("xdr",))
        ext = doc.binding("MatMulXdrBinding").extensions[0]
        assert isinstance(ext, XdrBindingExt)

    def test_local_instance_requires_id(self):
        with pytest.raises(WsdlError):
            generate_wsdl(CounterService, bindings=("local-instance",))
        doc = generate_wsdl(CounterService, bindings=("local-instance",), instance_id="c#1")
        ext = doc.binding("CounterServiceInstanceBinding").extensions[0]
        assert isinstance(ext, LocalInstanceBindingExt)
        assert ext.instance_id == "c#1"

    def test_unknown_binding_kind(self):
        with pytest.raises(WsdlError):
            generate_wsdl(MatMul, bindings=("iiop",))

    def test_custom_names(self):
        doc = generate_wsdl(MatMul, service_name="FastMM", target_namespace="urn:mm")
        assert doc.name == "FastMM"
        assert doc.target_namespace == "urn:mm"
        assert doc.port_type("FastMMPortType")

    def test_documentation_from_docstring(self):
        doc = generate_wsdl(WSTime)
        assert "Figure 7" in doc.documentation

    def test_untyped_params_any_type(self):
        class Loose:
            def op(self, anything):
                return anything

        doc = generate_wsdl(Loose)
        assert doc.message("opRequest").parts[0].type_name == "xsd:anyType"
