"""Observability: process-wide metrics and cross-transport trace propagation.

The paper's DVM spreads one logical invocation over containers, codecs, and
transports; this package makes that path *visible* without changing it:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  lock-striped counters, gauges, and fixed-bucket histograms, exported as a
  plain-dict snapshot (the ``metrics`` console command and the
  ``dvm.metrics_snapshot()`` RPC are views over it).
* :mod:`repro.obs.trace` — a :class:`TraceContext` (trace id, span id,
  baggage) carried across every transport: a flag-extended block on TCP
  protocol-v2 frames, an ``X-Repro-Trace`` header on HTTP, a SOAP header
  block on envelopes, and plain contextvar flow for the in-process and
  simulated transports.

Tracing is off by default and costs one module-attribute check per call
when disabled (``benchmarks/bench_obs_overhead.py`` keeps both numbers
honest).

Built on those two, the cluster plane (DESIGN.md §12):

* :mod:`repro.obs.cluster` — a :class:`ClusterCollector` pulling per-node
  snapshots over RPC with typed staleness markers, an exact bucket merge,
  and Prometheus text exposition;
* :mod:`repro.obs.slo` — declarative SLO specs evaluated as multi-window
  error-budget burn rates over merged snapshots;
* :mod:`repro.obs.recorder` — a :class:`FlightRecorder` ring of recent
  spans/metric deltas/events, dumped when something breaks.
"""

from repro.obs.cluster import (
    ClusterCollector,
    NodeSnapshot,
    NodeStatus,
    merge_metrics,
    prometheus_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_counts,
    registry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import BurnSeries, SloEngine, SloSpec
from repro.obs.trace import (
    Span,
    SpanRecorder,
    TraceContext,
    TraceWireError,
    activate,
    current,
    deactivate,
    enable,
    enabled,
    new_trace,
    recorder,
    use,
)

__all__ = [
    "BurnSeries",
    "ClusterCollector",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeSnapshot",
    "NodeStatus",
    "SloEngine",
    "SloSpec",
    "merge_metrics",
    "percentile_from_counts",
    "prometheus_text",
    "registry",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "TraceWireError",
    "activate",
    "current",
    "deactivate",
    "enable",
    "enabled",
    "new_trace",
    "recorder",
    "use",
]
