"""Exception hierarchy for the HARNESS II framework.

Every error raised by this library derives from :class:`HarnessError` so that
applications embedding a DVM can catch framework failures with a single
``except`` clause, mirroring the single fault model that the paper's
WSDL/SOAP layer exposes to clients (a SOAP ``Fault``).

The hierarchy is deliberately shallow: one subclass per architectural layer
(encoding, transport, binding, registry, container, DVM, plugin) plus a few
cross-cutting conditions (timeouts, name clashes).
"""

from __future__ import annotations

__all__ = [
    "HarnessError",
    "EncodingError",
    "XmlError",
    "WsdlError",
    "SoapFaultError",
    "TransportError",
    "TransportClosedError",
    "ServerBusyError",
    "BindingError",
    "NoBindingAvailableError",
    "CircuitOpenError",
    "RegistryError",
    "ServiceNotFoundError",
    "DuplicateNameError",
    "ContainerError",
    "ComponentStateError",
    "RunnerError",
    "DvmError",
    "MembershipError",
    "CoherencyError",
    "PluginError",
    "PluginLoadError",
    "MessagingError",
    "MailboxFullError",
    "HarnessTimeoutError",
    "MigrationError",
    "RecoveryError",
    "ScenarioError",
]


class HarnessError(Exception):
    """Base class for all errors raised by the HARNESS II framework."""


class EncodingError(HarnessError):
    """A value could not be encoded or decoded (XDR, base64, SOAP section 5)."""


class XmlError(HarnessError):
    """Malformed XML, bad namespace usage, or an invalid query expression."""


class WsdlError(XmlError):
    """A WSDL document is structurally invalid or refers to undefined parts."""


class SoapFaultError(HarnessError):
    """A SOAP fault returned by a remote service invocation.

    Carries the fault code and fault string from the ``<Fault>`` element,
    plus an optional ``detail`` payload.
    """

    def __init__(self, faultcode: str, faultstring: str, detail: object = None):
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail


class TransportError(HarnessError):
    """A message could not be delivered over a transport."""


class TransportClosedError(TransportError):
    """The transport endpoint was closed while a message was in flight."""


class ServerBusyError(TransportError):
    """The server shed this request at admission instead of queueing it.

    The typed face of load shedding (DESIGN.md §13): a server past its
    in-flight or per-principal capacity answers immediately with a *busy*
    reply (a dedicated TCP v2 status byte, HTTP 503) rather than letting
    the dispatch queue grow without bound.  Retrying after backoff is
    safe — the request was never dispatched."""


class BindingError(HarnessError):
    """A binding could not be established or an invocation through it failed."""


class NoBindingAvailableError(BindingError):
    """No binding in a WSDL document is usable from the client's location."""


class CircuitOpenError(BindingError):
    """An invocation was rejected because the target's circuit breaker is open.

    The call never left the client: after too many consecutive failures the
    breaker fails fast instead of hammering a dead endpoint, until a cooldown
    elapses and a half-open probe succeeds.
    """


class RegistryError(HarnessError):
    """A lookup / registry operation failed."""


class ServiceNotFoundError(RegistryError):
    """Discovery found no service matching the query."""


class DuplicateNameError(RegistryError):
    """A name was already taken in the targeted namespace."""


class ContainerError(HarnessError):
    """A component container operation failed."""


class ComponentStateError(ContainerError):
    """A component was driven through an illegal lifecycle transition."""


class RunnerError(HarnessError):
    """The resource-abstraction layer (runner box) could not run a task."""


class DvmError(HarnessError):
    """A distributed virtual machine level operation failed."""


class MembershipError(DvmError):
    """A node join/leave violated DVM membership rules."""


class CoherencyError(DvmError):
    """The distributed state protocol detected an inconsistency."""


class PluginError(HarnessError):
    """A plugin misbehaved or was used outside its lifecycle."""


class PluginLoadError(PluginError):
    """A plugin could not be located, loaded, or instantiated."""


class MessagingError(HarnessError):
    """A mailbox/pub-sub messaging operation failed or was misused."""


class MailboxFullError(MessagingError):
    """A bounded mailbox rejected a publish because it was at capacity.

    Raised only under the ``reject`` overflow policy (DESIGN.md §15): the
    message was *not* enqueued, so the publisher may retry after draining
    back-pressure clears.  Under ``drop-oldest`` the queue instead evicts
    its head (observable as an ``mbox.dropped`` bus event), and under
    ``block-with-deadline`` the publisher waits and gets a
    :class:`HarnessTimeoutError` on expiry — there is no silent loss in
    any mode."""

    def __init__(self, mailbox: str, capacity: int, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"mailbox {mailbox!r} is full (capacity {capacity}){suffix}")
        self.mailbox = mailbox
        self.capacity = capacity


class HarnessTimeoutError(HarnessError, TimeoutError):
    """An operation did not complete within its deadline."""


class MigrationError(HarnessError):
    """A component could not be moved between containers."""


class RecoveryError(HarnessError):
    """The failover/checkpoint machinery was misused or cannot proceed."""


class ScenarioError(HarnessError):
    """A chaos-scenario manifest is invalid or a scenario run was misused."""
