"""Shared benchmark fixtures and reporting helpers.

Every ``bench_*`` module reproduces one experiment from DESIGN.md's index
(C1–C6, F2, F8).  Each module contains:

* ``test_*_benchmark`` functions using the ``benchmark`` fixture — the
  timing rows pytest-benchmark prints, and
* one ``test_report_*`` function that prints the experiment's series (the
  "table/figure" the paper implies) and asserts its qualitative *shape* —
  who wins and roughly by how much.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bindings.context import LOCAL_DIRECTORY
from repro.transport.inproc import reset_inproc_namespace

#: Default RNG seed; override with REPRO_BENCH_SEED for repeat-run variance
#: studies without editing benchmark code.
DEFAULT_SEED = 2002


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", DEFAULT_SEED))


def payload_n(default: int) -> int:
    """Benchmark payload size: REPRO_BENCH_PAYLOAD_N pins it across runs so
    before/after numbers in EXPERIMENTS.md compare like with like."""
    return int(os.environ.get("REPRO_BENCH_PAYLOAD_N", default))


@pytest.fixture(autouse=True)
def _isolate_process_globals():
    reset_inproc_namespace()
    LOCAL_DIRECTORY.clear()
    yield
    reset_inproc_namespace()
    LOCAL_DIRECTORY.clear()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(bench_seed())


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for experiment reports."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
