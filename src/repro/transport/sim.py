"""Transport over the simulated network fabric.

Binds a request handler to an endpoint on a :class:`~repro.netsim.VirtualHost`
and dials it from another virtual host.  Payloads are real encoded bytes, so
the fabric charges true message sizes against the link model between the two
hosts — this is what lets placement experiments (C2/C4/C6) distinguish WAN
from LAN from loopback while still paying genuine codec CPU cost.

URL scheme: ``sim://<host>/<endpoint>``.
"""

from __future__ import annotations

from repro.netsim.fabric import VirtualNetwork
from repro.transport.base import RequestHandler, TransportMessage, parse_url
from repro.util.errors import TransportClosedError, TransportError

__all__ = ["SimListener", "SimTransport"]


class SimListener:
    """Server endpoint on a virtual host."""

    def __init__(self, network: VirtualNetwork, host: str, endpoint: str, handler: RequestHandler):
        self._network = network
        self._host = host
        self._endpoint = endpoint
        network.host(host).bind(endpoint, handler)
        self._closed = False

    @property
    def url(self) -> str:
        return f"sim://{self._host}/{self._endpoint}"

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network.host(self._host).unbind(self._endpoint)


class SimTransport:
    """Client side: requests from ``src_host`` across the fabric.

    Concurrency: the fabric dispatches each request synchronously in the
    caller's thread with no shared mutable per-call state here, so one
    ``SimTransport`` (and hence one stub) may be hammered from many threads
    at once — the sim analogue of the multiplexed TCP transport.  Payloads
    may be ``bytes`` or ``memoryview`` (the fabric charges ``len(payload)``
    either way); handlers needing ``bytes`` should call
    :meth:`~repro.transport.base.TransportMessage.payload_bytes`.
    """

    def __init__(self, network: VirtualNetwork, src_host: str, url: str):
        scheme, rest = parse_url(url)
        if scheme != "sim":
            raise TransportError(f"not a sim url: {url!r}")
        host, _, endpoint = rest.partition("/")
        if not host or not endpoint:
            raise TransportError(f"malformed sim url: {url!r}")
        self._network = network
        self._src = src_host
        self._dst = host
        self._endpoint = endpoint
        self._closed = False

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        """Round-trip across the fabric.

        *timeout* is enforced against the *simulated* round-trip time: when
        the link model's delivery cost exceeds it, the fabric raises
        :class:`~repro.util.errors.HarnessTimeoutError`, matching the
        wall-clock timeout behaviour of the TCP/HTTP transports.
        """
        if self._closed:
            raise TransportClosedError("transport closed")
        return self._network.request(
            self._src, self._dst, self._endpoint, message, timeout=timeout
        )

    def close(self) -> None:
        self._closed = True
