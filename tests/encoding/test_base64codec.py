"""BASE64/hex XSD codecs — the SOAP default the paper complains about."""

import numpy as np
import pytest

from repro.encoding.base64codec import (
    decode_array_base64,
    decode_array_base64_pure,
    decode_hex,
    encode_array_base64,
    encode_array_base64_pure,
    encode_hex,
)
from repro.util.errors import EncodingError


class TestBase64Arrays:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int32", "int64", "uint32", "uint64", "uint8"])
    def test_round_trip(self, dtype, rng):
        if dtype.startswith("float"):
            values = rng.random(100).astype(dtype)
        else:
            values = rng.integers(0, 100, 100).astype(dtype)
        text = encode_array_base64(values, dtype)
        out = decode_array_base64(text, dtype)
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, values)

    def test_empty(self):
        assert decode_array_base64(encode_array_base64([], "float64")).size == 0

    def test_fast_path_matches_pure_reference(self, rng):
        values = rng.random(64)
        assert encode_array_base64(values) == encode_array_base64_pure(values)
        text = encode_array_base64(values)
        assert np.allclose(decode_array_base64(text), decode_array_base64_pure(text))

    def test_invalid_base64_rejected(self):
        with pytest.raises(EncodingError):
            decode_array_base64("!!!not base64!!!")

    def test_length_mismatch_rejected(self):
        import base64

        bad = base64.b64encode(b"12345").decode()  # 5 bytes, not a multiple of 8
        with pytest.raises(EncodingError):
            decode_array_base64(bad, "float64")

    def test_unencodable_values_rejected(self):
        with pytest.raises(EncodingError):
            encode_array_base64(["a", "b"], "float64")

    def test_wire_is_big_endian(self):
        text = encode_array_base64([1], "int32")
        import base64

        assert base64.b64decode(text) == b"\x00\x00\x00\x01"

    def test_size_overhead_is_4_over_3(self, rng):
        values = rng.random(300)
        encoded = encode_array_base64(values)
        raw_bytes = values.nbytes
        assert len(encoded) == pytest.approx(raw_bytes * 4 / 3, rel=0.02)

    def test_pure_unsupported_dtype(self):
        with pytest.raises(EncodingError):
            encode_array_base64_pure([1.0], "float16")
        with pytest.raises(EncodingError):
            decode_array_base64_pure("AA==", "float16")


class TestHex:
    def test_round_trip(self):
        data = bytes(range(256))
        assert decode_hex(encode_hex(data)) == data

    def test_uppercase(self):
        assert encode_hex(b"\xab\xcd") == "ABCD"

    def test_invalid_rejected(self):
        with pytest.raises(EncodingError):
            decode_hex("XYZ")
