"""XPath-like query engine over :class:`XmlElement` trees.

Section 5 of the paper: the Harness II registry is "based on the capability
of querying XML documents (actually WSDL descriptions) for specific nodes
and values", with generic queries mappable onto commercial registries such
as UDDI.  :class:`XmlQuery` is that generic query language.

Supported grammar (a practical XPath subset)::

    query      := ('/' | '//')? step (('/' | '//') step)*
    step       := (name | '*') predicate*  |  '@' name  |  'text()'
    predicate  := '[' '@' name ('=' literal)? ']'
                | '[' name ('=' literal)? ']'
    literal    := "'" chars "'"  |  '"' chars '"'

Names match on *local name* (namespace-lenient), which is what lets one
query work across UDDI, WSIL and raw WSDL renderings of the same service.
Selecting ``@attr`` or ``text()`` as the final step yields strings;
otherwise elements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.util.errors import XmlError
from repro.xmlkit.element import XmlElement

__all__ = ["XmlQuery", "query", "query_values"]

_TOKEN = re.compile(
    r"""
    (?P<slash2>//)
  | (?P<slash>/)
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<eq>=)
  | (?P<at>@)
  | (?P<text>text\(\))
  | (?P<star>\*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][\w.\-]*)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Predicate:
    """One ``[...]`` filter: attribute or child existence/value test."""

    is_attr: bool
    name: str
    value: str | None  # None means existence test

    def matches(self, element: XmlElement) -> bool:
        if self.is_attr:
            actual = element.get(self.name)
            if actual is None:
                return False
            return self.value is None or actual == self.value
        for child in element.find_all(self.name):
            if self.value is None or child.text_content().strip() == self.value:
                return True
        return False


@dataclass(frozen=True)
class _Step:
    """One location step."""

    axis: str  # 'child' or 'descendant'
    kind: str  # 'element' | 'attribute' | 'text'
    name: str  # element/attribute local name, or '*' wildcard
    predicates: tuple[_Predicate, ...] = field(default_factory=tuple)


class XmlQuery:
    """A compiled query, reusable across documents.

    >>> q = XmlQuery("//port[@name='WSTimeService']/@binding")
    >>> q.values(wsdl_root)
    ['tns:WSTimeJavaBinding']
    """

    def __init__(self, expression: str):
        self.expression = expression
        self._steps = _compile(expression)

    def select(self, root: XmlElement) -> list[XmlElement]:
        """Elements matched by the query (error if it selects strings)."""
        results = self._evaluate(root)
        if results and not isinstance(results[0], XmlElement):
            raise XmlError(f"query {self.expression!r} selects values, not elements")
        return results  # type: ignore[return-value]

    def values(self, root: XmlElement) -> list[str]:
        """String results: attribute values, text() content, or element text."""
        results = self._evaluate(root)
        out: list[str] = []
        for item in results:
            if isinstance(item, XmlElement):
                out.append(item.text_content().strip())
            else:
                out.append(item)
        return out

    def first(self, root: XmlElement) -> "XmlElement | str | None":
        """First match or ``None``."""
        results = self._evaluate(root)
        return results[0] if results else None

    def exists(self, root: XmlElement) -> bool:
        """True when the query matches at least once."""
        return bool(self._evaluate(root))

    def _evaluate(self, root: XmlElement) -> list:
        current: list[XmlElement] = [root]
        for i, step in enumerate(self._steps):
            is_last = i == len(self._steps) - 1
            next_nodes: list = []
            seen: set[int] = set()
            for node in current:
                candidates: list[XmlElement]
                if step.axis == "descendant":
                    candidates = list(node.iter())
                elif step.kind in ("attribute", "text"):
                    # value steps on the child axis read the current node
                    candidates = [node]
                else:
                    candidates = list(node.children)
                if step.kind == "attribute":
                    for cand in candidates:
                        value = cand.get(step.name)
                        if value is not None:
                            next_nodes.append(value)
                    continue
                if step.kind == "text":
                    for cand in candidates:
                        text = cand.text_content().strip()
                        if text:
                            next_nodes.append(text)
                    continue
                for cand in candidates:
                    if step.name != "*" and cand.name.local != step.name:
                        continue
                    if not all(p.matches(cand) for p in step.predicates):
                        continue
                    if id(cand) not in seen:
                        seen.add(id(cand))
                        next_nodes.append(cand)
            if not is_last and next_nodes and not isinstance(next_nodes[0], XmlElement):
                raise XmlError(
                    f"query {self.expression!r}: value step must be last"
                )
            current = next_nodes  # type: ignore[assignment]
            if not current:
                return []
        return list(current)

    def __repr__(self) -> str:
        return f"XmlQuery({self.expression!r})"


def _tokenize(expression: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(expression):
        match = _TOKEN.match(expression, pos)
        if match is None:
            raise XmlError(f"bad query syntax at {expression[pos:]!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


def _compile(expression: str) -> list[_Step]:
    tokens = _tokenize(expression)
    if not tokens:
        raise XmlError("empty query")
    steps: list[_Step] = []
    i = 0
    # Leading '/' means child-of-root; leading '//' means descendant axis.
    axis = "child"
    if tokens[0][0] == "slash2":
        axis = "descendant"
        i += 1
    elif tokens[0][0] == "slash":
        i += 1

    def parse_step(axis: str, i: int) -> tuple[_Step, int]:
        kind, value = tokens[i]
        if kind == "at":
            name_kind, name = tokens[i + 1]
            if name_kind != "name":
                raise XmlError("expected attribute name after '@'")
            return _Step(axis, "attribute", name), i + 2
        if kind == "text":
            return _Step(axis, "text", "text()"), i + 1
        if kind in ("name", "star"):
            name = "*" if kind == "star" else value
            i += 1
            predicates: list[_Predicate] = []
            while i < len(tokens) and tokens[i][0] == "lbrack":
                predicate, i = parse_predicate(i + 1)
                predicates.append(predicate)
            return _Step(axis, "element", name, tuple(predicates)), i
        raise XmlError(f"unexpected token {value!r} in query")

    def parse_predicate(i: int) -> tuple[_Predicate, int]:
        if i + 1 >= len(tokens):
            raise XmlError("unterminated predicate")
        is_attr = False
        if tokens[i][0] == "at":
            is_attr = True
            i += 1
        if tokens[i][0] != "name":
            raise XmlError("expected name inside predicate")
        name = tokens[i][1]
        i += 1
        value: str | None = None
        if tokens[i][0] == "eq":
            if tokens[i + 1][0] != "string":
                raise XmlError("expected quoted literal after '=' in predicate")
            value = tokens[i + 1][1][1:-1]
            i += 2
        if tokens[i][0] != "rbrack":
            raise XmlError("unterminated predicate")
        return _Predicate(is_attr, name, value), i + 1

    try:
        step, i = parse_step(axis, i)
        steps.append(step)
        while i < len(tokens):
            kind, _ = tokens[i]
            if kind == "slash2":
                axis = "descendant"
            elif kind == "slash":
                axis = "child"
            else:
                raise XmlError(f"expected '/' between steps, got {tokens[i][1]!r}")
            step, i = parse_step(axis, i + 1)
            steps.append(step)
    except IndexError:
        raise XmlError(f"truncated query: {expression!r}") from None
    return steps


def query(root: XmlElement, expression: str) -> list[XmlElement]:
    """One-shot element query."""
    return XmlQuery(expression).select(root)


def query_values(root: XmlElement, expression: str) -> list[str]:
    """One-shot value query."""
    return XmlQuery(expression).values(root)
