"""Plugins that deploy the example services into a kernel's container.

Figure 1 shows application plugins (``mmul``, ``ping``…) loaded alongside
the infrastructure plugins.  These wrappers are those application plugins:
loading one deploys its service component into the kernel's container with
the requested bindings, making it discoverable and invocable DVM-wide.
"""

from __future__ import annotations

from repro.core.plugin import Plugin
from repro.plugins.services import LinearAlgebraService, MatMul, WSTime

__all__ = ["TimeServicePlugin", "MatMulServicePlugin", "LinalgServicePlugin", "PingPlugin"]


class _ServiceDeployingPlugin(Plugin):
    """Shared machinery: deploy ``service_class`` on start, undeploy on stop."""

    service_class: type = object
    service_bindings: tuple[str, ...] = ("local-instance", "xdr", "soap")

    def __init__(self, bindings: tuple[str, ...] | None = None) -> None:
        super().__init__()
        if bindings is not None:
            self.service_bindings = bindings
        self.handle = None

    def on_start(self) -> None:
        assert self.kernel is not None
        self.handle = self.kernel.container.deploy(
            self.service_class, bindings=self.service_bindings
        )

    def on_stop(self) -> None:
        if self.handle is not None and self.kernel is not None:
            try:
                self.kernel.container.undeploy(self.handle.instance_id)
            except Exception:
                pass
            self.handle = None


class TimeServicePlugin(_ServiceDeployingPlugin):
    """Deploys the Figure 7 WSTime service."""

    plugin_name = "timesvc"
    provides = ("time-service",)
    service_class = WSTime


class MatMulServicePlugin(_ServiceDeployingPlugin):
    """Deploys the Figure 8 MatMul service (the figure's ``mmul`` plugin)."""

    plugin_name = "mmul"
    provides = ("matmul-service",)
    service_class = MatMul


class LinalgServicePlugin(_ServiceDeployingPlugin):
    """Deploys the LAPACK stand-in for the Section 6 scenario."""

    plugin_name = "linalg"
    provides = ("linalg-service",)
    service_class = LinearAlgebraService


class PingPlugin(Plugin):
    """Figure 1's ``ping`` plugin: round-trip liveness between kernels."""

    plugin_name = "ping"
    provides = ("ping",)

    def ping(self, dst_host: str, token: int = 0) -> int:
        """Round-trip *token* through the kernel channel to *dst_host*."""
        assert self.kernel is not None
        return self.kernel.send(dst_host, "ping", {"token": token})

    def handle_message(self, src_host: str, payload: dict) -> int:
        return payload.get("token", 0)
