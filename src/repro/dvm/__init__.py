"""Distributed Virtual Machine: the distributed component container layer."""

from repro.dvm.failure import PING_ENDPOINT, FailureDetector, NodeHealth, bind_ping_endpoint
from repro.dvm.machine import DistributedVirtualMachine, DvmNode
from repro.dvm.state import (
    DecentralizedState,
    DvmStateProtocol,
    FullSynchronyState,
    NeighborhoodState,
    StateEntry,
)

__all__ = [
    "DistributedVirtualMachine",
    "DvmNode",
    "DecentralizedState",
    "DvmStateProtocol",
    "FailureDetector",
    "FullSynchronyState",
    "NeighborhoodState",
    "NodeHealth",
    "PING_ENDPOINT",
    "StateEntry",
    "bind_ping_endpoint",
]
