"""Consistent-hash sharded registry: placement, fallback, typed faults."""

import pytest

from repro.netsim.topology import lan
from repro.plugins.services import CounterService
from repro.registry.sharded import HashRing, ShardedRegistry
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import RegistryError, ServiceNotFoundError


def doc(name):
    return generate_wsdl(CounterService, service_name=name)


HOSTS = [f"node{i}" for i in range(10)]
KEYS = [f"svc{i}" for i in range(200)]


class TestHashRing:
    def test_batch_equals_incremental(self):
        batch = HashRing(HOSTS)
        incremental = HashRing()
        for host in HOSTS:
            incremental.add(host)
        assert batch._points == incremental._points
        assert batch._owners == incremental._owners

    def test_owners_are_distinct_and_r_sized(self):
        ring = HashRing(HOSTS)
        for key in KEYS:
            owners = ring.owners(key, 3)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_r_capped_at_host_count(self):
        ring = HashRing(["a", "b"])
        assert len(ring.owners("x", 5)) == 2

    def test_placement_is_stable(self):
        assert HashRing(HOSTS).owner("svc7") == HashRing(HOSTS).owner("svc7")

    def test_membership_change_remaps_only_the_lost_arcs(self):
        ring = HashRing(HOSTS)
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("node3")
        moved = [key for key in KEYS if ring.owner(key) != before[key]]
        # only keys whose primary was node3 move; everything else stays put
        assert all(before[key] == "node3" for key in moved)
        assert len(moved) == sum(1 for owner in before.values() if owner == "node3")

    def test_empty_ring_is_typed(self):
        with pytest.raises(RegistryError, match="empty"):
            HashRing().owners("x")

    def test_vnodes_validated(self):
        with pytest.raises(RegistryError, match="vnodes"):
            HashRing(vnodes=0)


class TestShardedRegistry:
    def make(self, n=8, replication=2):
        network = lan(n, seed=2)
        return network, ShardedRegistry(network, replication=replication)

    def test_register_places_on_exactly_r_owners(self):
        _, shards = self.make()
        shards.register("node0", doc("counter"))
        owners = shards.owners("counter")
        assert len(owners) == 2
        for host, node in shards.nodes.items():
            held = [e.name for e in node.registry.entries()]
            assert ("counter" in held) == (host in owners)

    def test_lookup_from_any_host(self):
        _, shards = self.make()
        shards.register("node3", doc("counter"))
        for host in [f"node{i}" for i in range(8)]:
            assert shards.lookup_name(host, "counter").name == "counter"

    def test_replica_answers_when_primary_is_down(self):
        network, shards = self.make()
        shards.register("node0", doc("counter"))
        primary = shards.owners("counter")[0]
        network.host(primary).crash()
        caller = next(h for h in shards.nodes if h != primary)
        assert shards.lookup_name(caller, "counter").name == "counter"

    def test_dark_shard_is_registry_error(self):
        network, shards = self.make()
        shards.register("node0", doc("counter"))
        owners = shards.owners("counter")
        for owner in owners:
            network.host(owner).crash()
        caller = next(h for h in shards.nodes if h not in owners)
        with pytest.raises(RegistryError, match="dark"):
            shards.lookup_name(caller, "counter")

    def test_reachable_miss_is_service_not_found(self):
        _, shards = self.make()
        with pytest.raises(ServiceNotFoundError):
            shards.lookup_name("node0", "nonexistent")

    def test_unknown_caller_is_typed(self):
        _, shards = self.make()
        with pytest.raises(Exception, match="node99"):
            shards.lookup_name("node99", "counter")

    def test_replication_validated(self):
        network = lan(3)
        with pytest.raises(RegistryError, match="replication"):
            ShardedRegistry(network, replication=0)

    def test_remove_host_restores_replication(self):
        network, shards = self.make()
        shards.register("node0", doc("counter"))
        lost = shards.owners("counter")[0]
        network.host(lost).crash()
        shards.remove_host(lost)
        owners = shards.owners("counter")
        assert lost not in owners
        assert len(owners) == 2
        for owner in owners:
            assert shards.nodes[owner].registry.lookup_name("counter")

    def test_add_host_rebalances_and_sheds(self):
        network, shards = self.make(n=6)
        for i in range(20):
            shards.register("node0", doc(f"svc{i}"))
        network.add_host("fresh")
        shards.add_host("fresh")
        for host, node in shards.nodes.items():
            for entry in node.registry.entries():
                # every held entry is owned; nothing lingers off-shard
                assert host in shards.owners(entry.name)
        for i in range(20):
            assert shards.lookup_name("node1", f"svc{i}").name == f"svc{i}"

    def test_discover_scatter_finds_names_anywhere(self):
        _, shards = self.make()
        shards.register("node0", doc("alpha"))
        shards.register("node5", doc("beta"))
        found = {d.name for d in shards.discover("node2", "//portType")}
        assert found == {"alpha", "beta"}
