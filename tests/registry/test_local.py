"""ServiceRegistry: registration, exposure control, XML queries."""

import pytest

from repro.plugins.services import CounterService, MatMul, WSTime
from repro.registry.local import PRIVATE, PUBLIC, ServiceRegistry
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import DuplicateNameError, RegistryError, ServiceNotFoundError


@pytest.fixture
def registry():
    reg = ServiceRegistry()
    reg.register(generate_wsdl(MatMul, bindings=("soap", "xdr")))
    reg.register(generate_wsdl(WSTime, bindings=("soap",)))
    reg.register(generate_wsdl(CounterService, bindings=("local",)), exposure=PRIVATE)
    return reg


class TestRegistration:
    def test_register_assigns_key(self, registry):
        entry = registry.lookup_name("MatMul")
        assert entry.key.startswith("svc:")

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(DuplicateNameError):
            registry.register(generate_wsdl(MatMul))

    def test_unregister(self, registry):
        entry = registry.lookup_name("MatMul")
        registry.unregister(entry.key)
        with pytest.raises(ServiceNotFoundError):
            registry.lookup_name("MatMul")
        with pytest.raises(ServiceNotFoundError):
            registry.unregister(entry.key)

    def test_invalid_exposure_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.register(generate_wsdl(CounterService, service_name="C2"), exposure="secret")

    def test_len(self, registry):
        assert len(registry) == 3

    def test_invalid_document_rejected(self):
        from repro.wsdl.model import WsdlBinding, WsdlDocument
        from repro.util.errors import WsdlError

        bad = WsdlDocument("X", "urn:x", bindings=(WsdlBinding("b", "Ghost"),))
        with pytest.raises(WsdlError):
            ServiceRegistry().register(bad)


class TestExposure:
    def test_private_hidden_from_default_lookup(self, registry):
        with pytest.raises(ServiceNotFoundError):
            registry.lookup_name("CounterService")
        assert registry.lookup_name("CounterService", include_private=True)

    def test_entries_filtering(self, registry):
        assert {e.name for e in registry.entries()} == {"MatMul", "WSTime"}
        assert len(registry.entries(include_private=True)) == 3

    def test_runtime_exposure_flip(self, registry):
        entry = registry.lookup_name("CounterService", include_private=True)
        registry.set_exposure(entry.key, PUBLIC)
        assert registry.lookup_name("CounterService")
        registry.set_exposure(entry.key, PRIVATE)
        with pytest.raises(ServiceNotFoundError):
            registry.lookup_name("CounterService")

    def test_bad_exposure_value(self, registry):
        entry = registry.lookup_name("MatMul")
        with pytest.raises(RegistryError):
            registry.set_exposure(entry.key, "internal")

    def test_set_exposure_unknown_key(self, registry):
        with pytest.raises(ServiceNotFoundError):
            registry.set_exposure("svc:ghost", PUBLIC)


class TestQueries:
    def test_find_by_structure(self, registry):
        matches = registry.find("//xdrBinding")
        assert [m.name for m in matches] == ["MatMul"]

    def test_find_respects_exposure(self, registry):
        assert registry.find("//localBinding") == []
        assert len(registry.find("//localBinding", include_private=True)) == 1

    def test_find_by_port_type(self, registry):
        assert [m.name for m in registry.find_by_port_type("MatMulPortType")] == ["MatMul"]
        assert registry.find_by_port_type("Nothing") == []

    def test_find_by_operation(self, registry):
        assert [m.name for m in registry.find_by_operation("getTime")] == ["WSTime"]
        names = {m.name for m in registry.find_by_operation("getResult")}
        assert names == {"MatMul"}

    def test_find_values(self, registry):
        values = registry.find_values("//portType/@name")
        assert values["MatMul"] == ["MatMulPortType"]
        assert values["WSTime"] == ["WSTimePortType"]

    def test_find_with_precompiled_query(self, registry):
        from repro.xmlkit import XmlQuery

        q = XmlQuery("//operation[@name='getTime']")
        assert [m.name for m in registry.find(q)] == ["WSTime"]

    def test_get_by_key(self, registry):
        entry = registry.lookup_name("MatMul")
        assert registry.get(entry.key).name == "MatMul"
        with pytest.raises(ServiceNotFoundError):
            registry.get("svc:nope")
