"""Durable redelivery: a mailbox hub rides the checkpoint/failover path.

:class:`~repro.plugins.services.MailboxService` pickles as its broker's
snapshot, so a checkpoint carries every mailbox's backlog *and* unacked
in-flight messages.  When the hub's node dies, the FailoverManager
revives it elsewhere; the restored broker closes the orphaned
subscriptions and requeues their unacked messages — whoever subscribes
next sees the full backlog, with the in-flight message flagged
``redelivered``.
"""

from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import FullSynchronyState
from repro.netsim import lan
from repro.plugins.services import MailboxService
from repro.recovery import FailoverManager


def make_dvm(n: int = 3):
    net = lan(n)
    dvm = DistributedVirtualMachine("rec", net, lambda network: FullSynchronyState(network))
    for i in range(n):
        dvm.add_node(f"node{i}")
    return net, dvm


class TestDurableRedelivery:
    def test_unacked_messages_survive_node_failure(self):
        net, dvm = make_dvm()
        handle = dvm.deploy("node0", MailboxService, name="mbox-hub",
                            bindings=("local-instance", "sim"), restartable=True)
        hub = handle.instance
        hub.open("orders", capacity=32)
        sid = hub.subscribe("orders", "worker-a")
        assert [hub.publish("orders", {"n": i}) for i in range(3)] == [1, 2, 3]
        in_flight = hub.receive("orders", sid)  # taken, never acked
        assert in_flight["seq"] == 1 and not in_flight["redelivered"]

        manager = FailoverManager(dvm)
        manager.checkpoint()
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")  # failover runs inside this call

        assert manager.recovered and manager.recovered[0]["service"] == "mbox-hub"
        new_home = manager.recovered[0]["to"]
        assert new_home in ("node1", "node2")
        revived = dvm.node(new_home).container.component_named("mbox-hub").instance

        # a fresh consumer sees the whole backlog; the in-flight message
        # leads (requeued at the front) and is flagged redelivered
        sid2 = revived.subscribe("orders", "worker-b")
        out = [revived.receive("orders", sid2) for _ in range(3)]
        assert [d["seq"] for d in out] == [1, 2, 3]
        assert out[0]["redelivered"] is True and out[0]["attempt"] == 2
        assert not out[1]["redelivered"] and not out[2]["redelivered"]
        assert revived.receive("orders", sid2) is None  # nothing lost, nothing extra

        for delivery in out:
            revived.ack("orders", sid2, delivery["delivery_id"])
        assert revived.stats("orders")["acked"] == 3
        manager.close()
        dvm.close()

    def test_mailbox_declaration_survives_failover(self):
        net, dvm = make_dvm()
        handle = dvm.deploy("node0", MailboxService, name="mbox-hub",
                            bindings=("local-instance", "sim"), restartable=True)
        handle.instance.open("audit", mode="tap", capacity=4)
        manager = FailoverManager(dvm)
        manager.checkpoint()
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")
        new_home = manager.recovered[0]["to"]
        revived = dvm.node(new_home).container.component_named("mbox-hub").instance
        # same declaration (tap already coerced): republishing just works
        revived.open("audit", mode="tap", capacity=4)
        assert revived.publish("audit", "post-failover") >= 1
        manager.close()
        dvm.close()
