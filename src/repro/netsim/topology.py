"""Topology builders for common experiment shapes.

The paper sketches three deployment regimes: tightly coupled departmental
metacomputers (LAN), wide-area grids spanning administrative domains (WAN),
and mesh-structured applications with fast neighbourhoods.  These helpers
build seeded :class:`VirtualNetwork` instances for each so the C4/C5/C6
benchmarks sweep realistic regimes with one call.
"""

from __future__ import annotations

from repro.netsim.fabric import LinkModel, VirtualNetwork

__all__ = ["lan", "wan", "two_clusters", "mesh_neighborhoods", "LAN_LINK", "WAN_LINK"]

#: Departmental LAN: 0.1 ms latency, ~100 MB/s.
LAN_LINK = LinkModel(latency_s=1e-4, bandwidth_Bps=100e6)
#: Cross-domain WAN: 40 ms latency, ~2 MB/s (2002-era internet path).
WAN_LINK = LinkModel(latency_s=4e-2, bandwidth_Bps=2e6)


def lan(n_hosts: int, seed: int = 0) -> VirtualNetwork:
    """A flat LAN of ``n_hosts`` hosts named ``node0..node{n-1}``."""
    network = VirtualNetwork(default_link=LAN_LINK, seed=seed)
    for i in range(n_hosts):
        network.add_host(f"node{i}")
    return network


def wan(n_hosts: int, seed: int = 0) -> VirtualNetwork:
    """A wide-area collection of hosts, all pairs on WAN links."""
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed)
    for i in range(n_hosts):
        network.add_host(f"node{i}")
    return network


def two_clusters(n_per_cluster: int, seed: int = 0) -> VirtualNetwork:
    """Two LAN clusters (``a*``, ``b*``) joined by a WAN link.

    The C6 migration scenario uses this: the LAPACK service lives in
    cluster *b*; the user's home node is in cluster *a*.
    """
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed)
    a_names = [f"a{i}" for i in range(n_per_cluster)]
    b_names = [f"b{i}" for i in range(n_per_cluster)]
    for name in a_names + b_names:
        network.add_host(name)
    for group in (a_names, b_names):
        for i, src in enumerate(group):
            for dst in group[i + 1 :]:
                network.set_link(src, dst, LAN_LINK)
    return network


def mesh_neighborhoods(n_hosts: int, neighborhood: int, seed: int = 0) -> VirtualNetwork:
    """A ring-mesh where hosts within ``neighborhood`` hops share LAN links.

    Models the paper's "mesh-structured applications [that] may benefit from
    a scheme that provides full synchrony across small neighborhoods".
    """
    network = VirtualNetwork(default_link=WAN_LINK, seed=seed)
    names = [f"node{i}" for i in range(n_hosts)]
    for name in names:
        network.add_host(name)
    for i in range(n_hosts):
        for step in range(1, neighborhood + 1):
            j = (i + step) % n_hosts
            network.set_link(names[i], names[j], LAN_LINK)
    return network
