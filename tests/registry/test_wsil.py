"""WS-Inspection documents."""

import pytest

from repro.registry.wsil import WsilDocument, WsilEntry
from repro.util.errors import XmlError


class TestBuildAndParse:
    def test_round_trip(self):
        doc = WsilDocument()
        doc.add("MatMul", "http://host/matmul.wsdl", "matrix multiplication")
        doc.add("WSTime", "http://host/time.wsdl")
        reparsed = WsilDocument.from_string(doc.to_string())
        assert len(reparsed) == 2
        assert reparsed.entries[0] == WsilEntry("MatMul", "http://host/matmul.wsdl", "matrix multiplication")
        assert reparsed.entries[1].wsdl_location == "http://host/time.wsdl"

    def test_locate(self):
        doc = WsilDocument([WsilEntry("S", "http://x/s.wsdl")])
        assert doc.locate("S") == "http://x/s.wsdl"
        with pytest.raises(XmlError):
            doc.locate("T")

    def test_empty_document(self):
        assert len(WsilDocument.from_string(WsilDocument().to_string())) == 0

    def test_non_wsil_rejected(self):
        with pytest.raises(XmlError):
            WsilDocument.from_string("<random/>")

    def test_wsil_namespace_present(self):
        text = WsilDocument([WsilEntry("S", "u")]).to_string()
        assert "http://schemas.xmlsoap.org/ws/2001/10/inspection/" in text
