"""The fault-script vocabulary: named actions applied to a running scenario.

Each action is a small function taking the live
:class:`~repro.scenario.runner.ScenarioRuntime` plus the manifest's
parameter mapping.  The runner publishes every application as a
``scenario.fault`` event *before* applying it, so the audit trail shows the
injection and its consequences (detector transitions, breaker flips,
failovers) as one correlated sequence.

Vocabulary:

``kill``
    Crash a host: every message to it raises ``HostDownError``.
``restart``
    Bring a crashed host back; with ``rejoin`` (default true) an evicted
    node is re-enrolled into the DVM with a fresh kernel.
``partition`` / ``heal``
    Split the fabric into named groups / remove all partitions.
``link_faults`` / ``default_faults``
    Make one link (or every defaulted link) lossy: drop/duplicate/jitter.
``slow_link`` / ``slow_node``
    Degrade latency/bandwidth of one link, or of every link touching a
    node — the *slow consumer* shape.
``blackhole`` / ``unblackhole``
    Silently drop all traffic to and from a node while it stays "up" —
    unlike ``kill`` there is no crisp connection-refused signal, which is
    what exercises timeout paths and registry-blackhole lookups.
``reactor_capacity``
    Reconfigure the live reactor listener's admission controller
    (``queue_max`` / ``per_conn_max``) mid-run — only meaningful with
    ``workload.mode == "reactor"``, where real sockets hit a real
    event-loop server and shed requests surface as ``ServerBusyError``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Mapping

from repro.util.errors import ScenarioError

__all__ = ["apply_fault", "fault_handler", "FAULT_HANDLERS"]

FAULT_HANDLERS: dict[str, Callable] = {}


def fault_handler(name: str) -> Callable:
    """Register an action implementation under *name*."""

    def register(fn: Callable) -> Callable:
        FAULT_HANDLERS[name] = fn
        return fn

    return register


def apply_fault(runtime, action: str, params: Mapping) -> None:
    """Apply *action* to *runtime*; unknown actions are typed errors."""
    handler = FAULT_HANDLERS.get(action)
    if handler is None:
        raise ScenarioError(f"unknown fault action {action!r}")
    handler(runtime, dict(params))


@fault_handler("kill")
def _kill(runtime, params: Mapping) -> None:
    runtime.network.host(params["node"]).crash()


@fault_handler("restart")
def _restart(runtime, params: Mapping) -> None:
    node = params["node"]
    runtime.network.host(node).restart()
    if params.get("rejoin", True):
        runtime.rejoin(node)


@fault_handler("partition")
def _partition(runtime, params: Mapping) -> None:
    groups = params.get("groups")
    if not groups:
        raise ScenarioError("partition fault needs non-empty 'groups'")
    runtime.network.partition(*[set(group) for group in groups])


@fault_handler("heal")
def _heal(runtime, params: Mapping) -> None:
    runtime.network.heal()


@fault_handler("link_faults")
def _link_faults(runtime, params: Mapping) -> None:
    runtime.network.set_link_faults(
        params["src"],
        params["dst"],
        drop_rate=float(params.get("drop_rate", 0.0)),
        duplicate_rate=float(params.get("duplicate_rate", 0.0)),
        jitter_s=float(params.get("jitter_s", 0.0)),
        symmetric=bool(params.get("symmetric", True)),
    )


@fault_handler("default_faults")
def _default_faults(runtime, params: Mapping) -> None:
    runtime.network.set_default_faults(
        drop_rate=float(params.get("drop_rate", 0.0)),
        duplicate_rate=float(params.get("duplicate_rate", 0.0)),
        jitter_s=float(params.get("jitter_s", 0.0)),
    )


def _degrade(runtime, src: str, dst: str, params: Mapping, symmetric: bool) -> None:
    pairs = ((src, dst), (dst, src)) if symmetric else ((src, dst),)
    for a, b in pairs:
        model = runtime.network.link_model(a, b)
        runtime.network.set_link(
            a,
            b,
            replace(
                model,
                latency_s=float(params.get("latency_s", model.latency_s)),
                bandwidth_Bps=float(params.get("bandwidth_Bps", model.bandwidth_Bps)),
            ),
            symmetric=False,
        )


@fault_handler("slow_link")
def _slow_link(runtime, params: Mapping) -> None:
    _degrade(
        runtime,
        params["src"],
        params["dst"],
        params,
        symmetric=bool(params.get("symmetric", True)),
    )


@fault_handler("slow_node")
def _slow_node(runtime, params: Mapping) -> None:
    node = params["node"]
    for host in runtime.network.hosts():
        if host.name != node:
            _degrade(runtime, host.name, node, params, symmetric=True)


@fault_handler("blackhole")
def _blackhole(runtime, params: Mapping) -> None:
    _set_blackhole(runtime, params["node"], drop_rate=1.0)


@fault_handler("unblackhole")
def _unblackhole(runtime, params: Mapping) -> None:
    _set_blackhole(runtime, params["node"], drop_rate=0.0)


def _set_blackhole(runtime, node: str, drop_rate: float) -> None:
    for host in runtime.network.hosts():
        if host.name != node:
            runtime.network.set_link_faults(
                host.name, node, drop_rate=drop_rate, symmetric=True
            )


@fault_handler("reactor_capacity")
def _reactor_capacity(runtime, params: Mapping) -> None:
    admission = getattr(runtime, "reactor_admission", None)
    if admission is None:
        raise ScenarioError(
            "reactor_capacity fault requires workload mode 'reactor' "
            "(no live reactor listener in this scenario)"
        )
    knobs = {}
    if "queue_max" in params:
        knobs["queue_max"] = int(params["queue_max"])
    if "per_conn_max" in params:
        knobs["per_conn_max"] = int(params["per_conn_max"])
    if not knobs:
        raise ScenarioError(
            "reactor_capacity fault needs 'queue_max' and/or 'per_conn_max'"
        )
    admission.configure(**knobs)
