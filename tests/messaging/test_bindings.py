"""Cross-binding conformance: one test body, three transports.

Every test here runs against the inproc, netsim and TCP bindings through
the *common client surface* (``open``/``publish``/``subscribe``/``stats``
plus ``receive``/``try_receive``/``ack``/``nack``/``close`` on the
subscription).  The broker defines the semantics; a binding that changes
them fails here.

TCP deliveries arrive as asynchronous push frames, so collection helpers
use bounded ``receive`` timeouts instead of assuming a queued message is
visible the instant ``publish`` returns.
"""

import contextlib
import time

import pytest

from repro.messaging.bindings import (
    InprocMailboxClient,
    SimMailboxClient,
    SimMailboxHost,
    _NetClock,
)
from repro.messaging.broker import MessageBroker
from repro.messaging.tcpbind import MailboxTcpClient, MailboxTcpServer
from repro.netsim import lan
from repro.util.clock import VirtualClock
from repro.util.errors import HarnessTimeoutError, MailboxFullError

BINDINGS = ("inproc", "sim", "tcp")


@contextlib.contextmanager
def open_binding(kind):
    """Yield a mailbox client of the requested *kind*, torn down after."""
    if kind == "inproc":
        client = InprocMailboxClient(MessageBroker(clock=VirtualClock()))
        try:
            yield client
        finally:
            client.close()
    elif kind == "sim":
        network = lan(2)
        host = SimMailboxHost(network, "node0")
        client = SimMailboxClient(network, "node1", "node0",
                                  clock=_NetClock(network))
        try:
            yield client
        finally:
            client.close()
            host.close()
    elif kind == "tcp":
        server = MailboxTcpServer(MessageBroker())
        client = MailboxTcpClient(*server.address, timeout_s=10.0)
        try:
            yield client
        finally:
            client.close()
            server.close(drain_s=0.5)
    else:  # pragma: no cover
        raise AssertionError(kind)


@pytest.fixture(params=BINDINGS)
def client(request):
    with open_binding(request.param) as c:
        yield c


def collect(subs, count, ack=True, wall_budget_s=5.0):
    """Gather *count* deliveries across *subs*, tolerant of push latency."""
    out = []
    deadline = time.monotonic() + wall_budget_s
    while len(out) < count and time.monotonic() < deadline:
        progressed = False
        for sub in subs:
            delivery = sub.try_receive()
            if delivery is not None:
                if ack:
                    sub.ack(delivery)
                out.append(delivery)
                progressed = True
        if not progressed:
            time.sleep(0.002)
    return out


class TestFirstReader:
    def test_work_queue_consumes_each_message_exactly_once(self, client):
        client.open("jobs", capacity=32)
        a = client.subscribe("jobs", subscriber="a")
        b = client.subscribe("jobs", subscriber="b")
        seqs = [client.publish("jobs", {"n": i}) for i in range(6)]
        assert seqs == [1, 2, 3, 4, 5, 6]
        got = collect([a, b], 6)
        assert sorted(d.seq for d in got) == seqs
        assert len({d.seq for d in got}) == 6
        stats = client.stats("jobs")
        assert stats["published"] == stats["acked"] == 6

    def test_unacked_redeliver_when_consumer_unsubscribes(self, client):
        client.open("work", capacity=16)
        quitter = client.subscribe("work", subscriber="quitter")
        for i in range(3):
            client.publish("work", i)
        held = quitter.receive(timeout=2.0)  # taken but never acked
        quitter.close(requeue=True)
        survivor = client.subscribe("work", subscriber="survivor")
        got = collect([survivor], 3)
        assert sorted(d.seq for d in got) == [1, 2, 3]
        by_seq = {d.seq: d for d in got}
        assert by_seq[held.seq].redelivered is True

    def test_nack_redelivers_with_flag(self, client):
        client.open("retry", capacity=8)
        sub = client.subscribe("retry")
        client.publish("retry", "flaky")
        first = sub.receive(timeout=2.0)
        sub.nack(first)
        second = sub.receive(timeout=2.0)
        assert second.seq == first.seq
        assert second.redelivered is True
        sub.ack(second)


class TestAllReaders:
    def test_every_subscriber_gets_all_messages_in_order(self, client):
        client.open("news", mode="all-readers", capacity=32)
        a = client.subscribe("news", subscriber="a")
        b = client.subscribe("news", subscriber="b")
        n = 4
        for i in range(n):
            client.publish("news", i)
        for sub in (a, b):
            got = collect([sub], n)
            assert [d.seq for d in got] == [1, 2, 3, 4]
            assert [d.payload for d in got] == [0, 1, 2, 3]


class TestTap:
    def test_tap_never_raises_even_past_capacity(self, client):
        client.open("trace", mode="tap", capacity=2)
        sub = client.subscribe("trace", subscriber="observer")
        for i in range(6):
            client.publish("trace", i)  # the assertion: no exception, ever
        got = collect([sub], 6, ack=False, wall_budget_s=1.0)
        seqs = [d.seq for d in got]
        assert seqs == sorted(seqs)  # what survives arrives in order
        assert client.stats("trace")["published"] == 6


class TestOverflow:
    def test_reject_surfaces_typed_with_mailbox_and_capacity(self, client):
        client.open("bounded", capacity=2, overflow="reject")
        client.publish("bounded", 0)
        client.publish("bounded", 1)
        with pytest.raises(MailboxFullError) as err:
            client.publish("bounded", 2)
        assert err.value.mailbox == "bounded"
        assert err.value.capacity == 2
        assert client.stats("bounded")["rejected"] == 1

    def test_drop_oldest_is_observable_in_stats(self, client):
        client.open("lossy", capacity=2, overflow="drop-oldest")
        for i in range(4):
            client.publish("lossy", i)
        stats = client.stats("lossy")
        assert stats["dropped"] == 2
        assert stats["high_water"] == 2  # the bound held
        sub = client.subscribe("lossy")
        got = collect([sub], 2)
        assert [d.seq for d in got] == [3, 4]

    def test_block_with_deadline_expiry_is_typed(self, client):
        client.open("slow", capacity=1, overflow="block-with-deadline")
        client.publish("slow", 0)
        with pytest.raises(HarnessTimeoutError):
            client.publish("slow", 1, timeout_s=0.2)
        assert client.stats("slow")["depth"] == 1


class TestPollSemantics:
    def test_try_receive_on_empty_is_none_not_an_error(self, client):
        client.open("empty")
        sub = client.subscribe("empty")
        assert sub.try_receive() is None

    def test_receive_timeout_raises_typed(self, client):
        client.open("quiet")
        sub = client.subscribe("quiet")
        with pytest.raises(HarnessTimeoutError):
            sub.receive(timeout=0.05)

    def test_publish_then_receive_roundtrips_payload(self, client):
        client.open("echo")
        sub = client.subscribe("echo")
        client.publish("echo", {"nested": [1, "two", 3.0]}, publisher="src")
        delivery = sub.receive(timeout=2.0)
        assert delivery.payload == {"nested": [1, "two", 3.0]}
        assert delivery.message.publisher == "src"
        sub.ack(delivery)
