"""Namespace-aware XML infoset, serializer/parser, and query engine."""

from repro.xmlkit.element import XmlElement
from repro.xmlkit.qname import (
    NS_HARNESS,
    NS_MIME,
    NS_SOAP,
    NS_SOAP_ENC,
    NS_SOAP_ENV,
    NS_UDDI,
    NS_WSDL,
    NS_WSIL,
    NS_XSD,
    NS_XSI,
    QName,
)
from repro.xmlkit.query import XmlQuery, query, query_values
from repro.xmlkit.serialize import canonicalize, parse, to_bytes, to_string

__all__ = [
    "XmlElement",
    "QName",
    "NS_HARNESS",
    "NS_MIME",
    "NS_SOAP",
    "NS_SOAP_ENC",
    "NS_SOAP_ENV",
    "NS_UDDI",
    "NS_WSDL",
    "NS_WSIL",
    "NS_XSD",
    "NS_XSI",
    "XmlQuery",
    "query",
    "query_values",
    "canonicalize",
    "parse",
    "to_bytes",
    "to_string",
]
