"""TtlCache — expiry, invalidation, stats, and the disabled mode."""

from repro.util.ttl_cache import TtlCache


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestTtlCache:
    def test_miss_then_hit(self):
        cache = TtlCache(ttl_s=1.0)
        assert cache.get("k") == (False, None)
        cache.put("k", 42)
        assert cache.get("k") == (True, 42)
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_cacheable(self):
        cache = TtlCache(ttl_s=1.0)
        cache.put("k", None)
        assert cache.get("k") == (True, None)

    def test_entry_expires(self):
        clock = FakeClock()
        cache = TtlCache(ttl_s=2.0, clock=clock)
        cache.put("k", "v")
        clock.now += 1.9
        assert cache.get("k") == (True, "v")
        clock.now += 0.2
        assert cache.get("k") == (False, None)
        assert len(cache) == 0  # expired entry was dropped on access

    def test_invalidate_one_key(self):
        cache = TtlCache(ttl_s=10.0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (True, 2)

    def test_invalidate_all(self):
        cache = TtlCache(ttl_s=10.0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate()
        assert len(cache) == 0

    def test_zero_ttl_disables(self):
        cache = TtlCache(ttl_s=0.0)
        assert not cache.enabled
        cache.put("k", 1)
        assert cache.get("k") == (False, None)
        assert len(cache) == 0

    def test_max_entries_bounded(self):
        clock = FakeClock()
        cache = TtlCache(ttl_s=10.0, max_entries=4, clock=clock)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 4
        assert cache.get(9) == (True, 9)  # newest entry survives

    def test_expired_evicted_before_live(self):
        clock = FakeClock()
        cache = TtlCache(ttl_s=5.0, max_entries=2, clock=clock)
        cache.put("old", 1)
        clock.now += 10  # "old" is now expired
        cache.put("live", 2)
        cache.put("new", 3)  # at capacity: must evict "old", not "live"
        assert cache.get("live") == (True, 2)
        assert cache.get("new") == (True, 3)
