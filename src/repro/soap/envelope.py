"""SOAP 1.1 envelope construction and parsing.

Implements the subset of SOAP 1.1 the paper's stack uses: RPC-style bodies,
``xsi:type``-annotated parameters, and ``<Fault>`` responses.

Two implementations coexist, byte-compatible with each other:

* the **streaming fast path** (default) — per-(target, operation) envelope
  templates cache every constant byte of the envelope (XML declaration,
  xmlns block, body/operation tags) so a call only renders its argument
  fragments straight into a byte buffer, and an expat pull decoder turns
  incoming envelopes directly into ``(target, operation, args)`` values
  with no intermediate :class:`XmlElement` tree;
* the ``*_tree`` **reference path** — the original infoset-based
  implementation, kept as the golden oracle for byte-identity tests, the
  fallback for envelope shapes outside the streaming subset, and the
  pre-optimization baseline the C1c benchmark measures against.

The XML cost that remains on the fast path (escaping, base64 text, expat
parsing) is the *inherent* cost of SOAP's wire format — the phenomenon the
C1 benchmarks measure — rather than framework overhead.
"""

from __future__ import annotations

from typing import Any
from xml.parsers import expat
from xml.sax.saxutils import escape, quoteattr

from repro.soap.values import (
    ARRAY_MODES,
    ValueFrame,
    element_to_value,
    encode_value_into,
    expat_attr,
    value_to_element,
)
from repro.util.errors import EncodingError, SoapFaultError, XmlError
from repro.xmlkit import (
    NS_HARNESS,
    NS_SOAP_ENC,
    NS_SOAP_ENV,
    NS_XSI,
    QName,
    XmlElement,
    parse,
    to_string,
)

__all__ = [
    "build_call_envelope",
    "build_reply_envelope",
    "build_fault_envelope",
    "parse_call_envelope",
    "parse_reply_envelope",
    "parse_reply_envelope_ex",
    "call_encoder",
    "CallEncoder",
    "build_call_envelope_tree",
    "build_reply_envelope_tree",
    "build_fault_envelope_tree",
    "parse_call_envelope_tree",
    "parse_reply_envelope_tree",
    "SOAP_CONTENT_TYPE",
]

SOAP_CONTENT_TYPE = "text/xml; charset=utf-8"

_ENVELOPE = QName(NS_SOAP_ENV, "Envelope")
_BODY = QName(NS_SOAP_ENV, "Body")
_HEADER = QName(NS_SOAP_ENV, "Header")
_FAULT = QName(NS_SOAP_ENV, "Fault")

# -- cached envelope skeleton bytes -------------------------------------------------

from repro.soap.values import NSF_HARNESS, NSF_SOAPENC, NSF_XSI  # noqa: E402

_XML_DECL = b'<?xml version="1.0" encoding="UTF-8"?>\n'
_BODY_OPEN = b"<soapenv:Body>"
_TAIL = b"</soapenv:Body></soapenv:Envelope>"

#: xmlns declarations in the serializer's order (sorted by prefix); the
#: soapenv entry has flag 0 because every envelope declares it.
_NS_DECLS = (
    (NSF_HARNESS, "harness", NS_HARNESS),
    (NSF_SOAPENC, "soapenc", NS_SOAP_ENC),
    (0, "soapenv", NS_SOAP_ENV),
    (NSF_XSI, "xsi", NS_XSI),
)

_HEADS: dict[int, bytes] = {}
_PRE_HEADS: dict[int, bytes] = {}


def _head(mask: int) -> bytes:
    """``<?xml…?><soapenv:Envelope xmlns…><soapenv:Body>`` for a namespace set."""
    head = _HEADS.get(mask)
    if head is None:
        decls = "".join(
            f' xmlns:{prefix}="{uri}"'
            for flag, prefix, uri in _NS_DECLS
            if not flag or mask & flag
        )
        head = _XML_DECL + f"<soapenv:Envelope{decls}>".encode("ascii") + _BODY_OPEN
        _HEADS[mask] = head
    return head


def _head_pre(mask: int) -> bytes:
    """:func:`_head` minus the Body open tag, so a caller can drop a
    ``<soapenv:Header>`` block between the two without re-copying the
    finished envelope (splicing a header into a large array payload
    costs a full memcpy of the envelope; building it in place is free)."""
    pre = _PRE_HEADS.get(mask)
    if pre is None:
        pre = _PRE_HEADS[mask] = _head(mask)[: -len(_BODY_OPEN)]
    return pre


_ARG_NAMES = tuple(f"arg{i}" for i in range(64))


def _arg_name(i: int) -> str:
    return _ARG_NAMES[i] if i < 64 else f"arg{i}"


class CallEncoder:
    """Cached marshalling plan for one ``(target, operation)`` pair.

    Everything constant across calls — the operation tag with its
    ``target`` attribute and the close tags — is rendered once here; the
    envelope head is shared via :func:`_head` keyed by the namespaces the
    arguments actually use.  ``encode`` builds each call in a private
    buffer, so one encoder is safe under concurrent use.
    """

    __slots__ = ("_open", "_selfclose", "_close", "_array_mode")

    def __init__(self, target: str, operation: str, array_mode: str = "base64"):
        lead = f"<{operation} target={quoteattr(target)}"
        self._open = f"{lead}>".encode("utf-8")
        self._selfclose = f"{lead}/>".encode("utf-8")
        self._close = f"</{operation}>".encode("utf-8")
        self._array_mode = array_mode

    def encode(self, args: tuple | list, header: bytes = b"") -> bytes:
        """Render one call; *header* (a finished ``<soapenv:Header>…``
        block) is stitched in ahead of the Body during the single join,
        byte-identical to splicing it afterwards but without the copy."""
        body = bytearray()
        mask = 0
        if args:
            if self._array_mode not in ARRAY_MODES:
                raise EncodingError(f"unknown array mode {self._array_mode!r}")
            for i, arg in enumerate(args):
                mask |= encode_value_into(body, _arg_name(i), arg, self._array_mode)
        if header:
            open_ = self._open if body else self._selfclose
            return b"".join(
                (_head_pre(mask), header, _BODY_OPEN, open_, body, self._close if body else b"", _TAIL)
            )
        if body:
            return b"".join((_head(mask), self._open, body, self._close, _TAIL))
        return b"".join((_head(mask), self._selfclose, _TAIL))


class _ReplyEncoder:
    __slots__ = ("_open", "_close", "_array_mode")

    def __init__(self, operation: str, array_mode: str):
        self._open = f"<{operation}Response>".encode("utf-8")
        self._close = f"</{operation}Response>".encode("utf-8")
        self._array_mode = array_mode

    def encode(self, result: Any) -> bytes:
        if self._array_mode not in ARRAY_MODES:
            raise EncodingError(f"unknown array mode {self._array_mode!r}")
        body = bytearray()
        mask = encode_value_into(body, "return", result, self._array_mode)
        return b"".join((_head(mask), self._open, body, self._close, _TAIL))


#: Template caches.  Bounded crudely — on overflow the whole cache is
#: dropped and rebuilt, which is cheap (template construction is a handful
#: of f-strings) and keeps lookups a plain dict get with no locking.
_TEMPLATE_LIMIT = 1024
_CALL_TEMPLATES: dict[tuple[str, str, str], CallEncoder] = {}
_REPLY_TEMPLATES: dict[tuple[str, str], _ReplyEncoder] = {}


def call_encoder(target: str, operation: str, array_mode: str = "base64") -> CallEncoder:
    """The cached :class:`CallEncoder` for ``(target, operation, mode)``."""
    key = (target, operation, array_mode)
    encoder = _CALL_TEMPLATES.get(key)
    if encoder is None:
        if len(_CALL_TEMPLATES) >= _TEMPLATE_LIMIT:
            _CALL_TEMPLATES.clear()
        encoder = _CALL_TEMPLATES[key] = CallEncoder(target, operation, array_mode)
    return encoder


def _reply_encoder(operation: str, array_mode: str) -> _ReplyEncoder:
    key = (operation, array_mode)
    encoder = _REPLY_TEMPLATES.get(key)
    if encoder is None:
        if len(_REPLY_TEMPLATES) >= _TEMPLATE_LIMIT:
            _REPLY_TEMPLATES.clear()
        encoder = _REPLY_TEMPLATES[key] = _ReplyEncoder(operation, array_mode)
    return encoder


# -- building (fast path) -----------------------------------------------------------


def build_call_envelope(
    target: str,
    operation: str,
    args: tuple | list,
    array_mode: str = "base64",
) -> bytes:
    """Serialize an RPC call envelope.

    The body holds one ``<{operation}>`` element carrying a ``target``
    attribute (the Harness II port/instance address) and one ``<arg{i}>``
    child per positional argument.
    """
    return call_encoder(target, operation, array_mode).encode(args)


def build_reply_envelope(result: Any, operation: str = "Response", array_mode: str = "base64") -> bytes:
    """Serialize a successful RPC reply with one ``<return>`` element."""
    return _reply_encoder(operation, array_mode).encode(result)


def build_fault_envelope(faultcode: str, faultstring: str, detail: str = "") -> bytes:
    """Serialize a SOAP ``<Fault>`` reply."""

    def child(tag: str, text: str) -> str:
        escaped = escape(text)
        return f"<{tag}>{escaped}</{tag}>" if escaped else f"<{tag}/>"

    middle = child("faultcode", faultcode) + child("faultstring", faultstring)
    if detail:
        middle += child("detail", detail)
    return b"".join(
        (_head(0), b"<soapenv:Fault>", middle.encode("utf-8"), b"</soapenv:Fault>", _TAIL)
    )


# -- parsing (expat pull fast path) -------------------------------------------------


class _Unsupported(Exception):
    """Envelope shape outside the streaming subset; retry with the tree parser."""


_X_BODY = f"{NS_SOAP_ENV}}}Body"


class _EnvelopeReader:
    """Expat handler set streaming an envelope straight to values.

    The skeleton (Envelope → Body → first child) is tracked with a depth
    counter; everything below the call/reply element runs through
    :class:`~repro.soap.values.ValueFrame` stacks, so arguments materialise
    as Python values the moment their element closes.
    """

    __slots__ = (
        "kind", "depth", "skip", "in_body", "saw_body", "body_child_seen",
        "stack", "args", "operation", "target", "result", "saw_return",
        "fault_error", "is_fault", "in_reply_root",
    )

    def __init__(self, kind: str):
        self.kind = kind  # "call" | "reply"
        self.depth = 0
        self.skip = 0
        self.in_body = False
        self.saw_body = False
        self.body_child_seen = False
        self.stack: list[ValueFrame] = []
        self.args: list[Any] = []
        self.operation = ""
        self.target = ""
        self.result: Any = None
        self.saw_return = False
        self.fault_error: SoapFaultError | None = None
        self.is_fault = False
        self.in_reply_root = False

    # -- expat handlers ---------------------------------------------------------

    def start(self, name: str, attrs: dict[str, str]) -> None:
        if self.skip:
            self.skip += 1
            return
        stack = self.stack
        if stack:
            parent = stack[-1]
            parent.has_children = True
            stack.append(ValueFrame(name.rpartition("}")[2], attrs, raw=parent.raw_children))
            self.depth += 1
            return
        d = self.depth
        self.depth = d + 1
        if d == 0:
            local = name.rpartition("}")[2]
            if local != "Envelope":
                raise EncodingError(f"not a SOAP envelope: <{local}>")
            return
        if d == 1:
            if not self.saw_body and name.rpartition("}")[2] == "Body":
                if name != _X_BODY:
                    # a local-name-only <Body> match: the tree model's
                    # namespace-lenient find() semantics decide — fall back
                    raise _Unsupported
                self.saw_body = True
                self.in_body = True
            else:
                # Header and anything else under Envelope: skip the subtree.
                # The skip counter owns depth bookkeeping from here, so the
                # increment above is rolled back.
                self.depth = d
                self.skip = 1
            return
        if d == 2:
            if self.body_child_seen:
                self.depth = d
                self.skip = 1  # only the first Body child is the message
                return
            self.body_child_seen = True
            local = name.rpartition("}")[2]
            if self.kind == "call":
                self.operation = local
                self.target = expat_attr(attrs, "", "target", "target") or ""
            elif local == "Fault":
                self.is_fault = True
                stack.append(ValueFrame(local, attrs, raw=True))
            else:
                self.in_reply_root = True
            return
        # d == 3: direct children of the call element / reply root
        local = name.rpartition("}")[2]
        if self.kind == "call":
            stack.append(ValueFrame(local, attrs))
            return
        if self.in_reply_root and local == "return" and not self.saw_return:
            self.saw_return = True
            stack.append(ValueFrame(local, attrs))
            return
        self.depth = d
        self.skip = 1

    def cdata(self, data: str) -> None:
        if self.skip:
            return
        stack = self.stack
        if stack:
            frame = stack[-1]
            if not frame.has_children:
                frame.text.append(data)

    def end(self, name: str) -> None:
        if self.skip:
            self.skip -= 1
            return
        self.depth -= 1
        stack = self.stack
        if stack:
            frame = stack.pop()
            if stack:
                stack[-1].children.append(frame.close())
            elif self.is_fault:
                self.fault_error = _fault_from_frame(frame)
            elif self.kind == "call":
                self.args.append(frame.close()[2])
            else:
                self.result = frame.close()[2]
            return
        if self.depth == 1 and self.in_body:
            self.in_body = False
            if not self.body_child_seen:
                raise EncodingError("SOAP body is empty")

    # -- results ---------------------------------------------------------------

    def finish_call(self) -> tuple[str, str, list]:
        if not self.saw_body:
            raise EncodingError("SOAP envelope has no <Body>")
        return self.target, self.operation, self.args

    def finish_reply(self) -> tuple[Any, SoapFaultError | None]:
        if not self.saw_body:
            raise EncodingError("SOAP envelope has no <Body>")
        if self.fault_error is not None:
            return None, self.fault_error
        if not self.saw_return:
            raise EncodingError("SOAP reply lacks a <return> element")
        return self.result, None


def _fault_from_frame(frame: ValueFrame) -> SoapFaultError:
    code = string = detail = None
    for local, _key, _value, text in frame.children:
        if local == "faultcode" and code is None:
            code = text
        elif local == "faultstring" and string is None:
            string = text
        elif local == "detail" and detail is None:
            detail = text
    return SoapFaultError(
        code if code is not None else "soapenv:Server",
        string if string is not None else "unknown fault",
        detail,
    )


def _run_reader(kind: str, data: bytes | str) -> _EnvelopeReader:
    if not isinstance(data, (bytes, str)):
        data = bytes(data)
    reader = _EnvelopeReader(kind)
    parser = expat.ParserCreate(namespace_separator="}")
    parser.buffer_text = True
    parser.StartElementHandler = reader.start
    parser.EndElementHandler = reader.end
    parser.CharacterDataHandler = reader.cdata
    try:
        parser.Parse(data, True)
    except expat.ExpatError as exc:
        raise XmlError(f"malformed XML: {exc}") from exc
    return reader


def parse_call_envelope(data: bytes | str) -> tuple[str, str, list]:
    """Parse a call envelope into ``(target, operation, args)``."""
    try:
        reader = _run_reader("call", data)
    except _Unsupported:
        return parse_call_envelope_tree(data)
    return reader.finish_call()


def parse_reply_envelope_ex(data: bytes | str) -> tuple[Any, SoapFaultError | None]:
    """Parse a reply envelope once, returning ``(result, fault)``.

    Exactly one of the pair is meaningful: ``(value, None)`` for success
    replies, ``(None, SoapFaultError)`` for faults.  Callers that need to
    *inspect* a fault (rather than unwind on it) use this to avoid paying
    a second full envelope parse.
    """
    try:
        reader = _run_reader("reply", data)
    except _Unsupported:
        return _parse_reply_tree_ex(data)
    return reader.finish_reply()


def parse_reply_envelope(data: bytes | str) -> Any:
    """Parse a reply envelope; raises :class:`SoapFaultError` for faults."""
    result, fault = parse_reply_envelope_ex(data)
    if fault is not None:
        raise fault
    return result


# -- tree reference path ------------------------------------------------------------


def _skeleton() -> tuple[XmlElement, XmlElement]:
    envelope = XmlElement(_ENVELOPE)
    body = envelope.element(_BODY)
    return envelope, body


def build_call_envelope_tree(
    target: str,
    operation: str,
    args: tuple | list,
    array_mode: str = "base64",
) -> bytes:
    """Reference implementation of :func:`build_call_envelope` (full tree)."""
    envelope, body = _skeleton()
    call = body.element(QName("", operation), {"target": target})
    for i, arg in enumerate(args):
        call.append(value_to_element(f"arg{i}", arg, array_mode))
    return to_string(envelope, indent=False).encode("utf-8")


def build_reply_envelope_tree(result: Any, operation: str = "Response", array_mode: str = "base64") -> bytes:
    """Reference implementation of :func:`build_reply_envelope` (full tree)."""
    envelope, body = _skeleton()
    reply = body.element(QName("", f"{operation}Response"))
    reply.append(value_to_element("return", result, array_mode))
    return to_string(envelope, indent=False).encode("utf-8")


def build_fault_envelope_tree(faultcode: str, faultstring: str, detail: str = "") -> bytes:
    """Reference implementation of :func:`build_fault_envelope` (full tree)."""
    envelope, body = _skeleton()
    fault = body.element(_FAULT)
    fault.element("faultcode", text=faultcode)
    fault.element("faultstring", text=faultstring)
    if detail:
        fault.element("detail", text=detail)
    return to_string(envelope, indent=False).encode("utf-8")


def parse_call_envelope_tree(data: bytes | str) -> tuple[str, str, list]:
    """Reference implementation of :func:`parse_call_envelope` (full tree)."""
    root = parse(data)
    body = _require_body(root)
    if not body.children:
        raise EncodingError("SOAP body is empty")
    call = body.children[0]
    target = call.get("target") or ""
    args = [element_to_value(child) for child in call.children]
    return target, call.name.local, args


def parse_reply_envelope_tree(data: bytes | str) -> Any:
    """Reference implementation of :func:`parse_reply_envelope` (full tree)."""
    root = parse(data)
    body = _require_body(root)
    if not body.children:
        raise EncodingError("SOAP body is empty")
    first = body.children[0]
    if first.name == _FAULT or first.name.local == "Fault":
        code_el = first.find("faultcode")
        string_el = first.find("faultstring")
        detail_el = first.find("detail")
        raise SoapFaultError(
            code_el.text if code_el is not None else "soapenv:Server",
            string_el.text if string_el is not None else "unknown fault",
            detail_el.text if detail_el is not None else None,
        )
    ret = first.find("return")
    if ret is None:
        raise EncodingError("SOAP reply lacks a <return> element")
    return element_to_value(ret)


def _parse_reply_tree_ex(data: bytes | str) -> tuple[Any, SoapFaultError | None]:
    try:
        return parse_reply_envelope_tree(data), None
    except SoapFaultError as fault:
        return None, fault


def _require_body(root: XmlElement) -> XmlElement:
    if root.name.local != "Envelope":
        raise EncodingError(f"not a SOAP envelope: <{root.name.local}>")
    body = root.find(_BODY) or root.find("Body")
    if body is None:
        raise EncodingError("SOAP envelope has no <Body>")
    return body
