"""``repro.messaging`` — named mailboxes with normative delivery semantics.

The queued counterpart to the RPC stack (DESIGN.md §15).  A
:class:`~repro.messaging.broker.MessageBroker` hosts named mailboxes, each
with one of three delivery modes:

``first-reader``
    Work-queue: each message is consumed by exactly one subscriber, exactly
    once.  Unacked messages are redelivered (in sequence order, flagged
    ``redelivered``) when their consumer dies or closes without acking.
``all-readers``
    Fan-out: every live subscriber gets its own copy, in publish order per
    publisher.
``tap``
    Lossy observer: never exerts back-pressure on publishers; overflow
    drops the oldest observation and publishes an ``mbox.dropped`` bus
    event.

Queues are bounded with an explicit overflow policy: ``drop-oldest``
(evict + bus event), ``reject`` (typed :class:`MailboxFullError`), or
``block-with-deadline`` (publisher waits; :class:`HarnessTimeoutError` on
expiry).  No mode loses a message silently.

Bindings carry the same client API in-process
(:class:`~repro.messaging.bindings.InprocMailboxClient`), over the netsim
fabric on the VirtualClock (:class:`~repro.messaging.bindings.SimMailboxHost`
/ ``SimMailboxClient``), and over TCP v2 multiplexed frames with server
push (:mod:`repro.messaging.tcpbind`).
"""

from repro.messaging.bindings import (
    InprocMailboxClient,
    SimMailboxClient,
    SimMailboxHost,
)
from repro.messaging.broker import (
    DELIVERY_MODES,
    OVERFLOW_POLICIES,
    Delivery,
    MailboxStats,
    Message,
    MessageBroker,
    Subscription,
)
from repro.messaging.tcpbind import MailboxTcpClient, MailboxTcpServer
from repro.util.errors import MailboxFullError, MessagingError

__all__ = [
    "DELIVERY_MODES",
    "OVERFLOW_POLICIES",
    "Delivery",
    "InprocMailboxClient",
    "MailboxStats",
    "MailboxTcpClient",
    "MailboxTcpServer",
    "Message",
    "MessageBroker",
    "SimMailboxClient",
    "SimMailboxHost",
    "Subscription",
    "MailboxFullError",
    "MessagingError",
]
