"""Declarative fault-scenario manifests.

A manifest is one JSON (or YAML, when PyYAML happens to be installed)
document that declares everything a chaos run needs:

* a **topology** — which :mod:`repro.netsim.topology` builder to use and how
  many hosts it gets;
* the **services** deployed on it and whether they are ``restartable``;
* a **workload mix** — which operations are fired at which service, from
  which nodes, at what per-tick rate, under which invocation policy;
* a timed **fault script** — ``kill node1 @ t=2s``, ``partition A/B @ 4s``,
  ``heal @ 6s``, jitter bursts, lossy links, slow consumers, blackholes;
* **pass criteria** expressed as named invariant checkers (see
  :mod:`repro.scenario.checks`).

Parsing is strict: unknown keys, unknown fault actions, and unknown check
names are :class:`~repro.util.errors.ScenarioError`\\ s at load time, not
silent no-ops at t=8s of a soak run.  Every field that feeds a random
decision is seeded from the manifest's single ``seed``, which is what makes
a re-run byte-identical (see DESIGN.md §11).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.util.errors import ScenarioError

__all__ = [
    "ScenarioManifest",
    "TopologySpec",
    "DvmSpec",
    "ServiceSpec",
    "SelfHealingSpec",
    "OpSpec",
    "WorkloadSpec",
    "FaultAction",
    "CheckSpec",
    "parse_manifest",
    "load_manifest",
    "TOPOLOGY_KINDS",
]

TOPOLOGY_KINDS = ("lan", "wan", "two_clusters", "mesh", "random_regular")

#: actions the fault interpreter understands (see :mod:`repro.scenario.faults`)
_FAULT_ACTIONS = frozenset(
    {
        "kill",
        "restart",
        "partition",
        "heal",
        "link_faults",
        "default_faults",
        "slow_link",
        "slow_node",
        "blackhole",
        "unblackhole",
        "reactor_capacity",
    }
)

#: reactor-listener knobs a ``mode="reactor"`` workload may configure
_SERVER_KEYS = frozenset(
    {"workers", "queue_max", "per_conn_max", "read_deadline_s"}
)

#: mailbox declaration a ``mode="mailbox"`` workload may configure
_MAILBOX_KEYS = frozenset({"mode", "capacity", "overflow"})

_MAILBOX_MODES = ("first-reader", "all-readers", "tap")
_MAILBOX_OVERFLOWS = ("drop-oldest", "reject", "block-with-deadline")

#: workload keys that only make sense for ``mode="mailbox"``
_MAILBOX_ONLY_KEYS = (
    "broker_node",
    "consumers",
    "consume_per_tick",
    "ack_delay_ticks",
    "lease_s",
    "mailbox",
)

#: invocation-policy keys a manifest may set (mirrors ``InvocationPolicy``)
_POLICY_KEYS = frozenset(
    {
        "max_attempts",
        "backoff_base_s",
        "backoff_multiplier",
        "backoff_max_s",
        "jitter",
        "deadline_s",
        "idempotent",
        "breaker_threshold",
        "breaker_cooldown_s",
    }
)


def _strict(mapping: Mapping, where: str, required: tuple, optional: tuple) -> None:
    """Reject unknown or missing keys — manifest typos must fail loudly."""
    if not isinstance(mapping, Mapping):
        raise ScenarioError(f"{where} must be a mapping, got {type(mapping).__name__}")
    unknown = set(mapping) - set(required) - set(optional)
    if unknown:
        raise ScenarioError(f"{where}: unknown keys {sorted(unknown)}")
    missing = set(required) - set(mapping)
    if missing:
        raise ScenarioError(f"{where}: missing required keys {sorted(missing)}")


@dataclass(frozen=True)
class TopologySpec:
    """Which netsim topology builder to run and its shape parameters."""

    kind: str = "lan"
    hosts: int = 3
    neighborhood: int = 2  # mesh only
    per_cluster: int = 2  # two_clusters only
    degree: int = 4  # random_regular only

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        _strict(
            data,
            "topology",
            (),
            ("kind", "hosts", "neighborhood", "per_cluster", "degree"),
        )
        spec = cls(
            kind=data.get("kind", "lan"),
            hosts=int(data.get("hosts", 3)),
            neighborhood=int(data.get("neighborhood", 2)),
            per_cluster=int(data.get("per_cluster", 2)),
            degree=int(data.get("degree", 4)),
        )
        if spec.kind not in TOPOLOGY_KINDS:
            raise ScenarioError(
                f"topology: unknown kind {spec.kind!r} (choose from {TOPOLOGY_KINDS})"
            )
        if spec.kind == "two_clusters":
            if spec.per_cluster < 1:
                raise ScenarioError("topology: per_cluster must be >= 1")
        elif spec.hosts < 1:
            raise ScenarioError("topology: hosts must be >= 1")
        if spec.kind == "random_regular":
            if spec.degree < 1 or spec.degree >= spec.hosts:
                raise ScenarioError("topology: need 1 <= degree < hosts")
            if (spec.hosts * spec.degree) % 2:
                raise ScenarioError("topology: hosts*degree must be even")
        return spec


@dataclass(frozen=True)
class DvmSpec:
    """DVM construction knobs: coherency scheme and lookup-cache TTL."""

    coherency: str = "full-synchrony"
    neighborhood_radius: int = 2
    gossip_fanout: int = 2
    lookup_cache_ttl_s: float = 2.0

    @classmethod
    def from_dict(cls, data: Mapping) -> "DvmSpec":
        _strict(
            data,
            "dvm",
            (),
            ("coherency", "neighborhood_radius", "gossip_fanout", "lookup_cache_ttl_s"),
        )
        spec = cls(
            coherency=data.get("coherency", "full-synchrony"),
            neighborhood_radius=int(data.get("neighborhood_radius", 2)),
            gossip_fanout=int(data.get("gossip_fanout", 2)),
            lookup_cache_ttl_s=float(data.get("lookup_cache_ttl_s", 2.0)),
        )
        if spec.coherency not in (
            "full-synchrony",
            "decentralized",
            "neighborhood",
            "gossip",
            "neighborhood-gossip",
        ):
            raise ScenarioError(f"dvm: unknown coherency scheme {spec.coherency!r}")
        if spec.gossip_fanout < 1:
            raise ScenarioError("dvm: gossip_fanout must be >= 1")
        return spec


@dataclass(frozen=True)
class ServiceSpec:
    """One component deployment: import path, home node, restartability."""

    name: str
    type: str  # ``pkg.module:Class``
    node: str
    restartable: bool = False
    bindings: tuple[str, ...] = ("local-instance", "sim")

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceSpec":
        _strict(data, "service", ("name", "type", "node"), ("restartable", "bindings"))
        if ":" not in data["type"]:
            raise ScenarioError(f"service {data['name']!r}: type must be 'pkg.module:Class'")
        return cls(
            name=str(data["name"]),
            type=str(data["type"]),
            node=str(data["node"]),
            restartable=bool(data.get("restartable", False)),
            bindings=tuple(data.get("bindings", ("local-instance", "sim"))),
        )


@dataclass(frozen=True)
class SelfHealingSpec:
    """Detector/failover configuration, cadenced in ticks for determinism."""

    enabled: bool = True
    observer: str | None = None
    suspect_after: int = 2
    evict_after: int = 3
    heartbeat_every_ticks: int = 1
    checkpoint_every_ticks: int = 1
    indirect_probes: int = 0
    sample: int | None = None
    coalesce_after: int = 8

    @classmethod
    def from_dict(cls, data: Mapping) -> "SelfHealingSpec":
        _strict(
            data,
            "self_healing",
            (),
            (
                "enabled",
                "observer",
                "suspect_after",
                "evict_after",
                "heartbeat_every_ticks",
                "checkpoint_every_ticks",
                "indirect_probes",
                "sample",
                "coalesce_after",
            ),
        )
        sample = data.get("sample")
        spec = cls(
            enabled=bool(data.get("enabled", True)),
            observer=data.get("observer"),
            suspect_after=int(data.get("suspect_after", 2)),
            evict_after=int(data.get("evict_after", 3)),
            heartbeat_every_ticks=int(data.get("heartbeat_every_ticks", 1)),
            checkpoint_every_ticks=int(data.get("checkpoint_every_ticks", 1)),
            indirect_probes=int(data.get("indirect_probes", 0)),
            sample=None if sample is None else int(sample),
            coalesce_after=int(data.get("coalesce_after", 8)),
        )
        if spec.heartbeat_every_ticks < 1 or spec.checkpoint_every_ticks < 1:
            raise ScenarioError("self_healing: cadences must be >= 1 tick")
        if spec.indirect_probes < 0:
            raise ScenarioError("self_healing: indirect_probes must be >= 0")
        if spec.sample is not None and spec.sample < 1:
            raise ScenarioError("self_healing: sample must be >= 1 (or omitted)")
        if spec.coalesce_after < 1:
            raise ScenarioError("self_healing: coalesce_after must be >= 1")
        return spec


@dataclass(frozen=True)
class OpSpec:
    """One entry of the workload mix: operation, args, relative weight."""

    op: str
    args: tuple = ()
    weight: float = 1.0

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpSpec":
        _strict(data, "workload op", ("op",), ("args", "weight"))
        weight = float(data.get("weight", 1.0))
        if weight <= 0:
            raise ScenarioError(f"workload op {data['op']!r}: weight must be > 0")
        return cls(op=str(data["op"]), args=tuple(data.get("args", ())), weight=weight)


@dataclass(frozen=True)
class WorkloadSpec:
    """The traffic a scenario drives while faults play out.

    ``mode="rpc"`` invokes operations on a stub; ``mode="lookup"`` performs
    DVM namespace lookups (``ops`` are ignored) — the thundering-herd shape.
    ``mode="shard_lookup"`` drives by-name queries against a
    :class:`~repro.registry.sharded.ShardedRegistry` built over the same
    fabric (``replication`` owners per name); killing a shard owner mid-run
    exercises the replica-fallback path.
    ``mode="reactor"`` bypasses the simulated fabric entirely and drives a
    *real* reactor listener (:mod:`repro.transport.reactor`) with
    ``concurrency`` blocking caller threads per tick; ``server`` holds the
    listener's capacity knobs (``workers``/``queue_max``/``per_conn_max``/
    ``read_deadline_s``) and the manifest must set ``wall: true`` since
    real sockets do not run on a virtual clock.
    ``mode="mailbox"`` runs a messaging broker
    (:class:`~repro.messaging.bindings.SimMailboxHost` on ``broker_node``)
    over the fabric: ``from_nodes`` publish ``calls_per_tick`` messages per
    tick into the mailbox named by ``service`` and each node in
    ``consumers`` drains up to ``consume_per_tick`` per tick, acking
    ``ack_delay_ticks`` ticks later (>0 keeps deliveries in-flight so a
    consumer crash leaves unacked messages to redeliver).  ``mailbox``
    declares the queue (``mode``/``capacity``/``overflow``) and ``lease_s``
    is the consumer-liveness lease in scenario seconds.
    ``policy`` holds raw :class:`~repro.bindings.policy.InvocationPolicy`
    kwargs; ``jitter`` defaults to 0.0 here (not the library default) so the
    retry schedule never consults an unseeded RNG.
    """

    service: str
    from_nodes: tuple[str, ...]
    calls_per_tick: int = 1
    mode: str = "rpc"
    ops: tuple[OpSpec, ...] = ()
    resilient: bool = False
    policy: Mapping[str, Any] | None = None
    concurrency: int = 16
    server: Mapping[str, Any] | None = None
    call_timeout_s: float = 5.0
    replication: int = 2  # shard_lookup only
    # mailbox mode only
    broker_node: str = ""
    consumers: tuple[str, ...] = ()
    consume_per_tick: int = 1
    ack_delay_ticks: int = 0
    lease_s: float | None = 2.0
    mailbox: Mapping[str, Any] | None = None

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        _strict(
            data,
            "workload",
            ("service", "from_nodes"),
            (
                "calls_per_tick",
                "mode",
                "ops",
                "resilient",
                "policy",
                "concurrency",
                "server",
                "call_timeout_s",
                "replication",
            )
            + _MAILBOX_ONLY_KEYS,
        )
        mode = data.get("mode", "rpc")
        if mode not in ("rpc", "lookup", "reactor", "shard_lookup", "mailbox"):
            raise ScenarioError(f"workload: unknown mode {mode!r}")
        if "replication" in data and mode != "shard_lookup":
            raise ScenarioError("workload: 'replication' needs mode='shard_lookup'")
        if mode != "mailbox":
            for key in _MAILBOX_ONLY_KEYS:
                if key in data:
                    raise ScenarioError(f"workload: {key!r} needs mode='mailbox'")
        mailbox = data.get("mailbox")
        if mailbox is not None:
            _strict(mailbox, "workload mailbox", (), tuple(_MAILBOX_KEYS))
            mailbox = dict(mailbox)
            if mailbox.get("mode", "first-reader") not in _MAILBOX_MODES:
                raise ScenarioError(
                    f"workload mailbox: unknown mode {mailbox['mode']!r} "
                    f"(choose from {_MAILBOX_MODES})"
                )
            if mailbox.get("overflow", "reject") not in _MAILBOX_OVERFLOWS:
                raise ScenarioError(
                    f"workload mailbox: unknown overflow {mailbox['overflow']!r} "
                    f"(choose from {_MAILBOX_OVERFLOWS})"
                )
        ops = tuple(OpSpec.from_dict(op) for op in data.get("ops", ()))
        if mode in ("rpc", "reactor") and not ops:
            raise ScenarioError(f"workload: {mode} mode needs at least one op")
        policy = data.get("policy")
        if policy is not None:
            _strict(policy, "workload policy", (), tuple(_POLICY_KEYS))
            policy = dict(policy)
            policy.setdefault("jitter", 0.0)  # keep retry schedules seeded-deterministic
        server = data.get("server")
        if server is not None:
            if mode != "reactor":
                raise ScenarioError("workload: 'server' knobs need mode='reactor'")
            _strict(server, "workload server", (), tuple(_SERVER_KEYS))
            server = dict(server)
        spec = cls(
            service=str(data["service"]),
            from_nodes=tuple(str(n) for n in data["from_nodes"]),
            calls_per_tick=int(data.get("calls_per_tick", 1)),
            mode=mode,
            ops=ops,
            resilient=bool(data.get("resilient", False)),
            policy=policy,
            concurrency=int(data.get("concurrency", 16)),
            server=server,
            call_timeout_s=float(data.get("call_timeout_s", 5.0)),
            replication=int(data.get("replication", 2)),
            broker_node=str(data.get("broker_node", "")),
            consumers=tuple(str(n) for n in data.get("consumers", ())),
            consume_per_tick=int(data.get("consume_per_tick", 1)),
            ack_delay_ticks=int(data.get("ack_delay_ticks", 0)),
            lease_s=(None if data.get("lease_s", 2.0) is None
                     else float(data.get("lease_s", 2.0))),
            mailbox=mailbox,
        )
        if not spec.from_nodes:
            raise ScenarioError("workload: from_nodes must not be empty")
        if spec.calls_per_tick < 1:
            raise ScenarioError("workload: calls_per_tick must be >= 1")
        if spec.concurrency < 1:
            raise ScenarioError("workload: concurrency must be >= 1")
        if spec.call_timeout_s <= 0:
            raise ScenarioError("workload: call_timeout_s must be positive")
        if spec.replication < 1:
            raise ScenarioError("workload: replication must be >= 1")
        if mode == "mailbox":
            if not spec.broker_node:
                raise ScenarioError("workload: mailbox mode needs 'broker_node'")
            if not spec.consumers:
                raise ScenarioError("workload: mailbox mode needs 'consumers'")
            if spec.consume_per_tick < 1:
                raise ScenarioError("workload: consume_per_tick must be >= 1")
            if spec.ack_delay_ticks < 0:
                raise ScenarioError("workload: ack_delay_ticks must be >= 0")
            if spec.lease_s is not None and spec.lease_s <= 0:
                raise ScenarioError("workload: lease_s must be positive (or null)")
        return spec


@dataclass(frozen=True)
class FaultAction:
    """One timed entry of the fault script: do *action* at *at* seconds."""

    at: float
    action: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultAction":
        if not isinstance(data, Mapping) or "at" not in data or "action" not in data:
            raise ScenarioError(f"fault entries need 'at' and 'action': {data!r}")
        action = str(data["action"])
        if action not in _FAULT_ACTIONS:
            raise ScenarioError(
                f"unknown fault action {action!r} (choose from {sorted(_FAULT_ACTIONS)})"
            )
        at = float(data["at"])
        if at < 0:
            raise ScenarioError(f"fault {action!r}: 'at' must be >= 0")
        params = {k: v for k, v in data.items() if k not in ("at", "action")}
        return cls(at=at, action=action, params=params)


@dataclass(frozen=True)
class CheckSpec:
    """One named invariant checker plus its parameters."""

    check: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping) -> "CheckSpec":
        if not isinstance(data, Mapping) or "check" not in data:
            raise ScenarioError(f"check entries need a 'check' name: {data!r}")
        # the name itself is validated against the checker registry at
        # manifest validation time (checks.py owns the vocabulary)
        params = {k: v for k, v in data.items() if k != "check"}
        return cls(check=str(data["check"]), params=params)


@dataclass(frozen=True)
class ScenarioManifest:
    """A fully parsed, validated chaos scenario."""

    name: str
    description: str = ""
    claim: str = ""
    seed: int = 0
    #: run on the real clock with real sockets — such scenarios are
    #: *not* byte-identical across runs, so the soak harness skips the
    #: determinism re-run for them (see library.run_all)
    wall: bool = False
    duration_s: float = 10.0
    tick_s: float = 0.5
    settle_ticks: int = 0
    topology: TopologySpec = field(default_factory=TopologySpec)
    dvm: DvmSpec = field(default_factory=DvmSpec)
    services: tuple[ServiceSpec, ...] = ()
    self_healing: SelfHealingSpec = field(default_factory=SelfHealingSpec)
    workload: WorkloadSpec | None = None
    faults: tuple[FaultAction, ...] = ()
    checks: tuple[CheckSpec, ...] = ()

    @property
    def n_ticks(self) -> int:
        """Timeline length in ticks (duration rounded to whole ticks)."""
        return max(1, round(self.duration_s / self.tick_s))

    def with_seed(self, seed: int) -> "ScenarioManifest":
        """A copy of this manifest running under a different seed."""
        from dataclasses import replace

        return replace(self, seed=int(seed))


def parse_manifest(data: Mapping) -> ScenarioManifest:
    """Build a validated :class:`ScenarioManifest` from a plain mapping."""
    _strict(
        data,
        "manifest",
        ("name",),
        (
            "description",
            "claim",
            "seed",
            "wall",
            "duration_s",
            "tick_s",
            "settle_ticks",
            "topology",
            "dvm",
            "services",
            "self_healing",
            "workload",
            "faults",
            "checks",
        ),
    )
    manifest = ScenarioManifest(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        claim=str(data.get("claim", "")),
        seed=int(data.get("seed", 0)),
        wall=bool(data.get("wall", False)),
        duration_s=float(data.get("duration_s", 10.0)),
        tick_s=float(data.get("tick_s", 0.5)),
        settle_ticks=int(data.get("settle_ticks", 0)),
        topology=TopologySpec.from_dict(data.get("topology", {})),
        dvm=DvmSpec.from_dict(data.get("dvm", {})),
        services=tuple(ServiceSpec.from_dict(s) for s in data.get("services", ())),
        self_healing=SelfHealingSpec.from_dict(data.get("self_healing", {})),
        workload=(
            WorkloadSpec.from_dict(data["workload"]) if data.get("workload") else None
        ),
        faults=tuple(
            sorted(
                (FaultAction.from_dict(f) for f in data.get("faults", ())),
                key=lambda f: f.at,
            )
        ),
        checks=tuple(CheckSpec.from_dict(c) for c in data.get("checks", ())),
    )
    if manifest.duration_s <= 0 or manifest.tick_s <= 0:
        raise ScenarioError("duration_s and tick_s must be positive")
    if (
        manifest.workload is not None
        and manifest.workload.mode == "reactor"
        and not manifest.wall
    ):
        raise ScenarioError(
            "workload mode 'reactor' drives real sockets; set \"wall\": true"
        )
    if manifest.settle_ticks < 0:
        raise ScenarioError("settle_ticks must be >= 0")
    for fault in manifest.faults:
        if fault.at > manifest.duration_s:
            raise ScenarioError(
                f"fault {fault.action!r} at t={fault.at}s lands after "
                f"duration {manifest.duration_s}s"
            )
    # the checker vocabulary lives in checks.py; validate names eagerly so a
    # typo'd manifest fails at load time rather than after the run
    from repro.scenario.checks import known_checks

    vocabulary = known_checks()
    for check in manifest.checks:
        if check.check not in vocabulary:
            raise ScenarioError(
                f"unknown check {check.check!r} (choose from {sorted(vocabulary)})"
            )
    return manifest


def load_manifest(path: str | Path) -> ScenarioManifest:
    """Load a manifest from a ``.json`` (or ``.yaml``/``.yml``) file.

    YAML support is gated on PyYAML being importable — the library itself
    never depends on it; JSON is the canonical interchange format.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml  # type: ignore[import-untyped]
        except ImportError:
            raise ScenarioError(
                f"{path.name}: YAML manifests need PyYAML installed; "
                "re-export the manifest as JSON"
            ) from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path.name}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ScenarioError(f"{path.name}: manifest must be a mapping")
    return parse_manifest(data)
