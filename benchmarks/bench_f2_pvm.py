"""F2 — the PVM plugin's messaging and spawning costs (Figure 2).

No numeric claim in the paper, but the figure's architecture implies the
measurable property that makes it viable: plugin-composed messaging must
add only thin overhead over the raw kernel channel, and same-kernel
messaging must be far cheaper than cross-kernel messaging (the locality
argument again, one layer down).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hpvmd import PvmDaemonPlugin


@pytest.fixture(scope="module")
def cluster():
    net = lan(2)
    harness = HarnessDvm("f2bench", net)
    harness.add_nodes("node0", "node1")
    for plugin in BASELINE_PLUGINS:
        harness.load_plugin_everywhere(plugin)
    for host in harness.kernels:
        harness.load_plugin(host, PvmDaemonPlugin(group_server="node0"))
    yield harness, net
    harness.close()


def echo_forever(pvm, count):
    for _ in range(count):
        envelope = pvm.recv(tag=1, timeout=30)
        pvm.send(envelope.data, 2, "pong")


def test_local_send_recv_benchmark(benchmark, cluster):
    harness, _ = cluster
    pvmd = harness.kernel("node0").get_service("pvm")
    console = pvmd.mytid()
    hmsg = pvmd.hmsg

    def ping():
        hmsg.send("node0", f"pvm:{console}", "ping", tag=5)
        hmsg.recv(f"pvm:{console}", tag=5, timeout=5)

    benchmark(ping)


def test_cross_kernel_send_benchmark(benchmark, cluster):
    harness, _ = cluster
    pvmd0 = harness.kernel("node0").get_service("pvm")
    hmsg1 = harness.kernel("node1").get_service("message-transport")
    hmsg1.open_mailbox("bench-box")
    hmsg0 = pvmd0.hmsg

    def ping():
        hmsg0.send("node1", "bench-box", "ping", tag=5)
        hmsg1.recv("bench-box", tag=5, timeout=5)

    benchmark(ping)


def test_spawn_benchmark(benchmark, cluster):
    harness, _ = cluster
    pvmd = harness.kernel("node0").get_service("pvm")

    def spawn_and_wait():
        tids = pvmd.spawn(lambda pvm: None, count=4)
        pvmd.wait_all(tids, timeout=10)

    benchmark.pedantic(spawn_and_wait, rounds=10, iterations=1)


def test_report_f2_messaging_profile(cluster):
    import time

    harness, net = cluster
    pvmd = harness.kernel("node0").get_service("pvm")
    console = pvmd.mytid()
    rows = []

    # round trip to a spawned local task
    count = 200
    tids = pvmd.spawn(echo_forever, count=1, args=(count,))
    start = time.perf_counter()
    for _ in range(count):
        pvmd.send(tids[0], 1, console)
        pvmd._recv_for(console, 2, 10.0)
    local_rt = (time.perf_counter() - start) / count
    pvmd.wait_all(tids)
    rows.append(["same-kernel task", f"{local_rt * 1e6:.1f}us"])

    # round trip to a remote task (cross-kernel, XDR-encoded, fabric-charged)
    remote = pvmd.spawn("benchmarks.bench_f2_pvm:echo_forever", count=1,
                        where="node1", args=(count,))
    net.reset_stats()
    start = time.perf_counter()
    for _ in range(count):
        pvmd.send(remote[0], 1, console)
        pvmd._recv_for(console, 2, 10.0)
    remote_rt = (time.perf_counter() - start) / count
    pvmd.wait_all(remote)
    rows.append(["cross-kernel task", f"{remote_rt * 1e6:.1f}us"])
    rows.append(["cross-kernel fabric msgs", net.total_messages])
    print_table("F2: PVM message round trips", ["path", "value"], rows)

    # locality shape: same-kernel cheaper; cross-kernel paid 2 fabric legs
    # per round trip (send is one-way + the reply)
    assert local_rt < remote_rt
    assert net.total_messages >= 2 * count
