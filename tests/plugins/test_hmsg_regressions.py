"""hmsg regressions: poll semantics, bounded queues, fanout wire economy.

These pin the behaviours reworked when hmsg moved onto the broker:

- ``recv(timeout=0)`` is an atomic poll — it deterministically returns a
  queued matching envelope or raises immediately, and the poll/block
  paths share one condition variable so a message landing between the
  check and the wait can't be missed;
- hmsg mailboxes are bounded — a full queue is a typed
  :class:`MailboxFullError`, not silent unbounded growth;
- ``fanout`` reaches many mailboxes on a host with ONE inter-kernel
  message (what hpvmd's mcast rides).
"""

import threading
import time

import pytest

from repro.core.kernel import HarnessKernel
from repro.netsim import lan
from repro.plugins.hmsg import MessageTransportPlugin
from repro.util.errors import HarnessTimeoutError, MailboxFullError


@pytest.fixture
def pair():
    net = lan(2)
    kernels = []
    for i in range(2):
        kernel = HarnessKernel(f"node{i}", network=net)
        kernel.load_plugin(MessageTransportPlugin)
        kernels.append(kernel)
    yield kernels[0], kernels[1], net
    for kernel in kernels:
        kernel.shutdown()


class TestAtomicPoll:
    def test_poll_returns_queued_envelope(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        hmsg.send("node0", "box", "ready", tag=4)
        envelope = hmsg.recv("box", timeout=0)
        assert envelope.data == "ready" and envelope.tag == 4

    def test_poll_on_empty_raises_immediately(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        started = time.monotonic()
        with pytest.raises(HarnessTimeoutError, match="would block"):
            hmsg.recv("box", timeout=0)
        assert time.monotonic() - started < 0.1  # a poll, not a wait

    def test_poll_with_nonmatching_tag_raises_but_keeps_message(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        hmsg.send("node0", "box", "tagged", tag=1)
        with pytest.raises(HarnessTimeoutError):
            hmsg.recv("box", tag=2, timeout=0)
        # the drained-but-unmatched envelope waits in the stash, unharmed
        assert hmsg.recv("box", tag=1, timeout=0).data == "tagged"

    def test_negative_timeout_also_polls(self, pair):
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        with pytest.raises(HarnessTimeoutError):
            hmsg.recv("box", timeout=-1)

    def test_message_between_poll_and_block_wakes_receiver(self, pair):
        # the race the shared condvar closes: a blocked recv must be woken
        # by a send that lands after the initial empty check
        k0, _, _ = pair
        hmsg = k0.get_service("message-transport")
        hmsg.open_mailbox("box")
        got = {}

        def receiver():
            got["envelope"] = hmsg.recv("box", timeout=5)

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)  # let the receiver park
        hmsg.send("node0", "box", "late arrival")
        thread.join(timeout=5)
        assert not thread.is_alive(), "blocked recv never woke"
        assert got["envelope"].data == "late arrival"


class TestBoundedMailboxes:
    def test_full_mailbox_rejects_typed(self):
        net = lan(1)
        kernel = HarnessKernel("node0", network=net)
        try:
            hmsg = kernel.load_plugin(MessageTransportPlugin(capacity=2))
            hmsg.open_mailbox("tiny")
            hmsg.send("node0", "tiny", "a")
            hmsg.send("node0", "tiny", "b")
            with pytest.raises(MailboxFullError) as err:
                hmsg.send("node0", "tiny", "c")
            assert err.value.capacity == 2
            # the queue still holds exactly what was admitted
            assert hmsg.pending("tiny") == 2
            assert hmsg.recv("tiny", timeout=0).data == "a"
        finally:
            kernel.shutdown()


class TestFanout:
    def test_fanout_delivers_to_every_mailbox(self, pair):
        k0, k1, _ = pair
        remote = k1.get_service("message-transport")
        for name in ("a", "b", "c"):
            remote.open_mailbox(name)
        sent = k0.get_service("message-transport").fanout(
            "node1", ["a", "b", "c"], {"v": 9}, tag=2)
        assert sent == 3
        for name in ("a", "b", "c"):
            envelope = remote.recv(name, timeout=2)
            assert envelope.data == {"v": 9}
            assert envelope.tag == 2 and envelope.src_host == "node0"

    def test_fanout_costs_one_wire_message_not_n(self, pair):
        k0, k1, net = pair
        local = k0.get_service("message-transport")
        remote = k1.get_service("message-transport")
        boxes = ["m0", "m1", "m2"]
        for name in boxes:
            remote.open_mailbox(name)

        net.reset_stats()
        local.fanout("node1", boxes, "burst")
        fanout_msgs = net.total_messages

        net.reset_stats()
        for name in boxes:
            local.send("node1", name, "burst")
        individual_msgs = net.total_messages

        assert fanout_msgs * len(boxes) == individual_msgs
        for name in boxes:  # both rounds actually arrived
            assert remote.recv(name, timeout=2).data == "burst"
            assert remote.recv(name, timeout=2).data == "burst"

    def test_empty_fanout_is_free(self, pair):
        k0, _, net = pair
        net.reset_stats()
        assert k0.get_service("message-transport").fanout("node1", [], "x") == 0
        assert net.total_messages == 0
