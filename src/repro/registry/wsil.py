"""WS-Inspection (WSIL) documents.

The paper lists WSIL alongside UDDI as a lookup-system flavour ("the type
of lookup service used (e.g. UDDI, WSIL, etc.)", Section 4).  Where UDDI is
a central registry you *query*, WSIL is a decentralized *inspection
document* a provider serves next to its services: a flat list of service
names and WSDL locations.  The decentralized lookup scheme (C5) crawls
these documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import XmlError
from repro.xmlkit import NS_WSIL, QName, XmlElement, parse, to_string

__all__ = ["WsilEntry", "WsilDocument"]

_INSPECTION = QName(NS_WSIL, "inspection")
_SERVICE = QName(NS_WSIL, "service")
_NAME = QName(NS_WSIL, "name")
_DESCRIPTION = QName(NS_WSIL, "description")


@dataclass(frozen=True)
class WsilEntry:
    """One advertised service: a name plus the location of its WSDL."""

    name: str
    wsdl_location: str
    abstract: str = ""


class WsilDocument:
    """An inspection document: build, serialize, parse."""

    def __init__(self, entries: list[WsilEntry] | None = None):
        self.entries: list[WsilEntry] = list(entries or [])

    def add(self, name: str, wsdl_location: str, abstract: str = "") -> None:
        self.entries.append(WsilEntry(name, wsdl_location, abstract))

    def to_element(self) -> XmlElement:
        root = XmlElement(_INSPECTION)
        for entry in self.entries:
            service_el = root.element(_SERVICE)
            service_el.element(_NAME, text=entry.name)
            service_el.element(
                _DESCRIPTION,
                {"referencedNamespace": "http://schemas.xmlsoap.org/wsdl/",
                 "location": entry.wsdl_location},
                text=entry.abstract,
            )
        return root

    def to_string(self) -> str:
        return to_string(self.to_element())

    @classmethod
    def from_string(cls, text: str | bytes) -> "WsilDocument":
        root = parse(text)
        if root.name.local != "inspection":
            raise XmlError(f"not a WSIL document: <{root.name.local}>")
        doc = cls()
        for service_el in root.find_all("service"):
            name_el = service_el.find("name")
            desc_el = service_el.find("description")
            doc.add(
                name_el.text if name_el is not None else "",
                desc_el.get("location", "") if desc_el is not None else "",
                desc_el.text if desc_el is not None else "",
            )
        return doc

    def locate(self, name: str) -> str:
        """WSDL location for *name*; raises :class:`XmlError` when absent."""
        for entry in self.entries:
            if entry.name == name:
                return entry.wsdl_location
        raise XmlError(f"WSIL document lists no service {name!r}")

    def __len__(self) -> int:
        return len(self.entries)
