"""The example service components (WSTime, MatMul, LAPACK stand-in)."""

import numpy as np
import pytest

from repro.plugins.services import (
    CounterService,
    LinearAlgebraService,
    MatMul,
    WSTime,
)
from repro.util.errors import HarnessError


class TestWSTime:
    def test_get_time_is_ctime_shaped(self):
        text = WSTime().getTime()
        assert isinstance(text, str)
        parts = text.split()
        assert len(parts) == 5  # "Mon Jul  7 12:00:00 2026" → 5 tokens

    def test_epoch_seconds_monotonic_enough(self):
        service = WSTime()
        a = service.getEpochSeconds()
        b = service.getEpochSeconds()
        assert b >= a > 1e9


class TestMatMul:
    def test_flat_square_multiply(self, rng):
        service = MatMul()
        a = rng.random(16)
        b = rng.random(16)
        result = service.getResult(a, b)
        assert result.shape == (16,)
        assert np.allclose(result, (a.reshape(4, 4) @ b.reshape(4, 4)).ravel())

    def test_identity(self):
        service = MatMul()
        eye = np.eye(3).ravel()
        x = np.arange(9.0)
        assert np.allclose(service.getResult(eye, x), x)

    def test_size_mismatch_rejected(self):
        with pytest.raises(HarnessError):
            MatMul().getResult(np.arange(4.0), np.arange(9.0))

    def test_non_square_rejected(self):
        with pytest.raises(HarnessError):
            MatMul().getResult(np.arange(6.0), np.arange(6.0))

    def test_multiply_2d(self, rng):
        a = rng.random((3, 5))
        b = rng.random((5, 2))
        assert np.allclose(MatMul().multiply(a, b), a @ b)

    def test_multiply_shape_mismatch(self):
        with pytest.raises(HarnessError):
            MatMul().multiply(np.ones((2, 3)), np.ones((2, 3)))

    def test_list_inputs_accepted(self):
        result = MatMul().getResult([1.0, 0.0, 0.0, 1.0], [5.0, 6.0, 7.0, 8.0])
        assert np.allclose(result, [5.0, 6.0, 7.0, 8.0])


class TestLinearAlgebraService:
    @pytest.fixture
    def svc(self):
        return LinearAlgebraService()

    def test_solve(self, svc, rng):
        a = rng.random((6, 6)) + 6 * np.eye(6)
        x = rng.random(6)
        b = a @ x
        assert np.allclose(svc.solve(a, b), x)

    def test_lstsq(self, svc, rng):
        a = rng.random((10, 3))
        x = rng.random(3)
        solution = svc.lstsq(a, a @ x)
        assert np.allclose(solution, x)

    def test_determinant(self, svc):
        assert svc.determinant(np.diag([2.0, 3.0])) == pytest.approx(6.0)
        assert isinstance(svc.determinant(np.eye(2)), float)

    def test_inverse(self, svc, rng):
        a = rng.random((4, 4)) + 4 * np.eye(4)
        assert np.allclose(svc.inverse(a) @ a, np.eye(4), atol=1e-10)

    def test_singular_values_sorted(self, svc, rng):
        s = svc.singular_values(rng.random((5, 3)))
        assert len(s) == 3
        assert np.all(np.diff(s) <= 0)

    def test_norm(self, svc):
        assert svc.norm(np.array([[3.0, 4.0]])) == pytest.approx(5.0)


class TestCounterService:
    def test_accumulates(self):
        counter = CounterService()
        assert counter.increment() == 1
        assert counter.increment(5) == 6
        assert counter.value() == 6

    def test_instances_independent(self):
        a, b = CounterService(), CounterService()
        a.increment(3)
        assert b.value() == 0


class TestServicePlugins:
    def test_plugins_deploy_and_undeploy(self):
        from repro.core.kernel import HarnessKernel
        from repro.plugins.service_plugins import (
            LinalgServicePlugin,
            MatMulServicePlugin,
            TimeServicePlugin,
        )

        kernel = HarnessKernel("svc-host")
        for plugin_cls, service_name in (
            (TimeServicePlugin, "WSTime"),
            (MatMulServicePlugin, "MatMul"),
            (LinalgServicePlugin, "LinearAlgebraService"),
        ):
            kernel.load_plugin(plugin_cls(bindings=("local-instance",)))
            assert kernel.container.component_named(service_name)
        # figure 1 names: mmul provides matmul-service
        assert kernel.has_service("matmul-service")
        kernel.unload_plugin("mmul")
        from repro.util.errors import ServiceNotFoundError

        with pytest.raises(ServiceNotFoundError):
            kernel.container.component_named("MatMul")
        kernel.shutdown()

    def test_deployed_service_invocable_through_container(self, rng):
        from repro.core.kernel import HarnessKernel
        from repro.plugins.service_plugins import MatMulServicePlugin

        kernel = HarnessKernel("svc-host2")
        kernel.load_plugin(MatMulServicePlugin(bindings=("local-instance",)))
        stub = kernel.container.lookup("MatMul")
        a = rng.random((2, 2))
        assert np.allclose(stub.multiply(a, a), a @ a)
        kernel.shutdown()
