"""Clocks and timing utilities.

Two clock flavours coexist in the framework:

* :class:`WallClock` — thin wrapper over ``time.monotonic`` used by real
  transports and benchmarks.
* :class:`VirtualClock` — a manually advanced clock used by the ``netsim``
  fabric so that DVM-scale experiments (latency/bandwidth sweeps across
  hundreds of virtual hosts) are deterministic and instantaneous.

Both expose the same two-method protocol (``now()``, ``sleep()``), so any
layer that needs time takes a ``Clock`` and never calls ``time`` directly.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Protocol

__all__ = ["Clock", "WallClock", "VirtualClock", "Stopwatch", "Deadline"]


class Clock(Protocol):
    """Minimal clock protocol shared by wall and virtual clocks."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for *seconds*."""
        ...


class WallClock:
    """Real monotonic clock."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """A deterministic clock advanced explicitly or by sleeping.

    ``sleep`` advances the virtual time immediately; scheduled callbacks
    registered with :meth:`call_at` fire in timestamp order whenever the
    clock passes them.  This is enough to model message latency in
    ``netsim`` without real waiting.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.RLock()
        self._pending: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.advance(seconds)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run when the clock reaches *when*."""
        with self._lock:
            self._seq += 1
            heapq.heappush(self._pending, (when, self._seq, callback))

    def advance(self, seconds: float) -> None:
        """Move time forward, firing due callbacks in order."""
        with self._lock:
            target = self._now + seconds
        while True:
            with self._lock:
                if not self._pending or self._pending[0][0] > target:
                    self._now = target
                    return
                when, _, callback = heapq.heappop(self._pending)
                self._now = max(self._now, when)
            callback()

    def run_until_idle(self) -> None:
        """Fire every scheduled callback, advancing time as needed."""
        while True:
            with self._lock:
                if not self._pending:
                    return
                when, _, callback = heapq.heappop(self._pending)
                self._now = max(self._now, when)
            callback()


class Stopwatch:
    """Measure elapsed wall time; used by benchmarks and the profiler hooks."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock or WallClock()
        self._start = self._clock.now()

    def restart(self) -> None:
        self._start = self._clock.now()

    def elapsed(self) -> float:
        return self._clock.now() - self._start


class Deadline:
    """A point in time by which an operation must complete.

    ``remaining()`` never goes negative; ``expired`` flips exactly once.
    A ``timeout`` of ``None`` means "wait forever".
    """

    def __init__(self, timeout: float | None, clock: Clock | None = None):
        self._clock = clock or WallClock()
        self._expires = None if timeout is None else self._clock.now() + timeout

    @property
    def expired(self) -> bool:
        return self._expires is not None and self._clock.now() >= self._expires

    def remaining(self) -> float | None:
        """Seconds left, clamped at zero; ``None`` for an infinite deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock.now())
