"""hpvmd — PVM emulation over the plugin backplane (Figure 2)."""

import pytest

from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hpvmd import PvmDaemonPlugin
from repro.util.errors import PluginError


def echo_task(pvm, factor):
    """Importable worker used for remote spawns."""
    message = pvm.recv(tag=1)
    pvm.send(message.data["reply_to"], 2, message.data["value"] * factor)


def group_task(pvm, group, count):
    pvm.joingroup(group)
    pvm.barrier(group, count, timeout=10)
    pvm.send(pvm.parent, 9, pvm.tid)


@pytest.fixture
def cluster():
    net = lan(3)
    with HarnessDvm("pvm-dvm", net, coherency="full-synchrony") as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, PvmDaemonPlugin(group_server="node0"))
        yield harness, net


class TestDaemonWiring:
    def test_requires_figure2_services(self):
        assert set(PvmDaemonPlugin.requires) == {
            "message-transport", "process-management", "table-lookup", "event-management",
        }

    def test_cannot_load_without_dependencies(self):
        from repro.core.kernel import HarnessKernel
        from repro.util.errors import PluginLoadError

        kernel = HarnessKernel("alone")
        with pytest.raises(PluginLoadError):
            kernel.load_plugin(PvmDaemonPlugin)
        kernel.shutdown()


class TestTaskLifecycle:
    def test_spawn_and_message_round_trip(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        tids = pvmd.spawn(echo_task, count=3, args=(2,))
        assert len(tids) == 3
        console = pvmd.mytid()
        for i, tid in enumerate(tids):
            pvmd.send(tid, 1, {"reply_to": console, "value": i})
        replies = sorted(pvmd._recv_for(console, 2, 5.0).data for _ in tids)
        assert replies == [0, 2, 4]
        pvmd.wait_all(tids)

    def test_tids_are_host_scoped_and_unique(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node1").get_service("pvm")
        tids = pvmd.spawn(lambda pvm: None, count=5)
        assert len(set(tids)) == 5
        assert all(t.startswith("tid:node1:") for t in tids)

    def test_task_info_records_parent_and_state(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        tids = pvmd.spawn(lambda pvm: None, count=1, parent="tid:node0:999")
        pvmd.wait_all(tids)
        info = pvmd.task_info(tids[0])
        assert info["parent"] == "tid:node0:999"
        assert info["state"] == "exited"

    def test_remote_spawn_by_import_path(self, cluster):
        harness, _ = cluster
        pvmd0 = harness.kernel("node0").get_service("pvm")
        tids = pvmd0.spawn(
            "tests.plugins.test_hpvmd:echo_task", count=2, where="node2", args=(5,)
        )
        assert all(t.startswith("tid:node2:") for t in tids)
        console = pvmd0.mytid()
        for tid in tids:
            pvmd0.send(tid, 1, {"reply_to": console, "value": 3})
        replies = [pvmd0._recv_for(console, 2, 5.0).data for _ in tids]
        assert replies == [15, 15]
        # cross-host task info query goes through htable remotely
        info = pvmd0.task_info(tids[0])
        assert info["host"] == "node2"

    def test_remote_spawn_requires_import_path(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        with pytest.raises(PluginError):
            pvmd.spawn(lambda pvm: None, where="node1")

    def test_malformed_tid_rejected(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        with pytest.raises(PluginError):
            pvmd.send("garbage", 1, None)


class TestGroupsAndBarriers:
    def test_group_membership(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node1").get_service("pvm")
        tid = pvmd.mytid()
        pvmd.joingroup("workers", tid)
        assert tid in pvmd.group_members("workers")
        # membership visible from other daemons (shared group server)
        pvmd2 = harness.kernel("node2").get_service("pvm")
        assert tid in pvmd2.group_members("workers")

    def test_join_idempotent(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        tid = pvmd.mytid()
        pvmd.joingroup("g", tid)
        pvmd.joingroup("g", tid)
        assert pvmd.group_members("g").count(tid) == 1

    def test_barrier_releases_all(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()
        tids = pvmd.spawn(group_task, count=3, args=("sync", 3), parent=console)
        finished = sorted(pvmd._recv_for(console, 9, 10.0).data for _ in tids)
        assert finished == sorted(tids)
        pvmd.wait_all(tids)

    def test_cross_host_barrier(self, cluster):
        harness, _ = cluster
        pvmd0 = harness.kernel("node0").get_service("pvm")
        console = pvmd0.mytid()
        local = pvmd0.spawn(group_task, count=1, args=("xsync", 2), parent=console)
        remote = pvmd0.spawn(
            "tests.plugins.test_hpvmd:group_task", count=1, where="node1",
            args=("xsync", 2), parent=console,
        )
        done = {pvmd0._recv_for(console, 9, 10.0).data for _ in range(2)}
        assert done == set(local) | set(remote)


class TestPing:
    def test_ping_round_trip(self, cluster):
        harness, _ = cluster
        from repro.plugins import PingPlugin

        for host in harness.kernels:
            harness.load_plugin(host, PingPlugin)
        ping = harness.kernel("node0").get_service("ping")
        assert ping.ping("node2", 7) == 7


def bcast_listener(pvm, group):
    pvm.joingroup(group)
    pvm.send(pvm.parent, 8, "joined")
    envelope = pvm.recv(tag=3, timeout=10)
    pvm.send(pvm.parent, 9, envelope.data)


class TestMulticast:
    def test_mcast_explicit_tids(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()

        def waiter(pvm):
            envelope = pvm.recv(tag=4, timeout=10)
            pvm.send(pvm.parent, 5, envelope.data * 2)

        tids = pvmd.spawn(waiter, count=3, parent=console)
        assert pvmd.mcast(tids, 4, 21) == 3
        replies = [pvmd._recv_for(console, 5, 10.0).data for _ in tids]
        assert replies == [42, 42, 42]
        pvmd.wait_all(tids)

    def test_group_bcast(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()
        tids = pvmd.spawn(bcast_listener, count=3, args=("listeners",), parent=console)
        for _ in tids:
            pvmd._recv_for(console, 8, 10.0)  # all joined
        count = pvmd.bcast("listeners", 3, {"news": True}, exclude=console)
        assert count == 3
        for _ in tids:
            assert pvmd._recv_for(console, 9, 10.0).data == {"news": True}
        pvmd.wait_all(tids)

    def test_bcast_excludes_sender(self, cluster):
        harness, _ = cluster
        pvmd = harness.kernel("node0").get_service("pvm")
        console = pvmd.mytid()
        pvmd.joingroup("self-group", console)
        assert pvmd.bcast("self-group", 1, "x", exclude=console) == 0
