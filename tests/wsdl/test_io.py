"""WSDL document ⇄ XML: shapes matching the paper's Figures 7/8."""

import pytest

from repro.util.errors import WsdlError
from repro.wsdl.extensions import LocalBindingExt, SoapAddressExt, SoapBindingExt
from repro.wsdl.io import (
    document_from_string,
    document_to_element,
    document_to_string,
)
from repro.wsdl.model import (
    WsdlBinding,
    WsdlDocument,
    WsdlMessage,
    WsdlOperation,
    WsdlPart,
    WsdlPort,
    WsdlPortType,
    WsdlService,
)
from repro.xmlkit import XmlQuery


def time_doc() -> WsdlDocument:
    """Shaped like the paper's Figure 7 WSTime document."""
    return WsdlDocument(
        name="WSTime",
        target_namespace="urn:harness:WSTime",
        documentation="Trivial example of a Time Web Service",
        messages=(
            WsdlMessage("getTimeRequest"),
            WsdlMessage("getTimeResponse", (WsdlPart("return", "xsd:string"),)),
        ),
        port_types=(
            WsdlPortType(
                "WSTimePortType",
                (WsdlOperation("getTime", "getTimeRequest", "getTimeResponse"),),
            ),
        ),
        bindings=(
            WsdlBinding("WSTimeSoapBinding", "WSTimePortType", (SoapBindingExt(),)),
            WsdlBinding("WSTimeJavaBinding", "WSTimePortType", (LocalBindingExt("repro.plugins.services:WSTime"),)),
        ),
        services=(
            WsdlService(
                "WSTimeService",
                (WsdlPort("WSTimeServicePort", "WSTimeJavaBinding"),),
            ),
        ),
    )


class TestSerialization:
    def test_round_trip_equality(self):
        doc = time_doc()
        reparsed = document_from_string(document_to_string(doc))
        assert reparsed == doc

    def test_round_trip_compact(self):
        doc = time_doc()
        assert document_from_string(document_to_string(doc, indent=False)) == doc

    def test_target_namespace_and_tns(self):
        text = document_to_string(time_doc())
        assert 'targetNamespace="urn:harness:WSTime"' in text
        assert 'xmlns:tns="urn:harness:WSTime"' in text
        assert 'type="tns:WSTimePortType"' in text
        assert 'binding="tns:WSTimeJavaBinding"' in text

    def test_documentation_preserved(self):
        reparsed = document_from_string(document_to_string(time_doc()))
        assert reparsed.documentation == "Trivial example of a Time Web Service"

    def test_structure_queryable(self):
        root = document_to_element(time_doc())
        assert XmlQuery("//portType[@name='WSTimePortType']/operation/@name").values(root) == ["getTime"]
        assert XmlQuery("//service[@name='WSTimeService']/port").exists(root)
        assert XmlQuery("//localBinding/@type").values(root) == [
            "repro.plugins.services:WSTime"
        ]


class TestParsing:
    def test_invalid_root_rejected(self):
        with pytest.raises(WsdlError):
            document_from_string("<notwsdl/>")

    def test_parse_validates(self):
        # service port pointing at a binding that does not exist
        bad = document_to_string(time_doc()).replace(
            'binding="tns:WSTimeJavaBinding"', 'binding="tns:Ghost"'
        )
        with pytest.raises(WsdlError):
            document_from_string(bad)

    def test_foreign_extension_elements_ignored(self):
        text = document_to_string(time_doc()).replace(
            "<wsdl:service",
            '<wsdl:binding name="Alien" type="tns:WSTimePortType">'
            "</wsdl:binding><wsdl:service",
        )
        doc = document_from_string(text)
        assert doc.binding("Alien").protocol == "unknown"

    def test_parts_default_type(self):
        text = """<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" name="X" targetNamespace="urn:x">
          <wsdl:message name="m"><wsdl:part name="p"/></wsdl:message>
        </wsdl:definitions>"""
        doc = document_from_string(text)
        assert doc.message("m").part("p").type_name == "xsd:anyType"
