"""DVM state coherency protocols: semantics, costs, failure behaviour."""

import pytest

from repro.dvm.state import (
    DecentralizedState,
    FullSynchronyState,
    NeighborhoodState,
    StateEntry,
)
from repro.netsim import lan
from repro.util.errors import CoherencyError, DvmError

ALL_SCHEMES = [
    ("full-synchrony", lambda net, members: FullSynchronyState(net, members)),
    ("decentralized", lambda net, members: DecentralizedState(net, members)),
    ("neighborhood", lambda net, members: NeighborhoodState(net, members, radius=1)),
]


def make(scheme_factory, n=4):
    net = lan(n)
    protocol = scheme_factory(net, [f"node{i}" for i in range(n)])
    return net, protocol


class TestStateEntry:
    def test_last_writer_wins_by_lamport(self):
        old = StateEntry("k", 1, 1, "a")
        new = StateEntry("k", 2, 2, "a")
        assert new.newer_than(old)
        assert not old.newer_than(new)

    def test_origin_breaks_ties(self):
        a = StateEntry("k", 1, 5, "nodeA")
        b = StateEntry("k", 2, 5, "nodeB")
        assert b.newer_than(a)

    def test_anything_newer_than_none(self):
        assert StateEntry("k", 1, 1, "a").newer_than(None)

    def test_wire_round_trip(self):
        entry = StateEntry("k", {"x": 1}, 7, "n")
        assert StateEntry.from_wire(entry.to_wire()) == entry


@pytest.mark.parametrize("name,factory", ALL_SCHEMES, ids=[s[0] for s in ALL_SCHEMES])
class TestUniformInterface:
    """C7: every scheme exposes identical observable semantics."""

    def test_update_visible_from_every_node(self, name, factory):
        net, protocol = make(factory)
        protocol.update("node0", "component/X", {"node": "node0"})
        for i in range(4):
            assert protocol.get(f"node{i}", "component/X") == {"node": "node0"}

    def test_missing_key_is_none(self, name, factory):
        net, protocol = make(factory)
        assert protocol.get("node1", "ghost") is None

    def test_last_writer_wins_across_nodes(self, name, factory):
        net, protocol = make(factory)
        protocol.update("node0", "k", "first")
        protocol.update("node2", "k", "second")
        for i in range(4):
            assert protocol.get(f"node{i}", "k") == "second"

    def test_snapshot_with_prefix(self, name, factory):
        net, protocol = make(factory)
        protocol.update("node0", "member/node0", "joined")
        protocol.update("node1", "component/M", {"node": "node1"})
        snap = protocol.snapshot("node3", prefix="member/")
        assert snap == {"member/node0": "joined"}

    def test_update_returns_entry(self, name, factory):
        net, protocol = make(factory)
        entry = protocol.update("node0", "k", 1)
        assert entry.origin == "node0"
        assert entry.key == "k"

    def test_non_member_rejected(self, name, factory):
        net, protocol = make(factory)
        with pytest.raises(DvmError):
            protocol.update("ghost", "k", 1)

    def test_membership_grow(self, name, factory):
        net, protocol = make(factory)
        protocol.update("node0", "k", "v")
        net.add_host("node9")
        protocol.add_member("node9")
        assert protocol.get("node9", "k") == "v"

    def test_duplicate_member_rejected(self, name, factory):
        net, protocol = make(factory)
        with pytest.raises(DvmError):
            protocol.add_member("node0")

    def test_remove_member(self, name, factory):
        net, protocol = make(factory)
        protocol.remove_member("node3")
        assert "node3" not in protocol.members
        with pytest.raises(DvmError):
            protocol.remove_member("node3")


class TestCostShapes:
    """The paper's qualitative cost claims, at the message-count level."""

    def test_full_synchrony_reads_are_free(self):
        net, protocol = make(lambda n, m: FullSynchronyState(n, m))
        protocol.update("node0", "k", "v")
        net.reset_stats()
        for i in range(4):
            protocol.get(f"node{i}", "k")
        assert net.total_messages == 0

    def test_full_synchrony_writes_broadcast(self):
        net, protocol = make(lambda n, m: FullSynchronyState(n, m))
        net.reset_stats()
        protocol.update("node0", "k", "v")
        assert net.total_messages == 2 * 3  # push+ack to each other member

    def test_decentralized_writes_are_free(self):
        net, protocol = make(lambda n, m: DecentralizedState(n, m))
        net.reset_stats()
        protocol.update("node0", "k", "v")
        assert net.total_messages == 0

    def test_decentralized_reads_flood(self):
        net, protocol = make(lambda n, m: DecentralizedState(n, m))
        protocol.update("node0", "k", "v")
        net.reset_stats()
        protocol.get("node1", "k")
        assert net.total_messages == 2 * 3

    def test_neighborhood_write_cost_bounded_by_radius(self):
        net, protocol = make(lambda n, m: NeighborhoodState(n, m, radius=1), n=8)
        net.reset_stats()
        protocol.update("node0", "k", "v")
        assert net.total_messages == 2 * 2  # two ring neighbours

    def test_neighborhood_read_cost_bounded_by_radius_on_hit(self):
        net, protocol = make(lambda n, m: NeighborhoodState(n, m, radius=1), n=8)
        protocol.update("node0", "k", "v")
        net.reset_stats()
        protocol.get("node0", "k")
        # coherent read within the neighbourhood: one round trip per neighbour
        assert net.total_messages == 2 * 2

    def test_neighborhood_near_read_cheaper_than_far(self):
        net, protocol = make(lambda n, m: NeighborhoodState(n, m, radius=1), n=8)
        protocol.update("node0", "k", "v")
        net.reset_stats()
        protocol.get("node1", "k")  # neighbour holds a replica
        near_messages = net.total_messages
        net.reset_stats()
        protocol.get("node4", "k")  # must flood beyond its neighbourhood
        far_messages = net.total_messages
        assert near_messages < far_messages


class TestFailures:
    def test_full_synchrony_update_fails_on_down_member(self):
        net, protocol = make(lambda n, m: FullSynchronyState(n, m))
        net.host("node2").crash()
        with pytest.raises(CoherencyError):
            protocol.update("node0", "k", "v")

    def test_decentralized_tolerates_down_members(self):
        net, protocol = make(lambda n, m: DecentralizedState(n, m))
        protocol.update("node0", "k", "v")
        net.host("node3").crash()
        assert protocol.get("node1", "k") == "v"

    def test_neighborhood_update_skips_down_neighbor(self):
        net, protocol = make(lambda n, m: NeighborhoodState(n, m, radius=1))
        net.host("node1").crash()
        protocol.update("node0", "k", "v")  # must not raise
        net.host("node1").restart()
        assert protocol.get("node3", "k") == "v"

    def test_bad_radius(self):
        with pytest.raises(DvmError):
            NeighborhoodState(lan(3), ["node0"], radius=0)
