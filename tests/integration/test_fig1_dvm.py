"""F1 — Figure 1: the Harness architecture.

"DVM's are created by users and 'constructed' by first adding nodes (A, B,
C, D in the figure) to the DVM, and subsequently deploying plugins on each
node (p2p, mmul, ping, etc …).  Some plugins may be node specific while
others are replicated; typically, a set of replicated plugins for primitive
functions such as message passing and process management are loaded on all
nodes."
"""

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import (
    BASELINE_PLUGINS,
    MatMulServicePlugin,
    PingPlugin,
    TimeServicePlugin,
)

NODES = ("nodeA", "nodeB", "nodeC", "nodeD")


@pytest.fixture
def figure1():
    net = lan(4)
    for i, name in enumerate(NODES):
        # topology helper names hosts node0..3; rename by building manually
        pass
    net = None
    from repro.netsim.fabric import VirtualNetwork
    from repro.netsim.topology import LAN_LINK

    network = VirtualNetwork(default_link=LAN_LINK)
    for name in NODES:
        network.add_host(name)
    with HarnessDvm("figure1", network) as harness:
        harness.add_nodes(*NODES)
        yield harness, network


class TestFigure1Construction:
    def test_replicated_baseline_on_all_nodes(self, figure1):
        harness, _ = figure1
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for node in NODES:
            plugins = harness.kernel(node).plugins()
            assert {"hmsg", "hproc", "htable", "hevent"} <= set(plugins)

    def test_node_specific_plugins(self, figure1):
        harness, _ = figure1
        # mmul on nodeB only, ping replicated — as the figure sketches
        harness.load_plugin("nodeB", MatMulServicePlugin(bindings=("local-instance", "xdr")))
        harness.load_plugin_everywhere(PingPlugin)
        assert "mmul" in harness.kernel("nodeB").plugins()
        assert "mmul" not in harness.kernel("nodeA").plugins()

        # the mmul service is registered in nodeB's container and usable
        stub = harness.kernel("nodeB").container.lookup("MatMul")
        a = np.eye(2)
        assert np.allclose(stub.multiply(a, a), a)

    def test_ping_between_all_node_pairs(self, figure1):
        harness, _ = figure1
        harness.load_plugin_everywhere(PingPlugin)
        for src in NODES:
            ping = harness.kernel(src).get_service("ping")
            for dst in NODES:
                if src != dst:
                    assert ping.ping(dst, 11) == 11

    def test_dvm_symbolic_name_unique_namespace(self, figure1):
        harness, _ = figure1
        harness.load_plugin("nodeC", TimeServicePlugin(bindings=("local-instance",)))
        name = harness.dvm.qualified_name("nodeC", "WSTime")
        assert str(name) == "/figure1/nodeC/WSTime"

    def test_status_view_consistent_from_all_nodes(self, figure1):
        harness, _ = figure1
        for node in NODES:
            status = harness.status(node)
            assert status["members"] == sorted(NODES)

    def test_reconfigurability_unload_reload(self, figure1):
        """The paper's core Harness property: reconfiguration at run time."""
        harness, _ = figure1
        kernel = harness.kernel("nodeA")
        kernel.load_plugin(PingPlugin)
        assert kernel.has_service("ping")
        kernel.unload_plugin("ping")
        assert not kernel.has_service("ping")
        kernel.load_plugin(PingPlugin)  # reload works
        assert kernel.has_service("ping")
