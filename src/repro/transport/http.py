"""HTTP transport — the carrier for the standard SOAP binding.

"HTTP is an excellent choice for point to point communication due to its
ubiquitous availability and the fact that it is traditionally tolerable to
firewalls.  However, in case of components running in the same local system,
exchange of data through an HTTP server and TCP/IP stack is an obvious
overhead." (Section 5.)  This module is that overhead, implemented honestly:
stdlib ``http.server`` on the server side, ``http.client`` with persistent
connections on the client side, full request/status/header parsing per call.
"""

from __future__ import annotations

import http.client
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import trace as _trace
from repro.transport.base import RequestHandler, TransportMessage, parse_url
from repro.util.errors import TransportClosedError, TransportError

__all__ = ["HttpListener", "HttpTransport"]


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled (symmetric with the server)."""

    def connect(self) -> None:
        super().connect()
        import socket as _socket

        self.sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)


class _SoapHttpHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # StreamRequestHandler reads this from the *handler* class; without it,
    # small request/response pairs stall ~40ms on Nagle + delayed ACK
    disable_nagle_algorithm = True

    # Silence per-request logging; benchmarks hammer this path.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_POST(self) -> None:  # noqa: N802  (stdlib naming)
        server: "_Server" = self.server  # type: ignore[assignment]
        length = int(self.headers.get("Content-Length", "0"))
        payload = self.rfile.read(length)
        content_type = self.headers.get("Content-Type", "application/octet-stream")
        message = TransportMessage(content_type, payload)
        token = None
        if _trace.ENABLED:
            header = self.headers.get(_trace.TRACE_HEADER)
            if header:
                try:
                    token = _trace.activate(_trace.from_header(header))
                except Exception:  # noqa: BLE001 — any mangled/truncated
                    token = None  # header must never fail the request
        try:
            response = server.app_handler(message)
            status = 200
        except Exception as exc:
            response = TransportMessage("text/plain", str(exc).encode("utf-8"))
            status = 500
        finally:
            if token is not None:
                _trace.deactivate(token)
        self.send_response(status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.payload)))
        self.end_headers()
        self.wfile.write(response.payload)
        self.wfile.flush()

    def do_GET(self) -> None:  # noqa: N802  (stdlib naming)
        """Side-channel GET routes (e.g. the ``/metrics`` Prometheus
        endpoint) registered on the listener; the SOAP POST path is
        untouched."""
        server: "_Server" = self.server  # type: ignore[assignment]
        route = server.get_routes.get(self.path.partition("?")[0])
        if route is None:
            status, content_type, body = 404, "text/plain", b"not found"
        else:
            try:
                content_type, body = route()
                status = 200
            except Exception as exc:  # route errors answer 500, never crash
                status, content_type = 500, "text/plain"
                body = str(exc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.wfile.flush()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app_handler: RequestHandler):
        super().__init__(address, _SoapHttpHandler)
        self.app_handler = app_handler
        self.get_routes: dict[str, object] = {}


class HttpListener:
    """An HTTP POST endpoint; URL scheme ``http://host:port/``.

    GET side-channels — pages that report rather than invoke — register
    via :meth:`add_get_route`; a route is a no-argument callable returning
    ``(content_type, body_bytes)``.
    """

    def __init__(self, handler: RequestHandler, host: str = "127.0.0.1", port: int = 0):
        self._server = _Server((host, port), handler)
        self._host, self._port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"http-listener-{self._port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}/"

    @property
    def port(self) -> int:
        return self._port

    def add_get_route(self, path: str, route) -> None:
        """Serve GET *path* from *route* ``() -> (content_type, bytes)``."""
        if not path.startswith("/"):
            raise TransportError(f"GET route path must start with '/': {path!r}")
        self._server.get_routes[path] = route

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()


class HttpTransport:
    """Client POSTing payloads to an :class:`HttpListener` (keep-alive)."""

    def __init__(self, url: str, connect_timeout: float = 5.0):
        scheme, rest = parse_url(url)
        if scheme != "http":
            raise TransportError(f"not an http url: {url!r}")
        host_port, _, path = rest.partition("/")
        host, _, port_text = host_port.rpartition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise TransportError(f"bad http url (no port): {url!r}") from exc
        self._path = "/" + path
        self._url = url
        self._lock = threading.Lock()
        self._conn = _NoDelayHTTPConnection(host, port, timeout=connect_timeout)
        self._closed = False

    #: Failures meaning the keep-alive connection went stale while idle —
    #: the server closed it before (or instead of) answering, so no response
    #: was received and one transparent retry on a fresh connection is safe.
    #: (``RemoteDisconnected`` subclasses both ``BadStatusLine`` and
    #: ``ConnectionResetError``; the tuple names the whole family.)
    _STALE_ERRORS = (
        http.client.BadStatusLine,
        http.client.RemoteDisconnected,
        ConnectionResetError,
        BrokenPipeError,
    )

    def _round_trip(self, message: TransportMessage):
        headers = {"Content-Type": message.content_type}
        if _trace.ENABLED:
            ctx = _trace.current()
            if ctx is not None:
                headers[_trace.TRACE_HEADER] = _trace.to_header(ctx)
        self._conn.request("POST", self._path, body=message.payload, headers=headers)
        response = self._conn.getresponse()
        return response, response.read()

    def request(self, message: TransportMessage, timeout: float | None = None) -> TransportMessage:
        with self._lock:
            if self._closed:
                raise TransportClosedError("transport closed")
            if timeout is not None:
                self._conn.timeout = timeout
            try:
                response, payload = self._round_trip(message)
            except self._STALE_ERRORS:
                # stale persistent connection: reconnect and retry once,
                # instead of surfacing a transport fault to the policy layer
                self._conn.close()
                try:
                    response, payload = self._round_trip(message)
                except (ConnectionError, http.client.HTTPException, OSError) as exc:
                    self._conn.close()
                    raise TransportError(
                        f"http request to {self._url} failed: {exc}"
                    ) from exc
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self._conn.close()
                raise TransportError(f"http request to {self._url} failed: {exc}") from exc
        if response.status != 200:
            raise TransportError(
                f"http {response.status} from {self._url}: "
                f"{payload.decode('utf-8', 'replace')[:200]}"
            )
        return TransportMessage(
            response.getheader("Content-Type", "application/octet-stream"), payload
        )

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()
