"""UDDI-model registry: publication, inquiry, generic query mapping."""

import pytest

from repro.plugins.services import MatMul, WSTime
from repro.registry.uddi import UddiRegistry
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import RegistryError, ServiceNotFoundError


@pytest.fixture
def registry():
    return UddiRegistry()


@pytest.fixture
def published(registry):
    business = registry.save_business("Emory MathCS", "metacomputing lab")
    registry.publish_wsdl(business.key, _deployed_doc(MatMul))
    registry.publish_wsdl(business.key, _deployed_doc(WSTime))
    return registry, business


def _deployed_doc(cls):
    from repro.wsdl.extensions import SoapAddressExt
    from repro.wsdl.model import WsdlPort, WsdlService

    doc = generate_wsdl(cls, bindings=("soap",))
    return doc.with_service(
        WsdlService(
            cls.__name__,
            (WsdlPort("p", f"{cls.__name__}SoapBinding",
                      (SoapAddressExt(f"http://host/{cls.__name__}"),)),),
        )
    )


class TestPublication:
    def test_business_entity(self, registry):
        business = registry.save_business("Acme")
        assert registry.find_business("Acme") == [business]
        assert registry.find_business("None") == []

    def test_service_requires_known_business(self, registry):
        with pytest.raises(RegistryError):
            registry.save_service("business:ghost", "S", [])

    def test_binding_requires_known_tmodel(self, registry):
        business = registry.save_business("Acme")
        with pytest.raises(RegistryError):
            registry.save_service(business.key, "S", [("http://x", "tmodel:ghost")])

    def test_publish_wsdl_creates_tmodels_per_port_type(self, published):
        registry, _ = published
        tmodels = registry.find_tmodel("MatMulPortType")
        assert len(tmodels) == 1
        assert "portType" in tmodels[0].overview_doc

    def test_publish_wsdl_binding_templates_have_access_points(self, published):
        registry, _ = published
        service = registry.find_service("MatMul")[0]
        assert service.bindings[0].access_point == "http://host/MatMul"


class TestInquiry:
    def test_find_service_by_name(self, published):
        registry, _ = published
        assert len(registry.find_service("MatMul")) == 1
        assert len(registry.find_service()) == 2

    def test_find_service_by_business(self, published):
        registry, business = published
        assert len(registry.find_service(business_key=business.key)) == 2
        assert registry.find_service(business_key="business:other") == []

    def test_find_service_by_tmodel(self, published):
        registry, _ = published
        tmodel = registry.find_tmodel("WSTimePortType")[0]
        services = registry.find_service(tmodel_key=tmodel.key)
        assert [s.name for s in services] == ["WSTime"]

    def test_get_service_detail(self, published):
        registry, _ = published
        key = registry.find_service("MatMul")[0].key
        assert registry.get_service_detail(key).name == "MatMul"
        with pytest.raises(ServiceNotFoundError):
            registry.get_service_detail("service:ghost")

    def test_get_wsdl_rematerializes_document(self, published):
        registry, _ = published
        key = registry.find_service("MatMul")[0].key
        doc = registry.get_wsdl(key)
        doc.validate()
        assert doc.name == "MatMul"
        assert doc.port_type("MatMulPortType")


class TestGenericQueryMapping:
    def test_query_over_published_wsdl(self, published):
        registry, _ = published
        matches = registry.map_generic_query("//operation[@name='getTime']")
        assert [s.name for s in matches] == ["WSTime"]

    def test_query_no_match(self, published):
        registry, _ = published
        assert registry.map_generic_query("//operation[@name='launchMissiles']") == []

    def test_query_structural(self, published):
        registry, _ = published
        matches = registry.map_generic_query("//port/@binding")
        assert len(matches) == 2
