"""Observability overhead — tracing on vs off, same wire, same service.

Every instrumented hot path is gated on one module attribute
(``repro.obs.trace.ENABLED``), so the disabled cost is a single dict lookup
per call.  This experiment measures the *enabled* cost: full trace
propagation (context create/child, wire encode/decode on every hop) plus
four histogram observations and a recorded span per call, A/B'd against
the identical stack with tracing off.

Shapes match the repo's standing experiments:

* **C1 shape** — SOAP over loopback HTTP, 16 384 float64 elements in
  call and reply (the C1 encoding experiment's scientific-array row);
* **C9 shape** — XDR over multiplexed TCP, 2 ms GIL-releasing service
  time (the C9b concurrency experiment's per-call shape);
* **micro** — a bare scalar echo over XDR/TCP.  *Informational only*:
  the fixed per-call tracing cost against the smallest possible call is
  the worst case by construction and is recorded, not gated.

Methodology: individual *calls* run in (off, on) pairs — not round-grained
arms, because loopback p50 drifts by hundreds of microseconds over
seconds, swamping any coarse A/B.  Pair order is counterbalanced
(odd-numbered pairs run traced-first) to cancel positional bias, the
overhead estimate is the **median of per-pair deltas** over the median
untraced latency (the pair delta cancels drift that a ratio of independent
medians cannot), and the gate reads the median across rounds so one noisy
round cannot flip it.  Caveat recorded in EXPERIMENTS.md: on a single-CPU
host every instrumented instruction is serial with the caller and runs
cache-cold after the service sleep, so these numbers are a *ceiling* on
the overhead a multi-core deployment would see.

The cluster observability plane (DESIGN.md §12) adds a second A/B with the
same pair discipline: a background :class:`~repro.obs.cluster.ClusterCollector`
poller — pulling and merging per-node snapshots from four simulated nodes
every ``POLL_INTERVAL_S`` — toggled on for one call of each pair and off
for the other, tracing disabled throughout.  It answers "what does cluster
collection cost the serving hot path while it runs?" under the same 3%
budget.  A separate correctness gate (not a latency gate) fills per-node
histograms with seeded random values and asserts the cluster-merged
buckets, count, and p50/p99 equal a reference histogram holding every
observation — the merged quantiles must be *exact*, not approximate.

Acceptance (asserted in ``test_report_obs_overhead``): tracing enabled
costs **<= 3%** p50 on the C1 and C9 shapes; background cluster collection
costs **<= 3%** p50 on the same shapes; merged snapshots are exact.

Runs under pytest (``pytest benchmarks/bench_obs_overhead.py``) and as a
script (``python benchmarks/bench_obs_overhead.py [--quick]`` — the CI
smoke).  Writes ``BENCH_obs.json`` next to this file.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import threading
import time
from pathlib import Path

from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.server import BindingServer
from repro.bindings.stubs import TransportStub
from repro.encoding.registry import default_registry
from repro.obs import metrics, trace
from repro.obs.cluster import ClusterCollector, merge_metrics
from repro.transport.http import HttpTransport
from repro.transport.tcp import TcpTransport

ROUNDS = 6
QUICK_ROUNDS = 3

#: (off, on) pairs per round, per shape.  Both gated shapes ride ~70-120 us
#: budgets while their per-pair deltas swing by hundreds of microseconds
#: (C1 is 4 ms of allocation-heavy CPU per call; C9 wakes cache-cold after
#: its 2 ms sleep), so the medians need deep sampling to converge.
PAIRS = {"c1": 100, "c9": 150, "micro": 250}
QUICK_PAIRS = {"c1": 30, "c9": 60, "micro": 80}

ELEMENTS = 16384  # C1 shape: float64 elements in call and reply
SERVICE_TIME_S = 0.002  # C9 shape: GIL-releasing service time

OVERHEAD_BUDGET_PCT = 3.0

#: Cluster A/B: simulated membership size and poll cadence while "on".
#: One collect+merge round over four nodes costs ~2 ms of CPU, so the
#: cadence sets the duty cycle the hot path must absorb: 100 ms between
#: rounds is ~2% — still 150x denser than a production 15 s Prometheus
#: scrape.  The gate reads the *p50* effect, i.e. the amortized cost a
#: typical call pays; the per-collision worst case shows up in the round
#: delta spread, not the median.
CLUSTER_NODES = 4
POLL_INTERVAL_S = 0.100

#: Merged-snapshot exactness gate: seeded random bucket fills per trial.
MERGE_TRIALS = 25
QUICK_MERGE_TRIALS = 8
MERGE_SEED = 20260808

RESULT_PATH = Path(__file__).with_name("BENCH_obs.json")


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    # local copy of benchmarks.conftest.print_table so the module also runs
    # as a plain script
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))


class ShapeService:
    def echo(self, text: str) -> str:
        return text

    def roundtrip(self, values: list) -> list:
        return values

    def work(self, tag: str) -> str:
        time.sleep(SERVICE_TIME_S)  # releases the GIL, like real I/O-bound work
        return tag


def _round_stats_us(call, pairs: int) -> tuple[float, float]:
    """One round: *pairs* counterbalanced (untraced, traced) call pairs.

    Returns (median per-pair delta, median untraced latency) in
    microseconds.  Odd pairs run traced-first so a systematic cost of
    "being the second call" cancels instead of biasing one arm.
    """
    perf = time.perf_counter
    deltas, offs = [], []
    for i in range(pairs):
        traced_first = bool(i & 1)
        trace.enable(traced_first)
        t0 = perf()
        call()
        first = perf() - t0
        trace.enable(not traced_first)
        t0 = perf()
        call()
        second = perf() - t0
        on, off = (first, second) if traced_first else (second, first)
        deltas.append(on - off)
        offs.append(off)
    trace.enable(False)
    return statistics.median(deltas) * 1e6, statistics.median(offs) * 1e6


def _measure_shape(call, rounds: int, pairs: int) -> dict:
    """Pair-interleaved A/B against one live call shape."""
    trace.enable(False)
    round_deltas, round_offs = [], []
    try:
        _round_stats_us(call, max(pairs // 4, 5))  # warm-up: connections, plans
        for _ in range(rounds):
            delta, off = _round_stats_us(call, pairs)
            round_deltas.append(delta)
            round_offs.append(off)
            trace.flush()  # drain async bookkeeping between rounds
    finally:
        trace.enable(False)
        trace.flush()
    delta_p50 = statistics.median(round_deltas)
    off_p50 = statistics.median(round_offs)
    return {
        "rounds": rounds,
        "pairs_per_round": pairs,
        "off_p50_us": round(off_p50, 2),
        "on_delta_p50_us": round(delta_p50, 2),
        "overhead_pct": round(delta_p50 / off_p50 * 100.0, 2),
        "round_delta_us": [round(d, 2) for d in round_deltas],
        "round_off_us": [round(m, 2) for m in round_offs],
    }


class _ClusterPoller:
    """Background collect+merge loop with a per-pair on/off switch.

    While active it runs :meth:`ClusterCollector.cluster_snapshot` —
    ``CLUSTER_NODES`` registry pulls plus the full merge — every
    ``POLL_INTERVAL_S``; while inactive it parks on the switch.  The A/B
    toggles the switch per call, so "on" calls race a live collection
    round exactly as a scraped deployment's requests do.
    """

    def __init__(self, interval_s: float = POLL_INTERVAL_S, nodes: int = CLUSTER_NODES):
        names = [f"bench-node{i}" for i in range(nodes)]
        self._collector = ClusterCollector(
            lambda: names, lambda node: metrics.registry.snapshot()
        )
        self._interval = interval_s
        self._active = threading.Event()
        self._stop = threading.Event()
        self.polls = 0
        self._thread = threading.Thread(
            target=self._run, name="bench-cluster-poller", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self._active.wait(0.05):
                continue
            self._collector.cluster_snapshot()
            self.polls += 1
            self._stop.wait(self._interval)

    def set_active(self, on: bool) -> None:
        if on:
            self._active.set()
        else:
            self._active.clear()

    def close(self) -> None:
        self._stop.set()
        self._active.set()
        self._thread.join(timeout=2.0)


def _round_stats_cluster_us(call, pairs: int, poller: _ClusterPoller) -> tuple[float, float]:
    """One round of counterbalanced (collector-off, collector-on) pairs.

    Same pair discipline as :func:`_round_stats_us`, but the toggled
    variable is the background poller instead of tracing (tracing stays
    off, so this isolates the collection cost).
    """
    perf = time.perf_counter
    deltas, offs = [], []
    for i in range(pairs):
        on_first = bool(i & 1)
        poller.set_active(on_first)
        t0 = perf()
        call()
        first = perf() - t0
        poller.set_active(not on_first)
        t0 = perf()
        call()
        second = perf() - t0
        on, off = (first, second) if on_first else (second, first)
        deltas.append(on - off)
        offs.append(off)
    poller.set_active(False)
    return statistics.median(deltas) * 1e6, statistics.median(offs) * 1e6


def _measure_cluster_shape(call, rounds: int, pairs: int, poller: _ClusterPoller) -> dict:
    """Pair-interleaved collector-on/off A/B against one live call shape."""
    trace.enable(False)
    round_deltas, round_offs = [], []
    _round_stats_cluster_us(call, max(pairs // 4, 5), poller)  # warm-up
    for _ in range(rounds):
        delta, off = _round_stats_cluster_us(call, pairs, poller)
        round_deltas.append(delta)
        round_offs.append(off)
    delta_p50 = statistics.median(round_deltas)
    off_p50 = statistics.median(round_offs)
    return {
        "rounds": rounds,
        "pairs_per_round": pairs,
        "off_p50_us": round(off_p50, 2),
        "on_delta_p50_us": round(delta_p50, 2),
        "overhead_pct": round(delta_p50 / off_p50 * 100.0, 2),
        "round_delta_us": [round(d, 2) for d in round_deltas],
        "round_off_us": [round(m, 2) for m in round_offs],
    }


def _merged_snapshot_gate(trials: int = MERGE_TRIALS, nodes: int = CLUSTER_NODES) -> dict:
    """Property check: cluster-merged histograms are *exactly* the
    histogram of the union of observations.

    Each trial fills one private histogram per simulated node with seeded
    random integer-valued latencies spanning every bucket (integers keep
    the per-node ``sum`` rounding lossless, so sums must match to the
    cent), merges them through :func:`merge_metrics`, and compares
    buckets, count, sum, min/max, p50, and p99 against a reference
    histogram that observed every value directly.
    """
    rng = random.Random(MERGE_SEED)
    mismatches = []
    for trial in range(trials):
        reference = metrics.Histogram(f"gate.reference.{trial}")
        per_node = {}
        for n in range(nodes):
            hist = metrics.Histogram("gate.handle_us")
            for _ in range(rng.randrange(20, 400)):
                value = float(int(10 ** rng.uniform(0.0, 6.5)))
                hist.observe(value)
                reference.observe(value)
            per_node[f"node{n}"] = {"gate.handle_us": hist.export()}
        merged = merge_metrics(per_node)["gate.handle_us"]
        expected = reference.export()
        for key in ("buckets", "count", "sum", "min", "max", "p50", "p99"):
            if merged[key] != expected[key]:
                mismatches.append(
                    f"trial {trial}: {key} merged={merged[key]!r} "
                    f"expected={expected[key]!r}"
                )
    return {
        "trials": trials,
        "nodes": nodes,
        "seed": MERGE_SEED,
        "exact": not mismatches,
        "mismatches": mismatches[:10],
    }


def run_sweep(
    rounds: int = ROUNDS, pairs: dict | None = None, merge_trials: int = MERGE_TRIALS
) -> dict:
    """A/B all shapes (tracing and cluster collection); returns the
    machine-readable result document."""
    pairs = pairs or PAIRS
    dispatcher = ObjectDispatcher()
    dispatcher.register("shape", ShapeService())
    server = BindingServer(dispatcher)
    http = server.expose_soap_http()
    tcp = server.expose_xdr_tcp()
    operations = ("echo", "roundtrip", "work")
    values = [float(i) for i in range(ELEMENTS)]
    shapes = {}
    cluster_shapes = {}
    poller = None
    try:
        with TransportStub(
            operations, "shape", default_registry.get("text/xml"),
            HttpTransport(http.url), "soap",
        ) as soap_stub:
            shapes["c1_soap_http_16kxf64"] = _measure_shape(
                lambda: soap_stub.roundtrip(values), rounds, pairs["c1"]
            )
        with TransportStub(
            operations, "shape", default_registry.get("application/x-xdr"),
            TcpTransport(tcp.url), "xdr",
        ) as xdr_stub:
            shapes["c9_xdr_tcp_2ms"] = _measure_shape(
                lambda: xdr_stub.work("xyzzy"), rounds, pairs["c9"]
            )
            micro = _measure_shape(
                lambda: xdr_stub.echo("xyzzy"), rounds, pairs["micro"]
            )
            micro["informational"] = True  # worst case by construction, not gated
            shapes["micro_xdr_tcp_echo"] = micro

        # cluster-collection A/B: tracing off, background collect+merge
        # rounds toggled per pair against the same two gated shapes
        poller = _ClusterPoller()
        with TransportStub(
            operations, "shape", default_registry.get("text/xml"),
            HttpTransport(http.url), "soap",
        ) as soap_stub:
            cluster_shapes["c1_soap_http_16kxf64"] = _measure_cluster_shape(
                lambda: soap_stub.roundtrip(values), rounds, pairs["c1"], poller
            )
        with TransportStub(
            operations, "shape", default_registry.get("application/x-xdr"),
            TcpTransport(tcp.url), "xdr",
        ) as xdr_stub:
            cluster_shapes["c9_xdr_tcp_2ms"] = _measure_cluster_shape(
                lambda: xdr_stub.work("xyzzy"), rounds, pairs["c9"], poller
            )
    finally:
        if poller is not None:
            poller.close()
        server.close()
        trace.flush()
        metrics.registry.reset()
        trace.recorder.clear()
    return {
        "experiment": "observability overhead (tracing on vs off)",
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "gated_shapes": ["c1_soap_http_16kxf64", "c9_xdr_tcp_2ms"],
        "disabled_cost": "one module attribute read per instrumented site",
        "shapes": shapes,
        "cluster": {
            "nodes": CLUSTER_NODES,
            "poll_interval_s": POLL_INTERVAL_S,
            "polls": poller.polls if poller is not None else 0,
            "shapes": cluster_shapes,
        },
        "merged_snapshot_gate": _merged_snapshot_gate(merge_trials),
    }


def _report(result: dict) -> None:
    rows = [
        [
            name,
            f"{shape['off_p50_us']:.1f}",
            f"{shape['on_delta_p50_us']:+.1f}",
            f"{shape['overhead_pct']:+.2f}%",
            "no (info)" if shape.get("informational") else "<= 3%",
        ]
        for name, shape in result["shapes"].items()
    ]
    _print_table(
        "observability overhead (p50 per call)",
        ["shape", "off p50 us", "traced delta us", "overhead", "gated"],
        rows,
    )
    cluster = result.get("cluster", {})
    rows = [
        [
            name,
            f"{shape['off_p50_us']:.1f}",
            f"{shape['on_delta_p50_us']:+.1f}",
            f"{shape['overhead_pct']:+.2f}%",
            "<= 3%",
        ]
        for name, shape in cluster.get("shapes", {}).items()
    ]
    if rows:
        _print_table(
            f"cluster collection overhead ({cluster['nodes']} nodes, "
            f"collect+merge every {cluster['poll_interval_s'] * 1e3:.0f} ms)",
            ["shape", "off p50 us", "collector delta us", "overhead", "gated"],
            rows,
        )
    gate = result.get("merged_snapshot_gate", {})
    if gate:
        verdict = "exact" if gate["exact"] else f"MISMATCH: {gate['mismatches']}"
        print(
            f"\nmerged-snapshot gate: {gate['trials']} trials x "
            f"{gate['nodes']} nodes -> {verdict}"
        )


def _write_json(result: dict) -> None:
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


def _gate(result: dict, budget_pct: float = OVERHEAD_BUDGET_PCT) -> list[str]:
    """Budget violations on the gated shapes (empty means pass)."""
    failures = []
    for name in result["gated_shapes"]:
        overhead = result["shapes"][name]["overhead_pct"]
        if overhead > budget_pct:
            failures.append(
                f"{name}: tracing costs {overhead:+.2f}% p50 "
                f"(budget {budget_pct}%)"
            )
    for name, shape in result.get("cluster", {}).get("shapes", {}).items():
        overhead = shape["overhead_pct"]
        if overhead > budget_pct:
            failures.append(
                f"{name}: cluster collection costs {overhead:+.2f}% p50 "
                f"(budget {budget_pct}%)"
            )
    gate = result.get("merged_snapshot_gate")
    if gate is not None and not gate["exact"]:
        failures.append(
            f"merged snapshot not exact: {'; '.join(gate['mismatches'][:3])}"
        )
    return failures


# -- pytest entry point ----------------------------------------------------------------


def test_report_obs_overhead():
    result = run_sweep()
    _report(result)
    _write_json(result)
    assert not _gate(result), _gate(result)


# -- script entry point ----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: fewer rounds and calls (used by CI)",
    )
    options = parser.parse_args(argv)

    rounds = QUICK_ROUNDS if options.quick else ROUNDS
    pairs = QUICK_PAIRS if options.quick else PAIRS
    merge_trials = QUICK_MERGE_TRIALS if options.quick else MERGE_TRIALS
    result = run_sweep(rounds, pairs, merge_trials)
    _report(result)
    _write_json(result)

    # quick mode is a smoke (does the A/B run, is the overhead sane?) and
    # samples too shallowly to hold the experiment budget on a noisy shared
    # runner — it gates at twice the budget; full runs enforce it exactly
    budget = OVERHEAD_BUDGET_PCT * 2 if options.quick else OVERHEAD_BUDGET_PCT
    failures = _gate(result, budget)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
