"""``htable`` — the table-lookup plugin (Figure 2's "table lookup").

A per-kernel key/value table other kernels can query over the kernel
channel.  ``hpvmd`` uses it as the task-id directory (tid → host).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.plugin import Plugin
from repro.util.errors import PluginError

__all__ = ["TableLookupPlugin"]


class TableLookupPlugin(Plugin):
    """Local tables with remote query support."""

    plugin_name = "htable"
    provides = ("table-lookup",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()
        self._tables: dict[str, dict[str, Any]] = {}

    # -- local API ---------------------------------------------------------------

    def put(self, table: str, key: str, value: Any) -> None:
        with self._lock:
            self._tables.setdefault(table, {})[key] = value

    def get(self, table: str, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._tables.get(table, {}).get(key, default)

    def remove(self, table: str, key: str) -> None:
        with self._lock:
            self._tables.get(table, {}).pop(key, None)

    def keys(self, table: str) -> list[str]:
        with self._lock:
            return sorted(self._tables.get(table, {}))

    def items(self, table: str) -> dict[str, Any]:
        with self._lock:
            return dict(self._tables.get(table, {}))

    # -- remote API -----------------------------------------------------------------

    def get_remote(self, dst_host: str, table: str, key: str) -> Any:
        if self.kernel is None:
            raise PluginError("htable is not attached")
        return self.kernel.send(dst_host, "table-lookup", {
            "op": "get", "table": table, "key": key,
        })

    def put_remote(self, dst_host: str, table: str, key: str, value: Any) -> None:
        if self.kernel is None:
            raise PluginError("htable is not attached")
        self.kernel.send(dst_host, "table-lookup", {
            "op": "put", "table": table, "key": key, "value": value,
        })

    def handle_message(self, src_host: str, payload: dict) -> Any:
        op = payload.get("op")
        if op == "get":
            return self.get(payload["table"], payload["key"])
        if op == "put":
            self.put(payload["table"], payload["key"], payload.get("value"))
            return True
        if op == "keys":
            return self.keys(payload["table"])
        if op == "remove":
            self.remove(payload["table"], payload["key"])
            return True
        raise PluginError(f"htable: unknown operation {op!r}")
