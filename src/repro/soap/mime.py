"""MIME multipart binding — SOAP with Attachments.

"At present there are only three kinds of bindings standardized by the W3C
consortium, namely SOAP, HTTP and MIME" (Section 4).  The MIME binding was
the e-commerce world's answer to binary payloads: a ``multipart/related``
message whose first part is a SOAP envelope and whose further parts carry
raw bytes, referenced from the envelope by ``href="cid:…"`` (SOAP with
Attachments, W3C note 2000).

For scientific arrays this is the interesting middle ground the paper's
argument implies: the *manifest* stays standard XML (interoperable,
firewall-friendly over HTTP), while the arrays travel as **unencoded
binary** — no base64 expansion, no per-element text.  The C1 benchmark
includes it between SOAP/base64 and XDR.

Wire format: our own deterministic multipart framing (CRLF headers,
fixed boundary), one ``Content-ID`` per attachment::

    --harness-mime-boundary
    Content-ID: <envelope>
    Content-Type: text/xml

    <soapenv:Envelope>…<arg0 href="cid:part0" harness:dtype="float64" …/>…
    --harness-mime-boundary
    Content-ID: <part0>
    Content-Type: application/octet-stream

    <raw big-endian bytes>
    --harness-mime-boundary--
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.soap.values import element_to_value, value_to_element
from repro.util.errors import EncodingError, SoapFaultError
from repro.xmlkit import NS_HARNESS, NS_SOAP_ENV, QName, XmlElement, parse, to_bytes

__all__ = ["MimeMessageCodec", "MIME_CONTENT_TYPE"]

_BOUNDARY = b"harness-mime-boundary"
MIME_CONTENT_TYPE = "multipart/related"

_ENVELOPE = QName(NS_SOAP_ENV, "Envelope")
_BODY = QName(NS_SOAP_ENV, "Body")
_FAULT = QName(NS_SOAP_ENV, "Fault")
_H_DTYPE = QName(NS_HARNESS, "dtype")
_H_SHAPE = QName(NS_HARNESS, "shape")


def _pack_parts(parts: list[tuple[str, bytes]]) -> bytes:
    """Serialize (content-id, body) parts into one multipart payload."""
    chunks: list[bytes] = []
    for content_id, body in parts:
        chunks.append(b"--" + _BOUNDARY + b"\r\n")
        chunks.append(f"Content-ID: <{content_id}>\r\n".encode("ascii"))
        chunks.append(f"Content-Length: {len(body)}\r\n\r\n".encode("ascii"))
        chunks.append(body)
        chunks.append(b"\r\n")
    chunks.append(b"--" + _BOUNDARY + b"--\r\n")
    return b"".join(chunks)


def _unpack_parts(payload: bytes) -> dict[str, bytes]:
    """Parse a multipart payload into {content-id: body}."""
    marker = b"--" + _BOUNDARY
    if not payload.startswith(marker):
        raise EncodingError("not a harness multipart payload")
    parts: dict[str, bytes] = {}
    pos = 0
    while True:
        start = payload.find(marker, pos)
        if start < 0:
            break
        start += len(marker)
        if payload[start : start + 2] == b"--":
            break  # terminal boundary
        header_end = payload.find(b"\r\n\r\n", start)
        if header_end < 0:
            raise EncodingError("truncated multipart headers")
        headers = payload[start:header_end].decode("ascii", "replace")
        content_id = None
        content_length = None
        for line in headers.splitlines():
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-id":
                content_id = value.strip().strip("<>")
            elif key.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_id is None or content_length is None:
            raise EncodingError("multipart part lacks Content-ID/Content-Length")
        body_start = header_end + 4
        body = payload[body_start : body_start + content_length]
        if len(body) != content_length:
            raise EncodingError("truncated multipart body")
        parts[content_id] = body
        pos = body_start + content_length
    if "envelope" not in parts:
        raise EncodingError("multipart payload lacks the envelope part")
    return parts


def _attach_value(element: XmlElement, value: Any, attachments: list[tuple[str, bytes]]) -> None:
    """Encode one argument: binary-capable values become cid attachments."""
    index = len(attachments)
    if isinstance(value, np.ndarray):
        content_id = f"part{index}"
        element.set("href", f"cid:{content_id}")
        element.set(_H_DTYPE, value.dtype.name)
        element.set(_H_SHAPE, " ".join(str(d) for d in value.shape))
        payload = np.ascontiguousarray(value, dtype=value.dtype.newbyteorder(">")).tobytes()
        attachments.append((content_id, payload))
    elif isinstance(value, (bytes, bytearray)):
        content_id = f"part{index}"
        element.set("href", f"cid:{content_id}")
        attachments.append((content_id, bytes(value)))
    else:
        # scalars and structures inline, standard SOAP encoding
        encoded = value_to_element(element.name.local, value)
        element.attributes.update(encoded.attributes)
        element.text = encoded.text
        for child in encoded.children:
            element.append(child.copy())


def _resolve_value(element: XmlElement, parts: dict[str, bytes]) -> Any:
    href = element.get("href")
    if href is None:
        return element_to_value(element)
    if not href.startswith("cid:"):
        raise EncodingError(f"unsupported href {href!r}")
    body = parts.get(href[4:])
    if body is None:
        raise EncodingError(f"missing attachment {href!r}")
    dtype = element.get("dtype")
    if dtype is None:
        return body  # plain bytes attachment
    shape_text = element.get("shape") or ""
    shape = tuple(int(d) for d in shape_text.split()) if shape_text else (-1,)
    array = np.frombuffer(body, dtype=np.dtype(dtype).newbyteorder(">"))
    return array.astype(np.dtype(dtype), copy=True).reshape(shape)


class MimeMessageCodec:
    """RPC codec: SOAP manifest + raw binary attachments."""

    content_type = MIME_CONTENT_TYPE

    # -- calls --------------------------------------------------------------------

    def encode_call(self, target: str, operation: str, args: tuple | list) -> bytes:
        envelope = XmlElement(_ENVELOPE)
        body = envelope.element(_BODY)
        call = body.element(QName("", operation), {"target": target})
        attachments: list[tuple[str, bytes]] = []
        for i, arg in enumerate(args):
            _attach_value(call.element(f"arg{i}"), arg, attachments)
        manifest = to_bytes(envelope, indent=False)
        return _pack_parts([("envelope", manifest)] + attachments)

    def decode_call(self, data: bytes) -> tuple[str, str, list]:
        parts = _unpack_parts(data)
        root = parse(parts["envelope"])
        body = root.find(_BODY) or root.find("Body")
        if body is None or not body.children:
            raise EncodingError("MIME manifest has no call body")
        call = body.children[0]
        target = call.get("target") or ""
        args = [_resolve_value(child, parts) for child in call.children]
        return target, call.name.local, args

    # -- replies --------------------------------------------------------------------

    def encode_reply(self, result: Any = None, fault: str | None = None) -> bytes:
        envelope = XmlElement(_ENVELOPE)
        body = envelope.element(_BODY)
        attachments: list[tuple[str, bytes]] = []
        if fault is not None:
            fault_el = body.element(_FAULT)
            fault_el.element("faultcode", text="soapenv:Server")
            fault_el.element("faultstring", text=fault)
        else:
            reply = body.element(QName("", "Response"))
            _attach_value(reply.element("return"), result, attachments)
        manifest = to_bytes(envelope, indent=False)
        return _pack_parts([("envelope", manifest)] + attachments)

    def decode_reply(self, data: bytes) -> Any:
        parts = _unpack_parts(data)
        root = parse(parts["envelope"])
        body = root.find(_BODY) or root.find("Body")
        if body is None or not body.children:
            raise EncodingError("MIME manifest has no reply body")
        first = body.children[0]
        if first.name.local == "Fault":
            code = first.find("faultcode")
            string = first.find("faultstring")
            raise SoapFaultError(
                code.text if code is not None else "soapenv:Server",
                string.text if string is not None else "unknown fault",
            )
        ret = first.find("return")
        if ret is None:
            raise EncodingError("MIME reply lacks a <return> element")
        return _resolve_value(ret, parts)
