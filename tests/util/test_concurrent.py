"""Concurrency primitives."""

import threading
import time

import pytest

from repro.util.concurrent import (
    AtomicCounter,
    CountDownLatch,
    ReadWriteLock,
    SerialExecutor,
    run_all,
    wait_for,
)
from repro.util.errors import HarnessTimeoutError


class TestAtomicCounter:
    def test_increment_decrement(self):
        counter = AtomicCounter(10)
        assert counter.increment() == 11
        assert counter.decrement(5) == 6
        assert counter.value == 6

    def test_concurrent_increments(self):
        counter = AtomicCounter()
        run_all([lambda: [counter.increment() for _ in range(1000)] for _ in range(8)])
        assert counter.value == 8000


class TestCountDownLatch:
    def test_wait_releases_at_zero(self):
        latch = CountDownLatch(3)
        for _ in range(3):
            latch.count_down()
        latch.wait(timeout=0.1)  # must not raise

    def test_timeout_raises(self):
        latch = CountDownLatch(1)
        with pytest.raises(HarnessTimeoutError):
            latch.wait(timeout=0.05)

    def test_extra_count_down_is_harmless(self):
        latch = CountDownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountDownLatch(-1)

    def test_cross_thread_release(self):
        latch = CountDownLatch(2)
        threading.Thread(target=latch.count_down, daemon=True).start()
        threading.Thread(target=latch.count_down, daemon=True).start()
        latch.wait(timeout=2.0)


class TestReadWriteLock:
    def test_multiple_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()  # second reader does not block
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.reading():
                order.append("read")

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.05)
        order.append("write-done")
        lock.release_write()
        t.join(timeout=2)
        assert order == ["write-done", "read"]

    def test_guards(self):
        lock = ReadWriteLock()
        with lock.writing():
            pass
        with lock.reading():
            pass


class TestSerialExecutor:
    def test_runs_in_order(self):
        executor = SerialExecutor()
        order = []
        futures = [executor.submit(lambda i=i: order.append(i)) for i in range(10)]
        for future in futures:
            future.result(timeout=2)
        assert order == list(range(10))
        executor.close()

    def test_call_returns_value(self):
        executor = SerialExecutor()
        assert executor.call(lambda: 42) == 42
        executor.close()

    def test_exception_propagates(self):
        executor = SerialExecutor()
        with pytest.raises(ValueError):
            executor.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        executor.close()

    def test_submit_after_close_raises(self):
        executor = SerialExecutor()
        executor.close()
        with pytest.raises(RuntimeError):
            executor.submit(lambda: None)


class TestRunAll:
    def test_results_in_order(self):
        assert run_all([lambda i=i: i * 2 for i in range(5)]) == [0, 2, 4, 6, 8]

    def test_first_error_raised(self):
        def bad():
            raise KeyError("x")

        with pytest.raises(KeyError):
            run_all([lambda: 1, bad])

    def test_empty(self):
        assert run_all([]) == []


class TestWaitFor:
    def test_immediate_success(self):
        wait_for(lambda: True, timeout=0.1)

    def test_timeout(self):
        with pytest.raises(HarnessTimeoutError):
            wait_for(lambda: False, timeout=0.05)

    def test_eventual_success(self):
        state = {"n": 0}

        def bump():
            state["n"] += 1
            return state["n"] > 3

        wait_for(bump, timeout=2.0)
