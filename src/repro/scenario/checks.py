"""Invariant checkers: the pass criteria of a chaos scenario.

A manifest's ``checks`` list names entries from this registry; after the
fault script and workload finish, the runner evaluates each against the
final state — the workload's :class:`~repro.scenario.workload.WorkloadStats`,
the :class:`~repro.scenario.events.EventLog` audit trail, and the live
runtime (detector statuses, DVM membership).  Every checker yields a
:class:`CheckResult` with a human-readable detail string; a scenario passes
iff every check passes.

Vocabulary:

``no_lost_calls``
    Every accepted call resolved with an outcome; none vanished.  The
    expected count is derived from the manifest (ticks × calls_per_tick).
``min_success_rate``
    Overall workload success rate ≥ ``ratio``.
``typed_faults_only``
    No untyped exception escaped a call; optionally restrict the allowed
    ``HarnessError`` class names via ``allowed``.
``p99_under`` / ``max_call_s``
    Simulated-latency bounds: p99 of successful calls, and the worst single
    call (graceful degradation = typed rejects, never hangs).
``slo_burn_under``
    Error-budget burn (:mod:`repro.obs.slo`): with objective ``objective``
    (e.g. 0.95 success), the worst trailing-window burn rate must stay at
    or under ``max_burn`` budgets — under the multi-window AND, so the
    check fails only when *every* configured window burned too fast.
    ``windows_s`` defaults to [5, 20] ticks; ``latency_threshold_s`` also
    counts slow-but-successful calls as bad.
``failover_within``
    Every completed failover landed within ``deadline_s`` of the victim
    node first being suspected.
``event_count`` / ``no_event``
    Audit-trail shape: a topic (prefix) occurred between ``min`` and
    ``max`` times, or not at all.
``final_members``
    DVM membership at the end equals ``expect`` exactly.
``detector_converged``
    No member is still SUSPECTED once the script has played out.
``converged_within``
    Gossip-family coherency only: the DVM re-announced
    ``dvm.gossip.converged`` within ``deadline_s`` of the script's last
    ``heal`` (or of t=0 when the script never heals), and the protocol
    still reports convergence at the end of the run.
``final_call``
    One last invocation must succeed, optionally matching ``expect`` or
    ``expect_min`` — proves end-to-end liveness (and, for a failed-over
    counter, restored state).
``no_lost_messages``
    Mailbox workloads only: every accepted publish is accounted for —
    acked by some consumer or recorded as an ``mbox.dropped`` event; a seq
    that simply vanished fails the check.  Requires
    ``workload.mode == "mailbox"`` (the driver publishes the audit).
``queue_depth_under``
    Mailbox workloads only: the mailbox's high-water backlog never
    exceeded ``bound`` — the overflow policy really bounded the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.util.errors import HarnessError, ScenarioError

__all__ = ["CheckResult", "CheckContext", "known_checks", "run_checks"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check."""

    check: str
    passed: bool
    detail: str
    params: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "passed": self.passed,
            "detail": self.detail,
            "params": dict(self.params),
        }


@dataclass
class CheckContext:
    """Everything a checker may inspect after the run."""

    manifest: object  # ScenarioManifest
    runtime: object  # ScenarioRuntime
    stats: object  # WorkloadStats (empty when the manifest has no workload)
    log: object  # EventLog


_CHECKS: dict[str, Callable[[CheckContext, Mapping], CheckResult]] = {}


def _check(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        _CHECKS[name] = fn
        return fn

    return register


def known_checks() -> frozenset[str]:
    """The registered checker names (manifest validation uses this)."""
    return frozenset(_CHECKS)


def run_checks(ctx: CheckContext) -> list[CheckResult]:
    """Evaluate every check the manifest declares, in declaration order."""
    results = []
    for spec in ctx.manifest.checks:
        fn = _CHECKS.get(spec.check)
        if fn is None:  # parse_manifest validated; guard against drift
            raise ScenarioError(f"unknown check {spec.check!r}")
        try:
            result = fn(ctx, spec.params)
        except Exception as exc:
            result = CheckResult(
                spec.check,
                False,
                f"checker crashed: {type(exc).__name__}: {exc}",
                dict(spec.params),
            )
        results.append(result)
    return results


# -- workload invariants --------------------------------------------------------


@_check("no_lost_calls")
def _no_lost_calls(ctx: CheckContext, params: Mapping) -> CheckResult:
    stats = ctx.stats
    expected = 0
    if ctx.manifest.workload is not None:
        expected = ctx.manifest.n_ticks * ctx.manifest.workload.calls_per_tick
    unresolved = sum(1 for r in stats.records if not r.ok and r.error is None)
    passed = stats.issued == expected and unresolved == 0
    return CheckResult(
        "no_lost_calls",
        passed,
        f"issued={stats.issued} expected={expected} unresolved={unresolved}",
        dict(params),
    )


@_check("min_success_rate")
def _min_success_rate(ctx: CheckContext, params: Mapping) -> CheckResult:
    ratio = float(params["ratio"])
    rate = ctx.stats.success_rate
    return CheckResult(
        "min_success_rate",
        rate >= ratio,
        f"success_rate={rate:.4f} (ok={ctx.stats.ok}/{ctx.stats.issued}) bound={ratio}",
        dict(params),
    )


@_check("typed_faults_only")
def _typed_faults_only(ctx: CheckContext, params: Mapping) -> CheckResult:
    untyped = ctx.stats.untyped_failures()
    if untyped:
        sample = sorted({r.error for r in untyped if r.error})[:5]
        return CheckResult(
            "typed_faults_only",
            False,
            f"{len(untyped)} untyped failure(s): {sample}",
            dict(params),
        )
    allowed = params.get("allowed")
    if allowed is not None:
        seen = set(ctx.stats.error_counts())
        extra = sorted(seen - set(allowed))
        if extra:
            return CheckResult(
                "typed_faults_only",
                False,
                f"disallowed fault types: {extra} (allowed: {sorted(allowed)})",
                dict(params),
            )
    return CheckResult(
        "typed_faults_only",
        True,
        f"all failures typed ({ctx.stats.failed} total: {ctx.stats.error_counts()})",
        dict(params),
    )


@_check("p99_under")
def _p99_under(ctx: CheckContext, params: Mapping) -> CheckResult:
    bound = float(params["bound_s"])
    ok_only = bool(params.get("ok_only", True))
    p99 = ctx.stats.percentile(99, ok_only=ok_only)
    return CheckResult(
        "p99_under",
        p99 <= bound,
        f"p99={p99:.6f}s bound={bound}s (ok_only={ok_only})",
        dict(params),
    )


@_check("slo_burn_under")
def _slo_burn_under(ctx: CheckContext, params: Mapping) -> CheckResult:
    from repro.obs.slo import BurnSeries

    objective = float(params["objective"])
    limit = float(params["max_burn"])
    tick = ctx.manifest.tick_s
    windows = [float(w) for w in params.get("windows_s", (5 * tick, 20 * tick))]
    threshold = params.get("latency_threshold_s")
    series = BurnSeries(objective)
    bad = total = 0
    for record in sorted(ctx.stats.records, key=lambda r: (r.t, r.latency_s)):
        total += 1
        if not record.ok or (
            threshold is not None and record.latency_s > float(threshold)
        ):
            bad += 1
        series.observe(record.t + record.latency_s, bad, total)
    worst = {w: series.max_burn(w) for w in windows}
    # multi-window AND: the budget is violated only when every window
    # burned past the limit, so the binding bound is the minimum
    bound = min(worst.values()) if worst else 0.0
    per_window = ", ".join(f"{w:g}s={b:.2f}x" for w, b in sorted(worst.items()))
    return CheckResult(
        "slo_burn_under",
        bound <= limit,
        f"worst burn per window [{per_window}], co-exceedance bound "
        f"{bound:.2f}x (limit {limit:g}x, objective {objective:g}, "
        f"{bad}/{total} bad)",
        dict(params),
    )


@_check("max_call_s")
def _max_call_s(ctx: CheckContext, params: Mapping) -> CheckResult:
    bound = float(params["bound_s"])
    worst = ctx.stats.max_latency()
    return CheckResult(
        "max_call_s",
        worst <= bound,
        f"max_call={worst:.6f}s bound={bound}s over {ctx.stats.issued} calls",
        dict(params),
    )


# -- messaging invariants -------------------------------------------------------


def _mailbox_audit(ctx: CheckContext):
    audit = getattr(ctx.runtime, "mailbox_audit", None)
    if audit is None:
        raise ScenarioError(
            "no mailbox audit on the runtime (needs workload mode 'mailbox')"
        )
    return audit


@_check("no_lost_messages")
def _no_lost_messages(ctx: CheckContext, params: Mapping) -> CheckResult:
    audit = _mailbox_audit(ctx)
    published = set(audit["published"])
    acked = set(audit["acked"])
    dropped = set()
    for rec in ctx.log.records("mbox.dropped"):
        payload = rec.get("payload") or {}
        if payload.get("mailbox") == audit["mailbox"] and "seq" in payload:
            dropped.add(int(payload["seq"]))
    lost = published - acked - dropped
    detail = (
        f"published={len(published)} acked={len(acked)} "
        f"dropped={len(dropped & published)} lost={len(lost)}"
    )
    if lost:
        detail += f" (e.g. seqs {sorted(lost)[:5]})"
    return CheckResult("no_lost_messages", not lost, detail, dict(params))


@_check("queue_depth_under")
def _queue_depth_under(ctx: CheckContext, params: Mapping) -> CheckResult:
    bound = int(params["bound"])
    stats = _mailbox_audit(ctx)["stats"]()
    high = int(stats.get("high_water", 0))
    return CheckResult(
        "queue_depth_under",
        high <= bound,
        f"high_water={high} bound={bound} "
        f"(final depth={stats.get('depth', 0)}, "
        f"rejected={stats.get('rejected', 0)}, dropped={stats.get('dropped', 0)})",
        dict(params),
    )


# -- audit-trail invariants -----------------------------------------------------


@_check("failover_within")
def _failover_within(ctx: CheckContext, params: Mapping) -> CheckResult:
    deadline = float(params["deadline_s"])
    suspects: dict[str, list[float]] = {}
    for rec in ctx.log.records("dvm.member.suspected"):
        payload = rec.get("payload") or {}
        # a coalesced suspicion event carries the cohort under "nodes"
        entries = payload.get("nodes", [payload]) if isinstance(payload, dict) else []
        for entry in entries:
            node = entry.get("node", "") if isinstance(entry, dict) else str(entry)
            suspects.setdefault(node, []).append(rec["t"])
    failovers = ctx.log.records("recovery.failover")
    failovers = [r for r in failovers if r["topic"] == "recovery.failover"]
    if not failovers:
        return CheckResult(
            "failover_within", False, "no recovery.failover event occurred", dict(params)
        )
    worst = 0.0
    for rec in failovers:
        victim = (rec.get("payload") or {}).get("from", "")
        onset = [t for t in suspects.get(victim, []) if t <= rec["t"]]
        if onset:
            worst = max(worst, rec["t"] - max(onset))
    return CheckResult(
        "failover_within",
        worst <= deadline,
        f"{len(failovers)} failover(s), worst suspicion→failover {worst:.3f}s "
        f"(deadline {deadline}s)",
        dict(params),
    )


@_check("event_count")
def _event_count(ctx: CheckContext, params: Mapping) -> CheckResult:
    topic = str(params["topic"])
    lo = int(params.get("min", 0))
    hi = params.get("max")
    count = len(ctx.log.records(topic))
    passed = count >= lo and (hi is None or count <= int(hi))
    return CheckResult(
        "event_count",
        passed,
        f"{count} event(s) under {topic!r} (min={lo}, max={hi})",
        dict(params),
    )


@_check("no_event")
def _no_event(ctx: CheckContext, params: Mapping) -> CheckResult:
    topic = str(params["topic"])
    count = len(ctx.log.records(topic))
    return CheckResult(
        "no_event", count == 0, f"{count} event(s) under {topic!r}", dict(params)
    )


# -- end-state invariants -------------------------------------------------------


@_check("final_members")
def _final_members(ctx: CheckContext, params: Mapping) -> CheckResult:
    expect = sorted(params["expect"])
    actual = sorted(ctx.runtime.harness.dvm.nodes())
    return CheckResult(
        "final_members",
        actual == expect,
        f"members={actual} expected={expect}",
        dict(params),
    )


@_check("detector_converged")
def _detector_converged(ctx: CheckContext, params: Mapping) -> CheckResult:
    detector = ctx.runtime.harness.detector
    if detector is None:
        return CheckResult(
            "detector_converged", False, "self-healing not enabled", dict(params)
        )
    statuses = {m: h.value for m, h in detector.statuses().items()}
    members = set(ctx.runtime.harness.dvm.nodes())
    unsettled = {m: s for m, s in statuses.items() if m in members and s != "alive"}
    return CheckResult(
        "detector_converged",
        not unsettled,
        f"unsettled={unsettled}" if unsettled else f"all {len(members)} members alive",
        dict(params),
    )


@_check("converged_within")
def _converged_within(ctx: CheckContext, params: Mapping) -> CheckResult:
    deadline = float(params["deadline_s"])
    protocol = ctx.runtime.harness.dvm.protocol
    if not hasattr(protocol, "converged"):
        return CheckResult(
            "converged_within",
            False,
            f"{type(protocol).__name__} has no convergence signal "
            "(use a gossip-family coherency scheme)",
            dict(params),
        )
    heals = [
        rec["t"]
        for rec in ctx.log.records("scenario.fault")
        if (rec.get("payload") or {}).get("action") == "heal"
    ]
    t0 = max(heals) if heals else 0.0
    anchor = "last heal" if heals else "start"
    if not protocol.converged():
        return CheckResult(
            "converged_within",
            False,
            f"protocol diverged at end of run (anchor: {anchor} at {t0:.3f}s)",
            dict(params),
        )
    announced = [
        rec["t"] for rec in ctx.log.records("dvm.gossip.converged") if rec["t"] >= t0
    ]
    if not announced:
        return CheckResult(
            "converged_within",
            False,
            f"no dvm.gossip.converged event after {anchor} at {t0:.3f}s",
            dict(params),
        )
    delay = min(announced) - t0
    return CheckResult(
        "converged_within",
        delay <= deadline,
        f"converged {delay:.3f}s after {anchor} (deadline {deadline}s)",
        dict(params),
    )


@_check("final_call")
def _final_call(ctx: CheckContext, params: Mapping) -> CheckResult:
    workload = ctx.manifest.workload
    service = params.get("service") or (workload.service if workload else None)
    node = params.get("node") or (workload.from_nodes[0] if workload else None)
    if not service or not node:
        raise ScenarioError("final_call needs 'service'/'node' without a workload")
    if node not in ctx.runtime.harness.dvm.nodes():
        live = sorted(ctx.runtime.harness.dvm.nodes())
        if not live:
            return CheckResult(
                "final_call", False, "no live node to call from", dict(params)
            )
        node = live[0]
    op = str(params["op"])
    args = list(params.get("args", ()))
    try:
        stub = ctx.runtime.harness.stub(node, service)
        try:
            value = stub.invoke(op, *args)
        finally:
            close = getattr(stub, "close", None)
            if close:
                close()
    except HarnessError as exc:
        return CheckResult(
            "final_call",
            False,
            f"{op}{tuple(args)} raised {type(exc).__name__}: {exc}",
            dict(params),
        )
    if "expect" in params and value != params["expect"]:
        return CheckResult(
            "final_call",
            False,
            f"{op} returned {value!r}, expected {params['expect']!r}",
            dict(params),
        )
    if "expect_min" in params and not (
        isinstance(value, (int, float)) and value >= params["expect_min"]
    ):
        return CheckResult(
            "final_call",
            False,
            f"{op} returned {value!r}, expected >= {params['expect_min']}",
            dict(params),
        )
    return CheckResult("final_call", True, f"{op} returned {value!r}", dict(params))
