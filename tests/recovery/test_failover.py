"""Checkpoint store and automatic failover manager."""

import pytest

from repro.dvm.machine import DistributedVirtualMachine
from repro.dvm.state import FullSynchronyState
from repro.netsim import lan
from repro.plugins.services import CounterService
from repro.recovery import CheckpointStore, FailoverManager, least_loaded_node


def make_dvm(n: int = 3):
    net = lan(n)
    dvm = DistributedVirtualMachine("rec", net, lambda network: FullSynchronyState(network))
    for i in range(n):
        dvm.add_node(f"node{i}")
    return net, dvm


class TestCheckpointStore:
    def test_latest_wins(self):
        store = CheckpointStore()
        store.put("svc", "node0", b"old")
        store.put("svc", "node1", b"new")
        assert store.get("svc") == ("node1", b"new")
        assert len(store) == 1

    def test_discard_and_services(self):
        store = CheckpointStore()
        store.put("a", "n", b"1")
        store.put("b", "n", b"2")
        assert store.services() == ["a", "b"]
        store.discard("a")
        assert store.get("a") is None
        assert store.services() == ["b"]


class TestCheckpointing:
    def test_only_restartable_components_snapshotted(self):
        _net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="durable",
                   bindings=("local-instance", "sim"), restartable=True)
        dvm.deploy("node1", CounterService, name="ephemeral",
                   bindings=("local-instance", "sim"))
        manager = FailoverManager(dvm)
        assert manager.checkpoint() == 1
        assert manager.store.services() == ["durable"]
        manager.close()
        dvm.close()

    def test_checkpoint_publishes_and_charges_fabric(self):
        net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="durable",
                   bindings=("local-instance", "sim"), restartable=True)
        seen = []
        dvm.events.subscribe("recovery.checkpoint", lambda e: seen.append(e.payload))
        manager = FailoverManager(dvm, home="node2")
        net.reset_stats()
        manager.checkpoint()
        assert seen and seen[0]["service"] == "durable"
        # snapshot bytes travelled node0 -> node2 in the cost model
        assert net.stats[("node0", "node2")].bytes == seen[0]["bytes"]
        manager.close()
        dvm.close()

    def test_checkpoint_refresh_captures_new_state(self):
        _net, dvm = make_dvm()
        handle = dvm.deploy("node0", CounterService, name="durable",
                            bindings=("local-instance", "sim"), restartable=True)
        manager = FailoverManager(dvm)
        manager.checkpoint()
        first = manager.store.get("durable")[1]
        handle.instance.increment(10)
        manager.checkpoint()
        assert manager.store.get("durable")[1] != first
        manager.close()
        dvm.close()


class TestFailover:
    def test_restartable_component_revived_on_surviving_node(self):
        net, dvm = make_dvm()
        handle = dvm.deploy("node0", CounterService, name="durable",
                            bindings=("local-instance", "sim"), restartable=True)
        handle.instance.increment(7)
        manager = FailoverManager(dvm)
        manager.checkpoint()
        done = []
        dvm.events.subscribe("recovery.failover", lambda e: done.append(e.payload))

        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")  # failover runs inside this call

        assert done and done[0]["service"] == "durable"
        new_home = done[0]["to"]
        assert new_home in ("node1", "node2")
        assert dvm.component_index("node1") == {"durable": new_home}
        # checkpointed state survived the crash
        revived = dvm.node(new_home).container.component_named("durable")
        assert revived.instance.value() == 7
        assert revived.metadata["restartable"] is True
        assert manager.recovered == done
        manager.close()
        dvm.close()

    def test_non_restartable_component_stays_lost(self):
        net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="ephemeral",
                   bindings=("local-instance", "sim"))
        manager = FailoverManager(dvm)
        manager.checkpoint()
        outcomes = []
        dvm.events.subscribe("recovery", lambda e: outcomes.append(e.topic))
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")
        assert outcomes == []  # neither failover nor failure: not restartable
        assert "ephemeral" not in dvm.component_index("node1")
        manager.close()
        dvm.close()

    def test_missing_checkpoint_reports_failure(self):
        net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="durable",
                   bindings=("local-instance", "sim"), restartable=True)
        manager = FailoverManager(dvm)  # never checkpointed
        failures = []
        dvm.events.subscribe("recovery.failover.failed", lambda e: failures.append(e.payload))
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")
        assert failures and failures[0]["reason"] == "no checkpoint"
        manager.close()
        dvm.close()

    def test_custom_placement_policy(self):
        net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="durable",
                   bindings=("local-instance", "sim"), restartable=True)
        manager = FailoverManager(dvm, placement=lambda _dvm, _record: "node2")
        manager.checkpoint()
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")
        assert dvm.component_index("node1")["durable"] == "node2"
        manager.close()
        dvm.close()

    def test_closed_manager_stops_reacting(self):
        net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="durable",
                   bindings=("local-instance", "sim"), restartable=True)
        manager = FailoverManager(dvm)
        manager.checkpoint()
        manager.close()
        net.host("node0").crash()
        dvm.evict_node("node0", by="node1")
        assert manager.recovered == []
        assert "durable" not in dvm.component_index("node1")
        dvm.close()


class TestPlacement:
    def test_least_loaded_prefers_emptier_node(self):
        _net, dvm = make_dvm()
        dvm.deploy("node0", CounterService, name="a", bindings=("local-instance", "sim"))
        dvm.deploy("node0", CounterService, name="b", bindings=("local-instance", "sim"))
        dvm.deploy("node1", CounterService, name="c", bindings=("local-instance", "sim"))
        assert least_loaded_node(dvm, {}) == "node2"
        dvm.close()

    def test_no_nodes_returns_none(self):
        _net, dvm = make_dvm(1)
        dvm.remove_node("node0")
        assert least_loaded_node(dvm, {}) is None
        dvm.close()
