"""Heterogeneity: the wire formats are endianness- and layout-neutral.

The paper's title promise is *heterogeneous* metacomputing — sparc next to
x86, Java next to C.  Our XDR and SOAP codecs must therefore produce
identical wire bytes regardless of the producer's in-memory byte order or
array layout, and decode to native-order values.
"""

import numpy as np
import pytest

from repro.encoding.base64codec import decode_array_base64, encode_array_base64
from repro.encoding.xdr import pack_value, unpack_value


def variants(values, dtype="float64"):
    """The same logical array in every in-memory representation."""
    native = np.asarray(values, dtype=dtype)
    return {
        "native": native,
        "big-endian": native.astype(native.dtype.newbyteorder(">")),
        "little-endian": native.astype(native.dtype.newbyteorder("<")),
        "fortran-order": np.asfortranarray(native.reshape(2, -1)).reshape(native.shape)
        if native.size % 2 == 0 else native,
        "strided-view": np.repeat(native, 2)[::2],
    }


class TestXdrEndiannessNeutral:
    def test_identical_wire_bytes_for_all_representations(self):
        reference = None
        for name, array in variants([1.5, -2.25, 3e100, 0.0]).items():
            wire = pack_value(np.ascontiguousarray(array, dtype=np.float64))
            if reference is None:
                reference = wire
            assert wire == reference, name

    @pytest.mark.parametrize("byte_order", [">", "<", "="])
    def test_foreign_byte_order_input(self, byte_order):
        array = np.arange(10, dtype=np.dtype("f8").newbyteorder(byte_order))
        out = unpack_value(pack_value(array))
        # decoded values equal; dtype is the logical float64 either way
        assert np.array_equal(out.astype(np.float64), np.arange(10.0))

    def test_decoded_arrays_are_native_order(self):
        big = np.arange(4, dtype=">f8")
        out = unpack_value(pack_value(big))
        assert out.dtype.byteorder in ("=", "<", ">")
        # usable in arithmetic without byteswap surprises
        assert float((out + 1).sum()) == 10.0

    def test_int_sizes_across_architectures(self):
        # a 32-bit producer's ints and a 64-bit producer's ints interoperate
        for dtype in ("int32", "int64"):
            array = np.array([1, -2, 2**30], dtype=dtype)
            out = unpack_value(pack_value(array))
            assert np.array_equal(out, array)
            assert out.dtype == np.dtype(dtype)


class TestBase64EndiannessNeutral:
    def test_same_text_for_both_byte_orders(self):
        values = [1.0, 2.5, -3.75]
        big = np.asarray(values, dtype=">f8")
        little = np.asarray(values, dtype="<f8")
        assert encode_array_base64(big) == encode_array_base64(little)

    def test_decode_is_native(self):
        text = encode_array_base64([7.0, 8.0])
        out = decode_array_base64(text)
        assert float(out.sum()) == 15.0


class TestSoapTextIsArchitectureFree:
    def test_repr_round_trip_independent_of_dtype_order(self):
        from repro.soap.values import element_to_value, value_to_element
        from repro.xmlkit import parse, to_string

        for order in (">", "<"):
            array = np.asarray([0.1, 1e-300, 6.25], dtype=np.dtype("f8").newbyteorder(order))
            element = value_to_element("v", np.ascontiguousarray(array, dtype=np.float64), "items")
            out = element_to_value(parse(to_string(element)))
            assert np.array_equal(out, array.astype(np.float64))
