#!/usr/bin/env python
"""Section 6's DVM-enabling components: one application, three protocols.

Runs the same deploy/lookup workload on full-synchrony, decentralized and
neighborhood DVMs and prints each scheme's traffic profile — the design's
point being that the *application* is identical ("they always expose the
same functional interface") while the *cost structure* shifts with the
update/query mix.

Run:  python examples/coherency_schemes.py
"""

from repro import HarnessDvm, lan
from repro.core.builder import COHERENCY_SCHEMES
from repro.plugins import CounterService


def workload(harness: HarnessDvm, updates: int, queries: int) -> dict:
    nodes = harness.dvm.nodes()
    for i in range(updates):
        node = nodes[i % len(nodes)]
        harness.deploy(node, CounterService, name=f"svc{i}",
                       bindings=("local-instance",))
    hits = 0
    for i in range(queries):
        node = nodes[(i * 7) % len(nodes)]
        owner, _ = harness.lookup(node, f"svc{i % updates}")
        hits += owner is not None
    return {"hits": hits}


def main() -> None:
    n_nodes = 8
    mixes = [("query-heavy (4 updates, 64 queries)", 4, 64),
             ("balanced    (16 updates, 16 queries)", 16, 16),
             ("update-heavy(32 updates, 4 queries)", 32, 4)]

    for label, updates, queries in mixes:
        print(f"\n=== {label} on {n_nodes} nodes ===")
        print(f"{'scheme':<16} {'messages':>9} {'bytes':>10} {'sim time':>10}")
        for scheme in sorted(COHERENCY_SCHEMES):
            network = lan(n_nodes)
            with HarnessDvm(f"demo-{scheme}-{updates}", network,
                            coherency=scheme) as harness:
                harness.add_nodes(*[f"node{i}" for i in range(n_nodes)])
                network.reset_stats()  # measure the workload, not the joins
                workload(harness, updates, queries)
                print(f"{scheme:<16} {network.total_messages:>9} "
                      f"{network.total_bytes:>10} "
                      f"{network.simulated_time * 1e3:>8.2f}ms")

    print("\nfull synchrony pays per update and reads free;")
    print("decentralization registers free and pays per query —")
    print("the crossover the paper predicts between the two extremes.")


if __name__ == "__main__":
    main()
