"""Wire encodings: XDR (RFC 1014 subset), XSD base64, codec registry."""

from repro.encoding.base64codec import (
    XSD_TYPE_FOR_DTYPE,
    decode_array_base64,
    decode_array_base64_pure,
    decode_hex,
    encode_array_base64,
    encode_array_base64_pure,
    encode_hex,
)
from repro.encoding.registry import (
    CodecRegistry,
    MessageCodec,
    XdrMessageCodec,
    default_registry,
)
from repro.encoding.xdr import (
    XdrDecoder,
    XdrEncoder,
    pack_call,
    pack_reply,
    pack_value,
    unpack_call,
    unpack_reply,
    unpack_value,
)

__all__ = [
    "XSD_TYPE_FOR_DTYPE",
    "decode_array_base64",
    "decode_array_base64_pure",
    "decode_hex",
    "encode_array_base64",
    "encode_array_base64_pure",
    "encode_hex",
    "CodecRegistry",
    "MessageCodec",
    "XdrMessageCodec",
    "default_registry",
    "XdrDecoder",
    "XdrEncoder",
    "pack_call",
    "pack_reply",
    "pack_value",
    "unpack_call",
    "unpack_reply",
    "unpack_value",
]
