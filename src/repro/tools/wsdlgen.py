"""``wsdlgen`` — generate WSDL descriptions from Python service classes.

The paper generates Figure 7/8's documents "semi-automatically, e.g. with
the wsdlgen tool provided by IBM in the Web Services Toolkit", noting that
"automatic generation is limited to SOAP bindings; however, it is possible
to extract the abstract interface description from the automatically
generated file and to integrate it manually with the required bindings."

Our :func:`generate_wsdl` does the same from Python introspection —
signatures and type hints become messages and port types — and goes one
step further: the caller may request any mix of bindings (SOAP, XDR, local,
local-instance) in one shot, since the Harness extensions are first-class
here.
"""

from __future__ import annotations

import inspect
from typing import Any, get_type_hints

import numpy as np

from repro.util.errors import WsdlError
from repro.wsdl.extensions import (
    LocalBindingExt,
    LocalInstanceBindingExt,
    MimeBindingExt,
    SimBindingExt,
    SoapBindingExt,
    SoapOperationExt,
    XdrBindingExt,
)
from repro.wsdl.model import (
    WsdlBinding,
    WsdlBindingOperation,
    WsdlDocument,
    WsdlMessage,
    WsdlOperation,
    WsdlPart,
    WsdlPortType,
)

__all__ = ["generate_wsdl", "xsd_type_for", "service_operations"]

#: Python annotation → XSD/Harness wire-type name.
_XSD_FOR_TYPE: list[tuple[type, str]] = [
    (bool, "xsd:boolean"),
    (int, "xsd:long"),
    (float, "xsd:double"),
    (str, "xsd:string"),
    (bytes, "xsd:base64Binary"),
    (np.ndarray, "harness:array"),
    (list, "soapenc:Array"),
    (tuple, "soapenc:Array"),
    (dict, "harness:Struct"),
]


def xsd_type_for(annotation: Any) -> str:
    """Map a Python annotation to its wire-type name (default xsd:anyType)."""
    if annotation is inspect.Parameter.empty or annotation is None or annotation is type(None):
        return "xsd:anyType"
    origin = getattr(annotation, "__origin__", None)
    if origin is not None:
        annotation = origin
    if isinstance(annotation, type):
        for py_type, xsd_name in _XSD_FOR_TYPE:
            if issubclass(annotation, py_type):
                return xsd_name
    return "xsd:anyType"


def service_operations(service_class: type) -> list[str]:
    """Public methods of *service_class*, in definition order."""
    ops = []
    for name, member in vars(service_class).items():
        if name.startswith("_") or name.startswith("on_"):
            continue  # underscore = private, on_* = lifecycle hooks
        if callable(member):
            ops.append(name)
    # include public methods from bases (rare but legal)
    for name in dir(service_class):
        if name.startswith("_") or name.startswith("on_") or name in ops:
            continue
        if callable(getattr(service_class, name, None)) and name not in vars(service_class):
            base_member = getattr(service_class, name)
            if inspect.isfunction(base_member) or inspect.ismethod(base_member):
                ops.append(name)
    if not ops:
        raise WsdlError(f"{service_class.__name__} exposes no public operations")
    return ops


def generate_wsdl(
    service_class: type,
    service_name: str | None = None,
    target_namespace: str | None = None,
    bindings: tuple[str, ...] = ("soap", "local"),
    instance_id: str = "",
    documentation: str = "",
) -> WsdlDocument:
    """Generate the WSDL *abstract part* + requested binding skeletons.

    Returns a document with messages, a portType, and one ``<binding>`` per
    requested kind; ports (concrete addresses) are added later by whoever
    actually deploys the component (container / BindingServer), keeping the
    abstract/concrete split of Section 4.

    ``bindings`` may contain ``"soap"``, ``"xdr"``, ``"local"`` and
    ``"local-instance"`` (the latter requires ``instance_id``).
    """
    name = service_name or service_class.__name__
    namespace = target_namespace or f"urn:harness:{name}"
    type_name = f"{service_class.__module__}:{service_class.__qualname__}"

    messages: list[WsdlMessage] = []
    operations: list[WsdlOperation] = []
    for op_name in service_operations(service_class):
        method = getattr(service_class, op_name)
        try:
            signature = inspect.signature(method)
            hints = get_type_hints(method)
        except (TypeError, ValueError):
            signature = None
            hints = {}
        parts: list[WsdlPart] = []
        if signature is not None:
            for param_name, param in signature.parameters.items():
                if param_name == "self" or param.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD,
                ):
                    continue
                parts.append(WsdlPart(param_name, xsd_type_for(hints.get(param_name, param.annotation))))
        request = WsdlMessage(f"{op_name}Request", tuple(parts))
        return_type = xsd_type_for(hints.get("return", inspect.Parameter.empty))
        response = WsdlMessage(f"{op_name}Response", (WsdlPart("return", return_type),))
        messages.extend([request, response])
        operations.append(WsdlOperation(op_name, request.name, response.name))

    port_type = WsdlPortType(f"{name}PortType", tuple(operations))

    wsdl_bindings: list[WsdlBinding] = []
    for kind in bindings:
        if kind == "soap":
            wsdl_bindings.append(
                WsdlBinding(
                    f"{name}SoapBinding",
                    port_type.name,
                    (SoapBindingExt(),),
                    tuple(
                        WsdlBindingOperation(op.name, (SoapOperationExt(f"{namespace}#{op.name}"),))
                        for op in operations
                    ),
                )
            )
        elif kind == "xdr":
            wsdl_bindings.append(
                WsdlBinding(f"{name}XdrBinding", port_type.name, (XdrBindingExt(),))
            )
        elif kind == "sim":
            wsdl_bindings.append(
                WsdlBinding(f"{name}SimBinding", port_type.name, (SimBindingExt(),))
            )
        elif kind == "mime":
            wsdl_bindings.append(
                WsdlBinding(f"{name}MimeBinding", port_type.name, (MimeBindingExt(),))
            )
        elif kind == "local":
            wsdl_bindings.append(
                WsdlBinding(f"{name}LocalBinding", port_type.name, (LocalBindingExt(type_name),))
            )
        elif kind == "local-instance":
            if not instance_id:
                raise WsdlError("local-instance binding requires instance_id")
            wsdl_bindings.append(
                WsdlBinding(
                    f"{name}InstanceBinding",
                    port_type.name,
                    (LocalInstanceBindingExt(type_name, instance_id),),
                )
            )
        else:
            raise WsdlError(f"unknown binding kind {kind!r}")

    document = WsdlDocument(
        name=name,
        target_namespace=namespace,
        messages=tuple(messages),
        port_types=(port_type,),
        bindings=tuple(wsdl_bindings),
        documentation=documentation or (inspect.getdoc(service_class) or ""),
    )
    document.validate()
    return document
