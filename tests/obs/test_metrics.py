"""Unit tests for the lock-striped metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("t.count")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_reset_zeroes_in_place(self):
        c = Counter("t.count")
        c.inc(7)
        c.reset()
        assert c.value() == 0
        c.inc()
        assert c.value() == 1

    def test_concurrent_increments_are_exact(self):
        c = Counter("t.count")
        per_thread = 2_000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8 * per_thread

    def test_export(self):
        c = Counter("t.count")
        c.inc(3)
        assert c.export() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t.level")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7

    def test_export_and_reset(self):
        g = Gauge("t.level")
        g.set(3.5)
        assert g.export() == {"type": "gauge", "value": 3.5}
        g.reset()
        assert g.value() == 0.0


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("t.lat")
        for v in (3, 30, 300, 3000):
            h.observe(v)
        export = h.export()
        assert export["count"] == 4
        assert export["sum"] == pytest.approx(3333)
        assert export["min"] == 3
        assert export["max"] == 3000

    def test_bucket_assignment(self):
        h = Histogram("t.lat", bounds=(10, 100))
        h.observe(5)       # <= 10
        h.observe(10)      # <= 10 (bounds are upper-inclusive via bisect_left)
        h.observe(50)      # <= 100
        h.observe(1_000)   # +inf
        buckets = h.export()["buckets"]
        assert buckets == {"10": 2, "100": 1, "+inf": 1}

    def test_percentile_interpolates(self):
        h = Histogram("t.lat", bounds=(10, 100, 1000))
        for _ in range(100):
            h.observe(50)
        # every observation sits in the (10, 100] bucket
        assert 10 <= h.percentile(0.5) <= 100
        assert 10 <= h.percentile(0.99) <= 100

    def test_empty_percentile_is_zero(self):
        h = Histogram("t.lat")
        assert h.percentile(0.5) == 0.0
        assert h.export()["count"] == 0

    def test_values_above_last_bound_land_in_inf(self):
        h = Histogram("t.lat")
        h.observe(10 * DEFAULT_BUCKETS_US[-1])
        assert h.export()["buckets"]["+inf"] == 1

    def test_concurrent_observations_are_exact(self):
        h = Histogram("t.lat")
        per_thread = 1_000

        def worker(seed):
            for i in range(per_thread):
                h.observe((seed * 37 + i) % 5_000)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8 * per_thread

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Histogram("t.lat", bounds=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 2

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_prefix_filter(self):
        r = MetricsRegistry()
        r.counter("tcp.client.dials").inc()
        r.counter("server.requests").inc(2)
        snap = r.snapshot("tcp.")
        assert list(snap) == ["tcp.client.dials"]
        assert snap["tcp.client.dials"]["value"] == 1
        assert len(r.snapshot()) == 2

    def test_reset_keeps_cached_references_live(self):
        r = MetricsRegistry()
        c = r.counter("kept")
        c.inc(5)
        r.reset()
        assert c.value() == 0
        c.inc()
        # the registry still sees the same (zeroed then bumped) instrument
        assert r.snapshot()["kept"]["value"] == 1


class TestExemplars:
    """Trace exemplars: bucket-crossing outliers tagged with the current
    trace id, captured only while tracing is enabled (DESIGN.md §12)."""

    def test_no_capture_while_tracing_disabled(self):
        from repro.obs import trace

        hist = Histogram("h")
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        try:
            hist.observe(10_000.0)
        finally:
            trace.deactivate(token)
        assert hist.exemplars == {}

    def test_rising_ladder_captures_bucket_crossings(self):
        from repro.obs import trace

        trace.enable(True)
        hist = Histogram("h")
        a, b = trace.new_trace(), trace.new_trace()
        token = trace.activate(a)
        try:
            hist.observe(30.0)       # first sight of bucket le=50
            hist.observe(7.0)        # lower bucket: NOT an outlier anymore
        finally:
            trace.deactivate(token)
        token = trace.activate(b)
        try:
            hist.observe(40.0)       # same high-water: no recapture
            hist.observe(9_000.0)    # new high-water: captured under b
        finally:
            trace.deactivate(token)
        assert set(hist.exemplars) == {3, 10}  # le=50 and le=10000
        assert hist.exemplars[3] == (a.trace_id, 30.0)
        assert hist.exemplars[10] == (b.trace_id, 9_000.0)

    def test_no_context_skips_without_burning_the_ladder(self):
        from repro.obs import trace

        trace.enable(True)
        hist = Histogram("h")
        hist.observe(30.0)  # no active context: nothing captured...
        assert hist.exemplars == {}
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        try:
            hist.observe(30.0)  # ...and the same bucket can still capture
        finally:
            trace.deactivate(token)
        assert hist.exemplars[3] == (ctx.trace_id, 30.0)

    def test_export_includes_exemplars_only_when_present(self):
        from repro.obs import trace

        hist = Histogram("h")
        hist.observe(5.0)
        assert "exemplars" not in hist.export()
        trace.enable(True)
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        try:
            hist.observe(60.0)
        finally:
            trace.deactivate(token)
        doc = hist.export()
        assert doc["exemplars"]["100"] == {"trace_id": ctx.trace_id, "value": 60.0}

    def test_reset_clears_exemplars_and_ladder(self):
        from repro.obs import trace

        trace.enable(True)
        hist = Histogram("h")
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        try:
            hist.observe(30.0)
            hist.reset()
            assert hist.exemplars == {}
            hist.observe(30.0)  # ladder restarted: same bucket recaptures
        finally:
            trace.deactivate(token)
        assert 3 in hist.exemplars

    def test_group_members_capture_independently(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace

        trace.enable(True)
        group = obs_metrics.registry.histogram_group(("g.a_us", "g.b_us"))
        ctx = trace.new_trace()
        token = trace.activate(ctx)
        try:
            group.observe(30.0, 9_000.0)
        finally:
            trace.deactivate(token)
        snap = obs_metrics.registry.snapshot("g.")
        assert snap["g.a_us"]["exemplars"]["50"]["trace_id"] == ctx.trace_id
        assert snap["g.b_us"]["exemplars"]["10000"]["trace_id"] == ctx.trace_id
