"""Client-side stubs — the WSIF idea, dynamically generated.

"This package provides a skeleton implementation for the dynamic, run-time
generation of Web Service stubs.  Thus, it is possible for a client both to
select the type of protocol it wants to use to access a service (e.g. SOAP)
or to let the framework dynamically generate the required stub." (Section 4,
on IBM's WSIF.)

A :class:`ServiceStub` exposes the operations of a WSDL portType as normal
Python methods; concrete subclasses differ only in how ``_invoke`` reaches
the service:

* :class:`TransportStub` — encode with a codec, ship over a transport
  (SOAP/HTTP and XDR/TCP both use this, with different codec+transport).
* :class:`LocalStub` — direct Python call on an object in this process:
  the paper's *Java binding* (fresh instance) and *JavaObject scheme*
  (pre-existing stateful instance) collapse to attribute access here, which
  is the point: zero marshalling, zero copies.
"""

from __future__ import annotations

import importlib
import time
from typing import Any

from repro.encoding.registry import MessageCodec
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.transport.base import ClientTransport, TransportMessage
from repro.util.errors import BindingError, EncodingError, SoapFaultError

__all__ = ["ServiceStub", "TransportStub", "LocalStub", "load_type"]


def load_type(type_name: str) -> type:
    """Import ``pkg.module:Class`` or ``pkg.module.Class`` and return the class.

    The analogue of the Java binding's "automatic retrieval of the class
    code and its instantiation" — Python's import machinery is our
    classloader.
    """
    module_name, sep, attr = type_name.partition(":")
    if not sep:
        module_name, _, attr = type_name.rpartition(".")
    if not module_name or not attr:
        raise BindingError(f"malformed type name: {type_name!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise BindingError(f"cannot import {module_name!r}: {exc}") from exc
    try:
        obj = getattr(module, attr)
    except AttributeError as exc:
        raise BindingError(f"{module_name!r} has no attribute {attr!r}") from exc
    if not isinstance(obj, type):
        raise BindingError(f"{type_name!r} is not a class")
    return obj


def _finish_client_span(obs, span_name, ctx, status, t0, t1, t2, t3, end):
    """Client span + metric bookkeeping, run on the obs finisher thread
    (args as a tuple: no per-call closure).  The call's context is
    re-activated around the phase observes — the finisher thread carries
    no contextvar, and histogram exemplar capture tags outliers with the
    *current* trace id."""
    calls, faults, phases, _names = obs
    encode_us = ((t1 or end) - t0) * 1e6
    transit_us = ((t2 or end) - (t1 or end)) * 1e6
    decode_us = ((t3 or end) - (t2 or end)) * 1e6
    calls.inc()
    if status != "ok":
        faults.inc()
    token = _trace.activate(ctx)
    try:
        phases.observe(encode_us, transit_us, decode_us, (end - t0) * 1e6)
    finally:
        _trace.deactivate(token)
    _trace.recorder.record(
        _trace.Span(
            span_name, ctx.trace_id, ctx.span_id, ctx.parent_id, status,
            {"encode": encode_us, "transit": transit_us, "decode": decode_us},
        )
    )


class ServiceStub:
    """Base stub: operation names become bound methods.

    ``operations`` comes from the WSDL portType, so calling anything the
    service did not declare raises :class:`BindingError` *client-side*,
    before any bytes move.
    """

    #: short protocol tag for diagnostics ("soap", "xdr", "local", ...)
    protocol: str = "abstract"

    def __init__(self, operations: tuple[str, ...], target: str):
        self._operations = tuple(operations)
        self._target = target

    @property
    def operations(self) -> tuple[str, ...]:
        return self._operations

    @property
    def target(self) -> str:
        return self._target

    def _invoke(self, operation: str, args: tuple) -> Any:
        raise NotImplementedError

    def invoke(self, operation: str, *args: Any) -> Any:
        """Explicit invocation entry point (used by generic clients)."""
        if operation not in self._operations:
            raise BindingError(
                f"operation {operation!r} not in portType "
                f"(available: {', '.join(self._operations)})"
            )
        return self._invoke(operation, args)

    def __getattr__(self, name: str) -> Any:
        # Only consulted when normal attribute lookup fails.
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._operations:
            def call(*args: Any) -> Any:
                return self._invoke(name, args)

            call.__name__ = name
            call.__qualname__ = f"{type(self).__name__}.{name}"
            return call
        raise AttributeError(
            f"stub for {self._target!r} has no operation {name!r}"
        )

    def close(self) -> None:
        """Release any underlying connection (no-op by default)."""

    def __enter__(self) -> "ServiceStub":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class TransportStub(ServiceStub):
    """Stub invoking through a codec + transport pair.

    When an :class:`~repro.bindings.policy.InvocationPolicy` is attached the
    call is executed under it: bounded retries at idempotent-safe failure
    points, backoff, an overall deadline, and a per-target circuit breaker.
    The request bytes are encoded once, so every retry resends the identical
    message.  Without a policy the invocation path is unchanged.
    """

    def __init__(
        self,
        operations: tuple[str, ...],
        target: str,
        codec: MessageCodec,
        transport: ClientTransport,
        protocol: str,
        timeout: float | None = 30.0,
        policy=None,
        events=None,
        breaker=None,
        clock=None,
        rng=None,
    ):
        super().__init__(operations, target)
        self._codec = codec
        self._transport = transport
        self.protocol = protocol
        self._timeout = timeout
        # per-operation marshalling plans: (content type, args -> payload),
        # built lazily on first call (benign race: plans are equivalent)
        self._plans: dict[str, tuple[str, Any]] = {}
        # observability instruments, resolved on the first *traced* call so
        # untraced stubs never touch the registry
        self._obs = None
        if policy is None:
            self._executor = None
        else:
            from repro.bindings.policy import PolicyExecutor

            self._executor = PolicyExecutor(
                policy, target, breaker=breaker, events=events, clock=clock, rng=rng
            )

    def _plan(self, operation: str) -> tuple[str, Any]:
        """The cached marshalling plan for *operation*.

        Codecs offering ``call_encoder`` (e.g. XDR) get their per-operation
        constants — the encoded (target, operation) header — computed once
        per (stub, operation) instead of per call; others fall back to the
        generic ``encode_call`` path.
        """
        plan = self._plans.get(operation)
        if plan is None:
            make = getattr(self._codec, "call_encoder", None)
            if make is not None:
                encoder = make(self._target, operation)
            else:
                codec, target = self._codec, self._target

                def encoder(args: tuple, _op: str = operation):
                    return codec.encode_call(target, _op, args)

            plan = (self._codec.content_type, encoder)
            self._plans[operation] = plan
        return plan

    def _invoke(self, operation: str, args: tuple) -> Any:
        if _trace.ENABLED:
            return self._invoke_traced(operation, args)
        content_type, encode = self._plan(operation)
        request = TransportMessage(content_type, encode(args))
        if self._executor is None:
            response = self._transport.request(request, timeout=self._timeout)
        else:
            response = self._executor.call(
                self._transport.request,
                request,
                operation,
                base_timeout=self._timeout,
            )
        try:
            return self._codec.decode_reply(response.payload)
        except (SoapFaultError, EncodingError):
            # remote faults surface as-is (SOAP <Fault>, XDR fault reply)
            raise
        except Exception as exc:
            raise BindingError(f"cannot decode reply for {operation!r}: {exc}") from exc

    def _instruments(self):
        obs = self._obs
        if obs is None:
            base = f"stub.{self.protocol}"
            obs = self._obs = (
                _metrics.registry.counter(f"{base}.calls"),
                _metrics.registry.counter(f"{base}.faults"),
                # one grouped update per call instead of four separate
                # histogram observes on the post-reply (cache-cold) path
                _metrics.registry.histogram_group(
                    (
                        f"{base}.encode_us",
                        f"{base}.transit_us",
                        f"{base}.decode_us",
                        f"{base}.total_us",
                    )
                ),
                {},  # per-operation client span names
            )
        return obs

    def _invoke_traced(self, operation: str, args: tuple) -> Any:
        """The instrumented twin of ``_invoke``: a client span with
        encode/transit/decode timing, each phase observed into its
        histogram exactly once per call (so counts equal call counts)."""
        names = self._instruments()[3]
        span_name = names.get(operation)
        if span_name is None:
            span_name = names[operation] = f"client:{self.protocol}:{operation}"
        parent = _trace.current()
        ctx = parent.child() if parent is not None else _trace.new_trace()
        token = _trace.activate(ctx)  # before encode: SOAP splice reads it
        status = "error"
        t1 = t2 = t3 = None
        perf = time.perf_counter
        t0 = perf()
        try:
            content_type, encode = self._plan(operation)
            request = TransportMessage(content_type, encode(args))
            t1 = perf()
            if self._executor is None:
                response = self._transport.request(request, timeout=self._timeout)
            else:
                response = self._executor.call(
                    self._transport.request,
                    request,
                    operation,
                    base_timeout=self._timeout,
                )
            t2 = perf()
            try:
                result = self._codec.decode_reply(response.payload)
            except (SoapFaultError, EncodingError):
                status = "fault"
                raise
            except Exception as exc:
                raise BindingError(
                    f"cannot decode reply for {operation!r}: {exc}"
                ) from exc
            t3 = perf()
            status = "ok"
            return result
        finally:
            _trace.deactivate(token)
            end = t3 if t3 is not None else perf()
            # this runs at the coldest instant of the call — right after
            # the transit wait — so even the timing arithmetic moves to
            # the finisher thread; the hot path pays one append
            _trace.finisher.submit(
                _finish_client_span,
                (self._obs, span_name, ctx, status, t0, t1, t2, t3, end),
            )

    def close(self) -> None:
        self._transport.close()


class LocalStub(ServiceStub):
    """Stub calling a co-located Python object directly.

    ``protocol`` distinguishes the paper's two local schemes:
    ``"local"`` wraps a freshly instantiated object of the bound type;
    ``"local-instance"`` wraps a specific pre-existing, stateful instance
    obtained from the component container.
    """

    def __init__(self, operations: tuple[str, ...], target: str, obj: object, protocol: str):
        super().__init__(operations, target)
        self._obj = obj
        self.protocol = protocol

    def _invoke(self, operation: str, args: tuple) -> Any:
        method = getattr(self._obj, operation, None)
        if method is None or not callable(method):
            raise BindingError(
                f"local object {type(self._obj).__name__} has no operation {operation!r}"
            )
        return method(*args)

    @property
    def wrapped_object(self) -> object:
        """The underlying instance (tests assert identity for statefulness)."""
        return self._obj
