"""Extensibility elements: XML round trips and parsing of foreign elements."""

import pytest

from repro.util.errors import WsdlError
from repro.wsdl.extensions import (
    HttpAddressExt,
    LocalAddressExt,
    LocalBindingExt,
    LocalInstanceBindingExt,
    ServiceTargetExt,
    SoapAddressExt,
    SoapBindingExt,
    SoapOperationExt,
    XdrAddressExt,
    XdrBindingExt,
    extension_from_element,
)
from repro.xmlkit import NS_HARNESS, QName, XmlElement, parse, to_string

ALL_EXTENSIONS = [
    SoapBindingExt(),
    SoapBindingExt(style="document", transport="urn:custom"),
    SoapOperationExt("urn:x#op"),
    SoapAddressExt("http://h:1/"),
    HttpAddressExt("http://h:2/raw"),
    LocalBindingExt("pkg.mod:Cls"),
    LocalInstanceBindingExt("pkg.mod:Cls", "Cls#c-7"),
    XdrBindingExt(("float64",)),
    XdrBindingExt(),
    XdrAddressExt("10.0.0.1", 9000, "target#1"),
    XdrAddressExt("10.0.0.1", 9000),
    LocalAddressExt("container://h/c", "t#1"),
    LocalAddressExt("container://h/c"),
    ServiceTargetExt("MatMul#c-3"),
]


class TestRoundTrips:
    @pytest.mark.parametrize("ext", ALL_EXTENSIONS, ids=lambda e: type(e).__name__)
    def test_element_round_trip(self, ext):
        element = ext.to_element()
        assert extension_from_element(element) == ext

    @pytest.mark.parametrize("ext", ALL_EXTENSIONS, ids=lambda e: type(e).__name__)
    def test_full_xml_round_trip(self, ext):
        reparsed = parse(to_string(ext.to_element()))
        assert extension_from_element(reparsed) == ext


class TestParsing:
    def test_foreign_extension_returns_none(self):
        foreign = XmlElement(QName("urn:alien", "binding"))
        assert extension_from_element(foreign) is None

    def test_xdr_address_requires_integer_port(self):
        element = XmlElement(QName(NS_HARNESS, "xdrAddress"), {"host": "h", "port": "abc"})
        with pytest.raises(WsdlError):
            extension_from_element(element)

    def test_missing_required_attribute(self):
        from repro.util.errors import XmlError

        element = XmlElement(QName(NS_HARNESS, "localBinding"))
        with pytest.raises(XmlError):
            extension_from_element(element)

    def test_xdr_binding_defaults(self):
        element = XmlElement(QName(NS_HARNESS, "xdrBinding"))
        ext = extension_from_element(element)
        assert ext.array_dtypes == ("float64", "int64")

    def test_soap_binding_defaults(self):
        from repro.xmlkit import NS_SOAP

        ext = extension_from_element(XmlElement(QName(NS_SOAP, "binding")))
        assert ext.style == "rpc"
        assert "soap/http" in ext.transport
