"""Serializer/parser round trips, namespace prefixes, canonicalization."""

import pytest

from repro.util.errors import XmlError
from repro.xmlkit import (
    NS_SOAP,
    NS_WSDL,
    QName,
    XmlElement,
    canonicalize,
    parse,
    to_string,
)


def _sample():
    root = XmlElement(QName(NS_WSDL, "definitions"), {"name": "S"})
    binding = root.element(QName(NS_WSDL, "binding"), {"name": "B"})
    binding.element(QName(NS_SOAP, "binding"), {"style": "rpc"})
    root.element(QName(NS_WSDL, "service"), {"name": "svc"}, text="")
    return root


class TestToString:
    def test_declares_known_prefixes_on_root(self):
        text = to_string(_sample())
        assert 'xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"' in text
        assert 'xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"' in text
        assert "<wsdl:definitions" in text
        assert "<soap:binding" in text

    def test_xml_declaration_toggle(self):
        assert to_string(_sample()).startswith("<?xml")
        assert not to_string(_sample(), xml_declaration=False).startswith("<?xml")

    def test_escapes_attribute_and_text(self):
        el = XmlElement("r", {"a": 'x"<>&'}, text="<&>")
        text = to_string(el)
        reparsed = parse(text)
        assert reparsed.get("a") == 'x"<>&'
        assert reparsed.text == "<&>"

    def test_unknown_namespace_gets_auto_prefix(self):
        el = XmlElement(QName("urn:custom", "thing"))
        text = to_string(el)
        assert 'xmlns:ns0="urn:custom"' in text
        assert "<ns0:thing" in text

    def test_self_closing_empty_element(self):
        assert "<r/>" in to_string(XmlElement("r"), xml_declaration=False)


class TestParse:
    def test_round_trip_structure(self):
        original = _sample()
        reparsed = parse(to_string(original))
        assert reparsed.structurally_equal(original)

    def test_round_trip_indented_and_compact_agree(self):
        original = _sample()
        a = parse(to_string(original, indent=True))
        b = parse(to_string(original, indent=False))
        assert canonicalize(a) == canonicalize(b)

    def test_malformed_raises_xml_error(self):
        with pytest.raises(XmlError):
            parse("<a><b></a>")

    def test_parse_bytes(self):
        root = parse(b"<a x='1'/>")
        assert root.get("x") == "1"

    def test_namespaces_preserved(self):
        reparsed = parse(to_string(_sample()))
        assert reparsed.name == QName(NS_WSDL, "definitions")
        assert reparsed.find(QName(NS_WSDL, "binding")) is not None


class TestCanonicalize:
    def test_attribute_order_irrelevant(self):
        a = XmlElement("r", {"x": "1", "y": "2"})
        b = XmlElement("r", {"y": "2", "x": "1"})
        assert canonicalize(a) == canonicalize(b)

    def test_child_order_significant(self):
        a = XmlElement("r", children=[XmlElement("a"), XmlElement("b")])
        b = XmlElement("r", children=[XmlElement("b"), XmlElement("a")])
        assert canonicalize(a) != canonicalize(b)

    def test_text_significant(self):
        assert canonicalize(XmlElement("r", text="x")) != canonicalize(XmlElement("r"))
