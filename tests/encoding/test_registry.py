"""Codec registry: registration, lookup, negotiation failures."""

import pytest

from repro.encoding.registry import CodecRegistry, XdrMessageCodec, default_registry
from repro.util.errors import EncodingError


class TestCodecRegistry:
    def test_register_and_get(self):
        registry = CodecRegistry()
        codec = XdrMessageCodec()
        registry.register(codec)
        assert registry.get("application/x-xdr") is codec

    def test_duplicate_rejected_unless_replace(self):
        registry = CodecRegistry()
        registry.register(XdrMessageCodec())
        with pytest.raises(EncodingError):
            registry.register(XdrMessageCodec())
        registry.register(XdrMessageCodec(), replace=True)

    def test_unknown_content_type(self):
        with pytest.raises(EncodingError, match="no codec"):
            CodecRegistry().get("application/x-mystery")

    def test_content_types_sorted(self):
        registry = CodecRegistry()
        registry.register(XdrMessageCodec())
        assert registry.content_types() == ["application/x-xdr"]


class TestDefaultRegistry:
    def test_xdr_preregistered(self):
        assert "application/x-xdr" in default_registry.content_types()

    def test_soap_registered_on_import(self):
        import repro.soap  # noqa: F401  (side effect: registers codecs)

        types = default_registry.content_types()
        assert "text/xml" in types
        assert "text/xml; arrays=items" in types

    def test_xdr_codec_round_trip_through_registry(self):
        import numpy as np

        codec = default_registry.get("application/x-xdr")
        data = codec.encode_call("t", "op", (np.arange(3.0),))
        target, op, args = codec.decode_call(data)
        assert target == "t" and op == "op"
        assert np.array_equal(args[0], np.arange(3.0))
