"""HarnessDvm assembly and component migration (the §6 scenario mechanics)."""

import numpy as np
import pytest

from repro.core.builder import COHERENCY_SCHEMES, HarnessDvm
from repro.core.migration import (
    deserialize_component,
    move_component,
    serialize_component,
)
from repro.netsim import lan, two_clusters
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import DvmError, MigrationError


class TestHarnessDvm:
    def test_unknown_coherency_rejected(self):
        with pytest.raises(DvmError):
            HarnessDvm("x", lan(1), coherency="psychic")

    def test_all_scheme_names_buildable(self):
        for scheme in COHERENCY_SCHEMES:
            net = lan(2)
            with HarnessDvm(f"dvm-{scheme}", net, coherency=scheme) as h:
                h.add_nodes("node0", "node1")
                assert h.dvm.protocol.scheme == scheme

    def test_add_node_boots_kernel(self):
        with HarnessDvm("k1", lan(2)) as h:
            kernel = h.add_node("node0")
            assert kernel.host_name == "node0"
            assert h.kernel("node0") is kernel
            with pytest.raises(DvmError):
                h.kernel("node1")

    def test_duplicate_node_rejected(self):
        with HarnessDvm("k2", lan(2)) as h:
            h.add_node("node0")
            with pytest.raises(DvmError):
                h.add_node("node0")

    def test_replicated_plugins(self):
        with HarnessDvm("k3", lan(3)) as h:
            h.add_nodes("node0", "node1", "node2")
            for plugin in BASELINE_PLUGINS:
                loaded = h.load_plugin_everywhere(plugin)
                assert set(loaded) == {"node0", "node1", "node2"}
            status = h.status("node0")
            assert status["plugins"]["node1"] == ["hevent", "hmsg", "hproc", "htable"]

    def test_node_specific_plugin(self):
        from repro.plugins import PingPlugin

        with HarnessDvm("k4", lan(2)) as h:
            h.add_nodes("node0", "node1")
            h.load_plugin("node0", PingPlugin)
            assert h.kernel("node0").plugins() == ["ping"]
            assert h.kernel("node1").plugins() == []

    def test_deploy_and_stub(self, rng):
        with HarnessDvm("k5", lan(2)) as h:
            h.add_nodes("node0", "node1")
            h.deploy("node1", MatMul)
            stub = h.stub("node0", "MatMul")
            a = rng.random((4, 4))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()


class TestSerialization:
    def test_round_trip_preserves_state(self):
        counter = CounterService()
        counter.increment(9)
        revived = deserialize_component(serialize_component(counter))
        assert isinstance(revived, CounterService)
        assert revived.value() == 9

    def test_unserializable_component_rejected(self):
        import threading

        class Bad:
            def __init__(self):
                self.lock = threading.Lock()

        with pytest.raises(MigrationError):
            serialize_component(Bad())

    def test_corrupt_blob_rejected(self):
        with pytest.raises(MigrationError):
            deserialize_component(b"not a pickle")


class TestMigration:
    def test_move_preserves_state_and_namespace(self):
        net = two_clusters(2)
        with HarnessDvm("mig", net) as h:
            h.add_nodes("a0", "a1", "b0")
            h.deploy("a0", CounterService)
            h.stub("a0", "CounterService").increment(13)

            handle = h.move("CounterService", "b0")
            assert handle.container_uri.startswith("container://b0/")
            owner, _ = h.lookup("a1", "CounterService")
            assert owner == "b0"
            # state travelled with the component
            assert h.stub("b0", "CounterService").value() == 13

    def test_move_to_owner_rejected(self):
        with HarnessDvm("mig2", lan(2)) as h:
            h.add_nodes("node0", "node1")
            h.deploy("node0", CounterService)
            with pytest.raises(MigrationError):
                h.move("CounterService", "node0")

    def test_move_charges_fabric(self):
        net = lan(2)
        with HarnessDvm("mig3", net) as h:
            h.add_nodes("node0", "node1")
            h.deploy("node0", CounterService)
            before = net.total_bytes
            h.move("CounterService", "node1")
            assert net.total_bytes > before

    def test_move_emits_event(self):
        net = lan(2)
        with HarnessDvm("mig4", net) as h:
            h.add_nodes("node0", "node1")
            h.deploy("node0", CounterService)
            moves = []
            h.events.subscribe("dvm.component.moved", lambda e: moves.append(e.payload))
            h.move("CounterService", "node1")
            assert moves and moves[0]["from"] == "node0" and moves[0]["to"] == "node1"

    def test_moved_component_still_remotely_callable(self, rng):
        net = lan(3)
        with HarnessDvm("mig5", net) as h:
            h.add_nodes("node0", "node1", "node2")
            h.deploy("node0", MatMul)
            h.move("MatMul", "node2")
            stub = h.stub("node1", "MatMul")
            a = rng.random((3, 3))
            assert np.allclose(stub.multiply(a, a), a @ a)
            stub.close()
