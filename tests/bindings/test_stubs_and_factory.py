"""Dynamic stubs, binding servers, and the selection policy (Figure 5)."""

import numpy as np
import pytest

from repro.bindings.context import LOCAL_DIRECTORY, ClientContext
from repro.bindings.dispatcher import ObjectDispatcher
from repro.bindings.factory import DEFAULT_PREFERENCE, DynamicStubFactory
from repro.bindings.server import BindingServer
from repro.bindings.stubs import LocalStub, load_type
from repro.plugins.services import CounterService, MatMul
from repro.tools.wsdlgen import generate_wsdl
from repro.util.errors import (
    BindingError,
    NoBindingAvailableError,
    SoapFaultError,
)
from repro.wsdl.extensions import (
    LocalAddressExt,
    ServiceTargetExt,
    SoapAddressExt,
    XdrAddressExt,
)
from repro.wsdl.model import WsdlPort, WsdlService


@pytest.fixture
def served_matmul():
    """A MatMul instance exposed over SOAP + XDR with a complete WSDL doc."""
    dispatcher = ObjectDispatcher()
    dispatcher.register("MatMul#1", MatMul())
    server = BindingServer(dispatcher)
    http = server.expose_soap_http()
    tcp = server.expose_xdr_tcp()
    doc = generate_wsdl(MatMul, bindings=("soap", "xdr", "local"))
    host, _, port_text = tcp.url.removeprefix("tcp://").rpartition(":")
    doc = doc.with_service(
        WsdlService(
            "MatMul",
            (
                WsdlPort("soapPort", "MatMulSoapBinding",
                         (SoapAddressExt(http.url), ServiceTargetExt("MatMul#1"))),
                WsdlPort("xdrPort", "MatMulXdrBinding",
                         (XdrAddressExt(host, int(port_text), "MatMul#1"),)),
                WsdlPort("localPort", "MatMulLocalBinding", ()),
            ),
        )
    )
    yield doc
    server.close()


class TestLoadType:
    def test_colon_form(self):
        assert load_type("repro.plugins.services:MatMul") is MatMul

    def test_dotted_form(self):
        assert load_type("repro.plugins.services.MatMul") is MatMul

    def test_missing_module(self):
        with pytest.raises(BindingError):
            load_type("no.such.module:X")

    def test_missing_attribute(self):
        with pytest.raises(BindingError):
            load_type("repro.plugins.services:Nothing")

    def test_not_a_class(self):
        with pytest.raises(BindingError):
            load_type("repro.plugins.services:__name__")

    def test_malformed(self):
        with pytest.raises(BindingError):
            load_type("justaname")


class TestStubBehaviour:
    def test_operations_from_port_type(self, served_matmul):
        stub = DynamicStubFactory().create(served_matmul, port_name="soapPort")
        assert set(stub.operations) == {"getResult", "multiply"}
        stub.close()

    def test_undeclared_operation_rejected_client_side(self, served_matmul):
        stub = DynamicStubFactory().create(served_matmul, port_name="soapPort")
        with pytest.raises(AttributeError):
            stub.secretOp()
        with pytest.raises(BindingError):
            stub.invoke("secretOp")
        stub.close()

    def test_soap_call(self, served_matmul, rng):
        stub = DynamicStubFactory().create(served_matmul, port_name="soapPort")
        a = rng.random(16)
        b = rng.random(16)
        result = stub.getResult(a, b)
        assert np.allclose(result, (a.reshape(4, 4) @ b.reshape(4, 4)).ravel())
        assert stub.protocol == "soap"
        stub.close()

    def test_xdr_call(self, served_matmul, rng):
        stub = DynamicStubFactory().create(served_matmul, port_name="xdrPort")
        a = rng.random((8, 8))
        result = stub.multiply(a, a)
        assert np.allclose(result, a @ a)
        assert stub.protocol == "xdr"
        stub.close()

    def test_server_side_error_becomes_fault(self, served_matmul):
        stub = DynamicStubFactory().create(served_matmul, port_name="soapPort")
        with pytest.raises(SoapFaultError, match="square"):
            stub.getResult(np.arange(3.0), np.arange(3.0))
        stub.close()

    def test_xdr_error_becomes_encoding_fault(self, served_matmul):
        from repro.util.errors import EncodingError

        stub = DynamicStubFactory().create(served_matmul, port_name="xdrPort")
        with pytest.raises(EncodingError, match="square"):
            stub.getResult(np.arange(3.0), np.arange(3.0))
        stub.close()

    def test_context_manager(self, served_matmul):
        with DynamicStubFactory().create(served_matmul, port_name="soapPort") as stub:
            assert stub.protocol == "soap"

    def test_local_stub_statefulness(self):
        counter = CounterService()
        stub = LocalStub(("increment", "value"), "c#1", counter, "local-instance")
        stub.increment(5)
        assert counter.value() == 5
        assert stub.wrapped_object is counter


class TestSelectionPolicy:
    def test_default_preference_order(self):
        assert DEFAULT_PREFERENCE == ("local-instance", "local", "sim", "xdr", "mime", "soap")

    def test_auto_select_prefers_local(self, served_matmul):
        stub = DynamicStubFactory().create(served_matmul)
        assert stub.protocol == "local"

    def test_prefer_overrides(self, served_matmul):
        stub = DynamicStubFactory().create(served_matmul, prefer=("soap",))
        assert stub.protocol == "soap"
        stub.close()

    def test_usable_protocols_ranked(self, served_matmul):
        protocols = DynamicStubFactory().usable_protocols(served_matmul)
        assert protocols == ["local", "xdr", "soap"]

    def test_no_remote_context_restricts(self, served_matmul):
        factory = DynamicStubFactory(ClientContext(allow_remote=False))
        assert factory.usable_protocols(served_matmul) == ["local"]

    def test_no_binding_available(self, served_matmul):
        factory = DynamicStubFactory(ClientContext(allow_remote=False))
        with pytest.raises(NoBindingAvailableError):
            factory.create(served_matmul, prefer=("soap", "xdr"))

    def test_local_instance_requires_container(self):
        doc = generate_wsdl(CounterService, bindings=("local-instance",), instance_id="c#9")
        doc = doc.with_service(
            WsdlService(
                "CounterService",
                (WsdlPort("instPort", "CounterServiceInstanceBinding",
                          (LocalAddressExt("container://h/ghost", "c#9"),)),),
            )
        )
        with pytest.raises(NoBindingAvailableError):
            DynamicStubFactory().create(doc)

    def test_local_instance_resolves_through_directory(self):
        class FakeContainer:
            def __init__(self):
                self.counter = CounterService()

            def get_instance(self, instance_id):
                assert instance_id == "c#9"
                return self.counter

        fake = FakeContainer()
        LOCAL_DIRECTORY["container://h/fake"] = fake
        doc = generate_wsdl(CounterService, bindings=("local-instance",), instance_id="c#9")
        doc = doc.with_service(
            WsdlService(
                "CounterService",
                (WsdlPort("instPort", "CounterServiceInstanceBinding",
                          (LocalAddressExt("container://h/fake", "c#9"),)),),
            )
        )
        stub = DynamicStubFactory().create(doc)
        assert stub.protocol == "local-instance"
        stub.increment(3)
        assert fake.counter.value() == 3

    def test_host_pinning_blocks_foreign_virtual_host(self):
        class FakeContainer:
            def get_instance(self, instance_id):
                return CounterService()

        LOCAL_DIRECTORY["container://nodeA/c"] = FakeContainer()
        context_same = ClientContext(host="nodeA")
        context_other = ClientContext(host="nodeB")
        assert context_same.resolve_container("container://nodeA/c") is not None
        assert context_other.resolve_container("container://nodeA/c") is None

    def test_explicit_port_bypasses_policy(self, served_matmul):
        factory = DynamicStubFactory(ClientContext(allow_remote=False))
        # explicit port selection ignores usability ranking
        stub = factory.create(served_matmul, port_name="soapPort")
        assert stub.protocol == "soap"
        stub.close()

    def test_multi_service_requires_name(self, served_matmul):
        from dataclasses import replace

        doc2 = replace(
            served_matmul,
            services=served_matmul.services
            + (WsdlService("Other", served_matmul.services[0].ports),),
        )
        with pytest.raises(BindingError, match="specify service_name"):
            DynamicStubFactory().create(doc2)
        stub = DynamicStubFactory().create(doc2, service_name="MatMul")
        stub.close()


class TestBindingServerContentTypes:
    def test_items_array_mode_negotiated(self, served_matmul, rng):
        stub = DynamicStubFactory().create(
            served_matmul, port_name="soapPort", soap_array_mode="items"
        )
        a = rng.random(9)
        result = stub.getResult(a, a)
        assert np.allclose(result, (a.reshape(3, 3) @ a.reshape(3, 3)).ravel())
        stub.close()
