"""hmpi — MPI emulation over the plugin backplane (§3's MPI plugin)."""

import numpy as np
import pytest

from repro.core.builder import HarnessDvm
from repro.netsim import lan
from repro.plugins import BASELINE_PLUGINS
from repro.plugins.hmpi import MAX, MIN, PROD, SUM, MpiPlugin
from repro.util.errors import PluginError


# -- rank programs (importable for remote placement) -------------------------------

def rank_identity(mpi):
    return (mpi.rank, mpi.size)


def ring_pass(mpi):
    """Each rank sends its rank to the next; returns what it received."""
    mpi.send((mpi.rank + 1) % mpi.size, mpi.rank, tag=1)
    return mpi.recv(tag=1)


def pi_integration(mpi, intervals):
    """The classic MPI cpi.c: integrate 4/(1+x^2) over [0,1]."""
    h = 1.0 / intervals
    local = sum(
        4.0 / (1.0 + ((i + 0.5) * h) ** 2)
        for i in range(mpi.rank, intervals, mpi.size)
    ) * h
    return mpi.allreduce(local, op=SUM)


def collective_suite(mpi):
    out = {}
    out["bcast"] = mpi.bcast({"data": 42} if mpi.rank == 0 else None, root=0)
    out["scatter"] = mpi.scatter(
        [i * 10 for i in range(mpi.size)] if mpi.rank == 0 else None, root=0
    )
    out["gather"] = mpi.gather(mpi.rank + 1, root=0)
    out["allgather"] = mpi.allgather(mpi.rank * 2)
    out["reduce"] = mpi.reduce(mpi.rank + 1, op=SUM, root=0)
    out["allreduce_max"] = mpi.allreduce(mpi.rank, op=MAX)
    mpi.barrier()
    return out


def split_program(mpi):
    """Even/odd sub-communicators each allreduce their ranks."""
    sub = mpi.split(color=mpi.rank % 2)
    assert sub is not None
    return (mpi.rank, sub.rank, sub.size, sub.allreduce(mpi.rank, op=SUM))


def array_allreduce(mpi, n):
    data = np.full(n, float(mpi.rank + 1))
    return mpi.allreduce(data, op=SUM)


@pytest.fixture
def cluster():
    net = lan(3)
    with HarnessDvm("mpi-dvm", net) as harness:
        harness.add_nodes("node0", "node1", "node2")
        for plugin in BASELINE_PLUGINS:
            harness.load_plugin_everywhere(plugin)
        for host in harness.kernels:
            harness.load_plugin(host, MpiPlugin(root_host="node0"))
        yield harness, net


@pytest.fixture
def mpi(cluster):
    harness, _ = cluster
    return harness.kernel("node0").get_service("mpi")


class TestLaunch:
    def test_world_ranks(self, mpi):
        results = mpi.run(rank_identity, world_size=4)
        assert results == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_single_rank_world(self, mpi):
        assert mpi.run(rank_identity, world_size=1) == [(0, 1)]

    def test_rank_error_propagates(self, mpi):
        def boom(ctx):
            raise ValueError("rank failure")

        with pytest.raises(PluginError, match="rank failure"):
            mpi.run(boom, world_size=2)

    def test_bad_placement_length(self, mpi):
        with pytest.raises(PluginError):
            mpi.run(rank_identity, world_size=2, placement=["node0"])

    def test_remote_placement_requires_path(self, mpi):
        with pytest.raises(PluginError, match="import path"):
            mpi.run(rank_identity, world_size=2, placement=["node0", "node1"])

    def test_cross_host_world(self, mpi, cluster):
        _, net = cluster
        before = net.total_messages
        results = mpi.run(
            "tests.plugins.test_hmpi:ring_pass", world_size=3,
            placement=["node0", "node1", "node2"],
        )
        # ring: rank i receives from i-1
        assert results == [2, 0, 1]
        assert net.total_messages > before  # cross-kernel traffic happened


class TestPointToPoint:
    def test_ring(self, mpi):
        assert mpi.run(ring_pass, world_size=4) == [3, 0, 1, 2]

    def test_sendrecv_exchange(self, mpi):
        def exchange(ctx):
            partner = ctx.rank ^ 1
            return ctx.sendrecv(partner, f"from{ctx.rank}", source=partner)

        assert mpi.run(exchange, world_size=2) == ["from1", "from0"]

    def test_any_source(self, mpi):
        def program(ctx):
            if ctx.rank == 0:
                got = {ctx.recv(source=None, tag=7) for _ in range(ctx.size - 1)}
                return sorted(got)
            ctx.send(0, ctx.rank, tag=7)
            return None

        results = mpi.run(program, world_size=3)
        assert results[0] == [1, 2]

    def test_out_of_range_rank(self, mpi):
        def program(ctx):
            ctx.send(99, "x")

        with pytest.raises(PluginError, match="out of range"):
            mpi.run(program, world_size=2)


class TestCollectives:
    def test_suite_all_ranks_agree(self, mpi):
        size = 4
        results = mpi.run(collective_suite, world_size=size)
        for rank, out in enumerate(results):
            assert out["bcast"] == {"data": 42}
            assert out["scatter"] == rank * 10
            assert out["allgather"] == [0, 2, 4, 6]
            assert out["allreduce_max"] == size - 1
        assert results[0]["gather"] == [1, 2, 3, 4]
        assert results[0]["reduce"] == 10
        for rank in range(1, size):
            assert results[rank]["gather"] is None
            assert results[rank]["reduce"] is None

    def test_pi_integration(self, mpi):
        results = mpi.run(pi_integration, world_size=4, args=(1000,))
        for value in results:
            assert value == pytest.approx(np.pi, abs=1e-5)
        assert len(set(results)) == 1  # allreduce gave identical answers

    def test_array_allreduce(self, mpi):
        results = mpi.run(array_allreduce, world_size=3, args=(16,))
        expected = np.full(16, 1.0 + 2.0 + 3.0)
        for out in results:
            assert np.array_equal(out, expected)

    def test_reduce_operators(self, mpi):
        def program(ctx):
            return (
                ctx.allreduce(ctx.rank + 1, op=SUM),
                ctx.allreduce(ctx.rank + 1, op=PROD),
                ctx.allreduce(ctx.rank + 1, op=MIN),
                ctx.allreduce(ctx.rank + 1, op=MAX),
            )

        for out in mpi.run(program, world_size=3):
            assert out == (6, 6, 1, 3)

    def test_alltoall(self, mpi):
        def program(ctx):
            chunks = [f"{ctx.rank}->{dst}" for dst in range(ctx.size)]
            return ctx.alltoall(chunks)

        results = mpi.run(program, world_size=3)
        for dst, row in enumerate(results):
            assert row == [f"{src}->{dst}" for src in range(3)]

    @pytest.mark.slow  # rank 1 rides out the collective timeout (~30 s)
    def test_scatter_wrong_chunk_count(self, mpi):
        def program(ctx):
            if ctx.rank == 0:
                ctx.scatter([1], root=0)
            else:
                ctx.scatter(None, root=0)

        with pytest.raises(PluginError):
            mpi.run(program, world_size=2)


class TestCommSplit:
    def test_even_odd_split(self, mpi):
        results = mpi.run(split_program, world_size=4)
        by_world_rank = {r[0]: r for r in results}
        # evens: world ranks 0,2 → sub ranks 0,1; sum of world ranks 2
        assert by_world_rank[0][1:] == (0, 2, 2)
        assert by_world_rank[2][1:] == (1, 2, 2)
        # odds: world ranks 1,3 → sum 4
        assert by_world_rank[1][1:] == (0, 2, 4)
        assert by_world_rank[3][1:] == (1, 2, 4)

    def test_opt_out_color(self, mpi):
        def program(ctx):
            sub = ctx.split(color=-1 if ctx.rank == 0 else 0)
            if sub is None:
                return "opted-out"
            return sub.allreduce(1, op=SUM)

        results = mpi.run(program, world_size=3)
        assert results[0] == "opted-out"
        assert results[1] == results[2] == 2


def nonblocking_exchange(mpi):
    """mpi4py-tutorial style isend/irecv exchange between two ranks."""
    partner = mpi.rank ^ 1
    send_req = mpi.isend(partner, {"from": mpi.rank}, tag=11)
    recv_req = mpi.irecv(source=partner, tag=11)
    send_req.wait()
    return recv_req.wait()


class TestNonblocking:
    def test_isend_irecv_exchange(self, mpi):
        results = mpi.run(nonblocking_exchange, world_size=2)
        assert results == [{"from": 1}, {"from": 0}]

    def test_isend_completes_immediately(self, mpi):
        def program(ctx):
            if ctx.rank == 0:
                req = ctx.isend(1, "x", tag=1)
                return req.completed
            ctx.recv(tag=1)
            return True

        assert mpi.run(program, world_size=2) == [True, True]

    def test_irecv_test_polls(self, mpi):
        def program(ctx):
            if ctx.rank == 1:
                req = ctx.irecv(source=0, tag=2)
                done, _ = req.test()
                first_poll = done  # may be False before the send lands
                ctx.barrier()      # rank 0 sends before the barrier
                import time
                value = None
                for _ in range(200):
                    done, value = req.test()
                    if done:
                        break
                    time.sleep(0.005)
                return (first_poll, done, value)
            ctx.send(1, "payload", tag=2)
            ctx.barrier()
            return None

        results = mpi.run(program, world_size=2)
        first_poll, done, value = results[1]
        assert done is True and value == "payload"

    def test_irecv_test_skips_wrong_source(self, mpi):
        def program(ctx):
            if ctx.rank == 0:
                # both peers send on the same tag; request pinned to source 2
                req = ctx.irecv(source=2, tag=5)
                value = req.wait(timeout=10)
                other = ctx.recv(source=1, tag=5, timeout=10)
                return (value, other)
            ctx.send(0, f"from{ctx.rank}", tag=5)
            return None

        results = mpi.run(program, world_size=3)
        assert results[0] == ("from2", "from1")
