"""Declarative chaos harness for the HARNESS II framework.

A *scenario* is one JSON manifest declaring a complete robustness
experiment: the simulated topology, the services deployed on it, a
workload mix, a timed fault script (kills, partitions, lossy links, slow
consumers, blackholes), and pass criteria expressed as named invariant
checkers.  The runner plays the script tick by tick on a virtual clock,
records every event crossing the DVM bus into a deterministic
``events.jsonl`` audit trail, and evaluates the checks — same manifest,
same seed, byte-identical trail.

Layout:

* :mod:`~repro.scenario.manifest` — the schema and strict parser;
* :mod:`~repro.scenario.faults` — the fault-action vocabulary;
* :mod:`~repro.scenario.checks` — the invariant-checker vocabulary;
* :mod:`~repro.scenario.workload` — the seeded traffic driver;
* :mod:`~repro.scenario.events` — the scrubbed, hashable audit trail;
* :mod:`~repro.scenario.runner` — the tick loop and artifacts;
* :mod:`~repro.scenario.library` — the bundled manifests and soak driver.

See DESIGN.md §11 for the architecture and EXPERIMENTS.md for the SCN
table mapping bundled scenarios to the paper's robustness claims.
"""

from repro.scenario.checks import CheckContext, CheckResult, known_checks, run_checks
from repro.scenario.events import EventLog, scrub
from repro.scenario.faults import FAULT_HANDLERS, apply_fault, fault_handler
from repro.scenario.library import (
    MANIFEST_DIR,
    load_scenario,
    manifest_path,
    run_all,
    scenario_names,
    verify_reproducible,
)
from repro.scenario.manifest import (
    CheckSpec,
    DvmSpec,
    FaultAction,
    OpSpec,
    ScenarioManifest,
    SelfHealingSpec,
    ServiceSpec,
    TopologySpec,
    WorkloadSpec,
    load_manifest,
    parse_manifest,
)
from repro.scenario.runner import ScenarioResult, ScenarioRuntime, run_scenario
from repro.scenario.workload import CallRecord, WorkloadDriver, WorkloadStats

__all__ = [
    "ScenarioManifest",
    "TopologySpec",
    "DvmSpec",
    "ServiceSpec",
    "SelfHealingSpec",
    "OpSpec",
    "WorkloadSpec",
    "FaultAction",
    "CheckSpec",
    "parse_manifest",
    "load_manifest",
    "CheckContext",
    "CheckResult",
    "known_checks",
    "run_checks",
    "EventLog",
    "scrub",
    "FAULT_HANDLERS",
    "apply_fault",
    "fault_handler",
    "CallRecord",
    "WorkloadStats",
    "WorkloadDriver",
    "ScenarioRuntime",
    "ScenarioResult",
    "run_scenario",
    "MANIFEST_DIR",
    "scenario_names",
    "manifest_path",
    "load_scenario",
    "verify_reproducible",
    "run_all",
]
