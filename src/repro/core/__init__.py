"""The Harness II core: kernel, plugin model, DVM assembly, migration."""

from repro.core.builder import COHERENCY_SCHEMES, HarnessDvm
from repro.core.kernel import HarnessKernel
from repro.core.loader import (
    PluginRepository,
    load_class_from_source,
    load_source_module,
)
from repro.core.migration import (
    deserialize_component,
    move_component,
    serialize_component,
)
from repro.core.plugin import Plugin, PluginState

__all__ = [
    "COHERENCY_SCHEMES",
    "HarnessDvm",
    "HarnessKernel",
    "PluginRepository",
    "load_class_from_source",
    "load_source_module",
    "deserialize_component",
    "move_component",
    "serialize_component",
    "Plugin",
    "PluginState",
]
