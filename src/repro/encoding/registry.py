"""Content-type keyed codec registry.

Bindings negotiate a wire encoding by content type.  The registry maps a
content-type string to a :class:`MessageCodec` that can turn an RPC call or
reply into bytes and back.  Two codecs ship by default:

* ``application/x-xdr`` — the Harness II XDR binding's encoding (fast path).
* ``text/xml`` — SOAP 1.1 envelopes (registered by :mod:`repro.soap` on
  import, to keep the dependency direction encoding → soap-free).

Third-party bindings may register additional codecs; the test-suite
registers a deliberately lossy one to exercise negotiation failures.
"""

from __future__ import annotations

import threading
from typing import Any, Protocol

from repro.encoding import xdr
from repro.util.errors import EncodingError

__all__ = ["MessageCodec", "CodecRegistry", "default_registry", "XdrMessageCodec"]


class MessageCodec(Protocol):
    """Encode/decode RPC calls and replies for one content type.

    Payload arguments and return values are bytes-like: the zero-copy wire
    path hands decoders ``memoryview`` slices of receive buffers, and
    encoders may return views over internal buffers.

    A codec may additionally offer ``call_encoder(target, operation)``
    returning an ``args -> payload`` callable — a cached *marshalling plan*
    that pre-computes everything constant per (target, operation).  Stubs
    probe for it with ``getattr`` and fall back to :meth:`encode_call`.
    """

    content_type: str

    def encode_call(self, target: str, operation: str, args: tuple | list) -> bytes: ...

    def decode_call(self, data: bytes) -> tuple[str, str, list]: ...

    def encode_reply(self, result: Any = None, fault: str | None = None) -> bytes: ...

    def decode_reply(self, data: bytes) -> Any: ...


class XdrMessageCodec:
    """The XDR message codec (see :mod:`repro.encoding.xdr`)."""

    content_type = "application/x-xdr"

    def encode_call(self, target: str, operation: str, args: tuple | list) -> bytes:
        return xdr.pack_call(target, operation, args)

    def call_encoder(self, target: str, operation: str):
        """A cached marshalling plan: the (target, operation) header is
        encoded once here, then only the arguments are packed per call."""
        prefix = xdr.make_call_prefix(target, operation)

        def encode(args: tuple | list, _prefix: bytes = prefix) -> memoryview:
            return xdr.pack_call_from_prefix(_prefix, args)

        return encode

    def decode_call(self, data: bytes) -> tuple[str, str, list]:
        return xdr.unpack_call(data)

    def encode_reply(self, result: Any = None, fault: str | None = None) -> bytes:
        return xdr.pack_reply(result, fault)

    def decode_reply(self, data: bytes) -> Any:
        return xdr.unpack_reply(data)


class CodecRegistry:
    """Thread-safe content-type → codec mapping."""

    def __init__(self) -> None:
        self._codecs: dict[str, MessageCodec] = {}
        self._lock = threading.Lock()

    def register(self, codec: MessageCodec, replace: bool = False) -> None:
        """Register *codec* under its ``content_type``."""
        with self._lock:
            if codec.content_type in self._codecs and not replace:
                raise EncodingError(f"codec already registered: {codec.content_type}")
            self._codecs[codec.content_type] = codec

    def get(self, content_type: str) -> MessageCodec:
        """Codec for *content_type*; raises :class:`EncodingError` if unknown."""
        with self._lock:
            codec = self._codecs.get(content_type)
        if codec is None:
            raise EncodingError(f"no codec for content type {content_type!r}")
        return codec

    def content_types(self) -> list[str]:
        with self._lock:
            return sorted(self._codecs)


#: Process-wide registry used by transports unless one is injected.
default_registry = CodecRegistry()
default_registry.register(XdrMessageCodec())
