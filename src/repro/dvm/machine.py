"""The Distributed Virtual Machine — Figure 6's distributed component container.

"It supplies a unified name space, status query, lookup service and
management point for a set of component containers.  In effect, that level
of abstraction introduces the notion of a distributed global state."

The DVM state (membership + the component directory) lives in a pluggable
:class:`~repro.dvm.state.DvmStateProtocol`; the DVM itself only defines the
API, exactly as Section 6 prescribes ("the Harness II framework defines
only the DVM API and does not mandate any particular solution to maintain
global state coherency").  Applications written against this class run
unchanged on any coherency scheme — experiment C7.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.bindings.context import ClientContext
from repro.bindings.factory import DynamicStubFactory
from repro.bindings.policy import InvocationPolicy
from repro.bindings.resilient import ResilientStub
from repro.bindings.stubs import ServiceStub
from repro.container.component import ComponentHandle
from repro.container.container import ComponentContainer, LightweightContainer
from repro.dvm.failure import (
    PING_ENDPOINT,
    PROBE_ENDPOINT,
    bind_ping_endpoint,
    bind_probe_endpoint,
)
from repro.dvm.state import DvmStateProtocol
from repro.netsim.fabric import VirtualNetwork
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.util.clock import Clock
from repro.util.errors import DvmError, MembershipError, ServiceNotFoundError
from repro.util.events import EventBus
from repro.util.ids import HarnessName
from repro.util.ttl_cache import TtlCache
from repro.wsdl.io import document_from_string, document_to_string
from repro.wsdl.model import WsdlDocument

__all__ = ["DvmNode", "DistributedVirtualMachine"]

_MEMBER_PREFIX = "member/"
_COMPONENT_PREFIX = "component/"

_LOOKUP_HITS = _metrics.registry.counter("dvm.lookup.hits")
_LOOKUP_MISSES = _metrics.registry.counter("dvm.lookup.misses")


@dataclass
class DvmNode:
    """One enrolled node: a virtual host plus its component container."""

    name: str
    container: ComponentContainer

    def close(self) -> None:
        self.container.close()


class DistributedVirtualMachine:
    """A named DVM assembling containers over a coherency protocol.

    Construction mirrors Figure 1: create the DVM, ``add_node`` for each
    machine, then ``deploy`` plugins/components on nodes.  The DVM name
    roots a :class:`~repro.util.HarnessName` namespace; component names are
    ``/<dvm>/<node>/<service>``.
    """

    def __init__(
        self,
        name: str,
        network: VirtualNetwork,
        protocol_factory: Callable[[VirtualNetwork], DvmStateProtocol],
        events: EventBus | None = None,
        lookup_cache_ttl_s: float = 2.0,
        clock: Clock | None = None,
    ):
        self.name = name
        self.network = network
        self.events = events or EventBus()
        self.clock = clock  # threaded through to stub policies (None = wall clock)
        self.protocol = protocol_factory(network)
        if self.protocol.members:
            raise DvmError("protocol_factory must return a protocol with no members")
        self.root = HarnessName.root() / name
        self._lock = threading.RLock()
        self._nodes: dict[str, DvmNode] = {}
        # Registry-lookup fast path: successful lookups (owner + parsed WSDL)
        # are cached for a short TTL so a hot stub does not re-fetch and
        # re-parse per call.  Any membership or component event flushes the
        # cache — the TTL only bounds staleness for changes that produce no
        # event.  ``lookup_cache_ttl_s=0`` disables caching entirely.  On a
        # virtual clock the cache ages in simulated time, keeping scenario
        # runs free of wall-clock nondeterminism.
        if clock is not None:
            self._lookup_cache = TtlCache(lookup_cache_ttl_s, clock=clock.now)
        else:
            self._lookup_cache = TtlCache(lookup_cache_ttl_s)
        self.events.subscribe("dvm.member", self._on_topology_event)
        self.events.subscribe("dvm.component", self._on_topology_event)
        # gossip-family protocols announce convergence transitions on the bus
        if hasattr(self.protocol, "bind_bus"):
            self.protocol.bind_bus(self.events, source=name)

    # -- membership -------------------------------------------------------------

    def add_node(self, host_name: str, container: ComponentContainer | None = None) -> DvmNode:
        """Enroll a host (it must exist in the network fabric)."""
        self.network.host(host_name)  # existence check
        with self._lock:
            if host_name in self._nodes:
                raise MembershipError(f"node {host_name!r} already in DVM {self.name!r}")
            if container is None:
                container = LightweightContainer(
                    name=f"{self.name}-{host_name}", host=host_name,
                    network=self.network,
                )
            node = DvmNode(host_name, container)
            self._nodes[host_name] = node
        bind_ping_endpoint(self.network, host_name)  # heartbeat target
        bind_probe_endpoint(self.network, host_name)  # SWIM ping-req proxy
        self.protocol.add_member(host_name)
        self.protocol.update(host_name, f"{_MEMBER_PREFIX}{host_name}", "joined")
        self.events.publish("dvm.member.joined", host_name, source=self.name)
        return node

    def remove_node(self, host_name: str) -> None:
        """Withdraw a node; its components leave the DVM namespace."""
        with self._lock:
            node = self._nodes.pop(host_name, None)
        if node is None:
            raise MembershipError(f"node {host_name!r} not in DVM {self.name!r}")
        for handle in node.container.components():
            self._forget_component(host_name, handle.name)
        self.protocol.update(host_name, f"{_MEMBER_PREFIX}{host_name}", "left")
        self.protocol.remove_member(host_name)
        node.close()
        self.events.publish("dvm.member.left", host_name, source=self.name)

    def evict_node(self, host_name: str, by: str) -> list[dict]:
        """Forcibly expel a *dead* node, acting as the surviving node *by*.

        Unlike :meth:`remove_node` — a cooperative withdrawal initiated by
        the leaving node itself — eviction is initiated by a witness: the
        dead node cannot originate state updates, so everything here is
        written with ``by`` as the origin, and the node leaves the coherency
        protocol *first* so synchronous schemes stop pushing to it.

        Returns the lost components' records (name, wsdl, restartable,
        bindings) — the failover manager's work list, also carried on the
        ``dvm.member.dead`` event.
        """
        with self._lock:
            node = self._nodes.pop(host_name, None)
        if node is None:
            raise MembershipError(f"node {host_name!r} not in DVM {self.name!r}")
        if by == host_name or by not in self.nodes():
            raise MembershipError(f"eviction witness {by!r} must be a surviving member")
        self.protocol.remove_member(host_name)
        lost = self._reap_node(host_name, node, by)
        self.events.publish(
            "dvm.member.dead",
            {"node": host_name, "by": by, "components": lost},
            source=self.name,
        )
        return lost

    def evict_nodes(self, host_names: list[str], by: str) -> list[dict]:
        """Evict a whole cohort of dead nodes as one membership change.

        Semantically ``evict_node`` for each name, but the bus sees a single
        coalesced ``dvm.member.dead`` event — payload ``{"nodes": [...],
        "by": ..., "components": [...], "count": N}`` with every lost
        component record carrying its own ``node`` — so a 1k-member outage
        is one publication, not 1k.  The failure detector switches to this
        path above its ``coalesce_after`` threshold.
        """
        names = list(dict.fromkeys(host_names))
        if not names:
            return []
        popped: list[tuple[str, DvmNode]] = []
        with self._lock:
            missing = [n for n in names if n not in self._nodes]
            if missing:
                raise MembershipError(
                    f"node(s) {missing!r} not in DVM {self.name!r}"
                )
            for name in names:
                popped.append((name, self._nodes.pop(name)))
        if by in names or by not in self.nodes():
            raise MembershipError(f"eviction witness {by!r} must be a surviving member")
        # leave the coherency protocol first, all of them, so synchronous
        # schemes stop pushing to any member of the dead cohort
        for name, _node in popped:
            self.protocol.remove_member(name)
        lost: list[dict] = []
        for name, node in popped:
            lost.extend(self._reap_node(name, node, by))
        self.events.publish(
            "dvm.member.dead",
            {"nodes": names, "by": by, "components": lost, "count": len(names)},
            source=self.name,
        )
        return lost

    def _reap_node(self, host_name: str, node: DvmNode, by: str) -> list[dict]:
        """Deregister a popped node's components and mark it dead; the
        caller has already removed it from the coherency protocol."""
        lost: list[dict] = []
        for handle in node.container.components():
            record = self.protocol.get(by, f"{_COMPONENT_PREFIX}{handle.name}")
            lost.append(
                record
                if record
                else {
                    "node": host_name,
                    "wsdl": document_to_string(handle.document, indent=False),
                    "restartable": bool(handle.metadata.get("restartable")),
                    "bindings": list(handle.metadata.get("bindings", ())),
                    "name": handle.name,
                }
            )
            lost[-1].setdefault("name", handle.name)
            lost[-1].setdefault("node", host_name)
            self.protocol.update(by, f"{_COMPONENT_PREFIX}{handle.name}", None)
            self.events.publish(
                "dvm.component.lost",
                {"service": handle.name, "node": host_name},
                source=self.name,
            )
        self.protocol.update(by, f"{_MEMBER_PREFIX}{host_name}", "dead")
        for endpoint in (PING_ENDPOINT, PROBE_ENDPOINT):
            try:
                self.network.host(host_name).unbind(endpoint)
            except Exception:
                pass
        node.close()
        return lost

    def node(self, host_name: str) -> DvmNode:
        with self._lock:
            node = self._nodes.get(host_name)
        if node is None:
            raise MembershipError(f"node {host_name!r} not in DVM {self.name!r}")
        return node

    def nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._nodes)

    def members_seen_by(self, node: str) -> list[str]:
        """Membership as observed from *node* through the state protocol."""
        snapshot = self.protocol.snapshot(node, prefix=_MEMBER_PREFIX)
        return sorted(
            key[len(_MEMBER_PREFIX):]
            for key, value in snapshot.items()
            if value == "joined"
        )

    # -- deployment / unified namespace ----------------------------------------------

    def deploy(
        self,
        host_name: str,
        component: type | object,
        name: str | None = None,
        bindings: tuple[str, ...] = ("local-instance", "sim"),
        restartable: bool = False,
        **kwargs,
    ) -> ComponentHandle:
        """Deploy a component on a node and publish it DVM-wide.

        The WSDL text travels through the state protocol, so its cost is
        charged according to the coherency scheme in force.

        ``restartable=True`` marks the deployment for automatic failover:
        the recovery layer checkpoints the instance and, should the hosting
        node die, revives it on a surviving node (see
        :mod:`repro.recovery`).  The flag travels in the component record so
        any node can drive the recovery.
        """
        node = self.node(host_name)
        handle = node.container.deploy(component, name=name, bindings=bindings, **kwargs)
        handle.metadata["restartable"] = restartable
        handle.metadata["bindings"] = tuple(bindings)
        wsdl_text = document_to_string(handle.document, indent=False)
        self.protocol.update(
            host_name,
            f"{_COMPONENT_PREFIX}{handle.name}",
            {
                "node": host_name,
                "wsdl": wsdl_text,
                "restartable": restartable,
                "bindings": list(bindings),
            },
        )
        self.events.publish("dvm.component.deployed", handle, source=self.name)
        return handle

    def publish(self, host_name: str, service_name: str) -> None:
        """Announce a component already deployed in a node's container.

        Supports the staged-publication flow of Section 6: deploy privately
        into the container, validate, then publish into the DVM namespace.
        """
        node = self.node(host_name)
        handle = node.container.component_named(service_name)
        wsdl_text = document_to_string(handle.document, indent=False)
        self.protocol.update(
            host_name,
            f"{_COMPONENT_PREFIX}{handle.name}",
            {
                "node": host_name,
                "wsdl": wsdl_text,
                "restartable": bool(handle.metadata.get("restartable")),
                "bindings": list(handle.metadata.get("bindings", ())),
            },
        )
        self.events.publish("dvm.component.deployed", handle, source=self.name)

    def undeploy(self, host_name: str, service_name: str) -> None:
        node = self.node(host_name)
        handle = node.container.component_named(service_name)
        node.container.undeploy(handle.instance_id)
        self._forget_component(host_name, service_name)

    def _forget_component(self, host_name: str, service_name: str) -> None:
        self.protocol.update(host_name, f"{_COMPONENT_PREFIX}{service_name}", None)
        # undeploy publishes no event, so the lookup cache is flushed here
        self._lookup_cache.invalidate()

    def _on_topology_event(self, event) -> None:
        self._lookup_cache.invalidate()

    def lookup(self, from_node: str, service_name: str) -> tuple[str, WsdlDocument]:
        """Locate a component anywhere in the DVM: (owning node, WSDL)."""
        key = (from_node, service_name)
        hit, cached = self._lookup_cache.get(key)
        if hit:
            _LOOKUP_HITS.inc()
            return cached
        _LOOKUP_MISSES.inc()
        record = self.protocol.get(from_node, f"{_COMPONENT_PREFIX}{service_name}")
        if not record:
            # misses are never cached: a component published a moment later
            # must become visible immediately (staged publication)
            raise ServiceNotFoundError(
                f"no component {service_name!r} visible from {from_node} in DVM {self.name!r}"
            )
        result = (record["node"], document_from_string(record["wsdl"]))
        self._lookup_cache.put(key, result)
        return result

    def stub(
        self,
        from_node: str,
        service_name: str,
        prefer: tuple[str, ...] | None = None,
        policy: InvocationPolicy | None = None,
        resilient: bool = False,
    ) -> ServiceStub:
        """A ready-to-call stub for a component, local bindings preferred.

        A caller on the owning node gets the local-instance path; remote
        callers fall back per the factory's preference order.

        ``policy`` attaches an invocation policy (retry/backoff/breaker) to
        network stubs.  ``resilient=True`` wraps the stub so that endpoint
        death triggers a fresh lookup through the DVM namespace — after a
        failover the same stub transparently reaches the component's new
        home.
        """
        if resilient:
            return ResilientStub(
                lambda: self.stub(from_node, service_name, prefer=prefer, policy=policy),
                clock=self.clock,
                events=self.events,
            )
        owner, document = self.lookup(from_node, service_name)
        container_uri = self.node(
            owner if owner == from_node else from_node
        ).container.uri
        context = ClientContext(
            container_uri=container_uri, host=from_node, network=self.network
        )
        factory = DynamicStubFactory(
            context, policy=policy, events=self.events, clock=self.clock
        )
        return factory.create(document, prefer=prefer)

    def component_index(self, from_node: str) -> dict[str, str]:
        """Unified namespace view: service name → owning node."""
        snapshot = self.protocol.snapshot(from_node, prefix=_COMPONENT_PREFIX)
        return {
            key[len(_COMPONENT_PREFIX):]: value["node"]
            for key, value in snapshot.items()
            if value
        }

    def qualified_name(self, host_name: str, service_name: str) -> HarnessName:
        """The component's name in the global Harness namespace."""
        return self.root / host_name / service_name

    # -- status query -------------------------------------------------------------------

    def status(self, from_node: str) -> dict:
        """The DVM status as observed from *from_node*."""
        return {
            "dvm": self.name,
            "scheme": self.protocol.scheme,
            "members": self.members_seen_by(from_node),
            "components": self.component_index(from_node),
        }

    def metrics_snapshot(self, prefix: str = "") -> dict:
        """The DVM's observability state: registry snapshot plus DVM-level
        cache/bus statistics.  Exposed over RPC by ``MetricsService`` (the
        XDR codec carries the nested dicts natively) and by the console's
        ``metrics`` command.
        """
        return {
            "dvm": self.name,
            "scheme": self.protocol.scheme,
            "nodes": self.nodes(),
            "tracing": _trace.ENABLED,
            "lookup_cache": {
                "hits": self._lookup_cache.hits,
                "misses": self._lookup_cache.misses,
            },
            "events": {
                "published": self.events.published,
                "delivered": self.events.delivered,
            },
            "metrics": _metrics.registry.snapshot(prefix),
        }

    def close(self) -> None:
        """Tear the whole DVM down."""
        with self._lock:
            nodes = list(self._nodes.values())
            self._nodes.clear()
        for node in nodes:
            node.close()

    def __enter__(self) -> "DistributedVirtualMachine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
