"""WSDL extensibility elements.

"WSDL is extensible and it is possible to define new bindings to suit the
needs of non-business applications" (Section 4).  Alongside the
W3C-standardized bindings (SOAP, HTTP address, MIME multipart), the Harness
extensions are:

* **local** (the paper's *Java binding*): direct, unmediated access to an
  object co-located in the same container — the runtime instantiates a
  fresh object of the declared type.
* **local-instance** (the paper's *JavaObject scheme*): like local, but the
  binding names "a specific, pre-existing instance" of a *stateful* object,
  resolved by asking the local component container.
* **xdr**: numeric data on direct socket-level connections, XDR-encoded.
* **sim**: the XDR binding carried over the simulated fabric, so calls are
  charged to the link model (used by DVM-scale experiments).

Each extension maps one-to-one onto an XML element in the Harness
namespace and knows how to (de)serialize itself, so WSDL documents carrying
them survive round trips through foreign registries (UDDI stores them as
opaque tModel content).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import WsdlError
from repro.xmlkit import NS_HARNESS, NS_MIME, NS_SOAP, QName, XmlElement

__all__ = [
    "ExtensibilityElement",
    "SoapBindingExt",
    "SoapOperationExt",
    "SoapAddressExt",
    "HttpAddressExt",
    "LocalBindingExt",
    "LocalInstanceBindingExt",
    "XdrBindingExt",
    "XdrAddressExt",
    "LocalAddressExt",
    "ServiceTargetExt",
    "SimBindingExt",
    "SimAddressExt",
    "MimeBindingExt",
    "extension_from_element",
    "register_extension",
]


class ExtensibilityElement:
    """Base class: every extension renders to exactly one XML element."""

    #: QName of the XML element this extension (de)serializes as.
    element_name: QName

    def to_element(self) -> XmlElement:
        raise NotImplementedError

    @classmethod
    def from_element(cls, element: XmlElement) -> "ExtensibilityElement":
        raise NotImplementedError


_EXTENSION_TYPES: dict[QName, type[ExtensibilityElement]] = {}


def register_extension(ext_type: type[ExtensibilityElement]) -> type[ExtensibilityElement]:
    """Class decorator registering an extension for parsing."""
    _EXTENSION_TYPES[ext_type.element_name] = ext_type
    return ext_type


def extension_from_element(element: XmlElement) -> ExtensibilityElement | None:
    """Parse a known extension element; ``None`` for foreign extensions."""
    ext_type = _EXTENSION_TYPES.get(element.name)
    if ext_type is None:
        return None
    return ext_type.from_element(element)


@register_extension
@dataclass(frozen=True)
class SoapBindingExt(ExtensibilityElement):
    """``<soap:binding>`` — style and transport for a SOAP binding."""

    transport: str = "http://schemas.xmlsoap.org/soap/http"
    style: str = "rpc"

    element_name = QName(NS_SOAP, "binding")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"transport": self.transport, "style": self.style})

    @classmethod
    def from_element(cls, element: XmlElement) -> "SoapBindingExt":
        return cls(
            transport=element.get("transport", cls.transport) or cls.transport,
            style=element.get("style", "rpc") or "rpc",
        )


@register_extension
@dataclass(frozen=True)
class SoapOperationExt(ExtensibilityElement):
    """``<soap:operation>`` — the SOAPAction header value."""

    soap_action: str = ""

    element_name = QName(NS_SOAP, "operation")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"soapAction": self.soap_action})

    @classmethod
    def from_element(cls, element: XmlElement) -> "SoapOperationExt":
        return cls(soap_action=element.get("soapAction", "") or "")


@register_extension
@dataclass(frozen=True)
class SoapAddressExt(ExtensibilityElement):
    """``<soap:address location="http://host:port/path"/>`` on a port."""

    location: str

    element_name = QName(NS_SOAP, "address")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"location": self.location})

    @classmethod
    def from_element(cls, element: XmlElement) -> "SoapAddressExt":
        return cls(location=element.require("location"))


@register_extension
@dataclass(frozen=True)
class HttpAddressExt(ExtensibilityElement):
    """``<harness:httpAddress>`` — plain HTTP (non-SOAP) endpoint."""

    location: str

    element_name = QName(NS_HARNESS, "httpAddress")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"location": self.location})

    @classmethod
    def from_element(cls, element: XmlElement) -> "HttpAddressExt":
        return cls(location=element.require("location"))


@register_extension
@dataclass(frozen=True)
class LocalBindingExt(ExtensibilityElement):
    """``<harness:localBinding>`` — the paper's *Java binding* analogue.

    ``type_name`` is the fully qualified Python class providing the service;
    the runtime "needs only to be capable of instantiating a new object of
    the selected type".
    """

    type_name: str

    element_name = QName(NS_HARNESS, "localBinding")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"type": self.type_name})

    @classmethod
    def from_element(cls, element: XmlElement) -> "LocalBindingExt":
        return cls(type_name=element.require("type"))


@register_extension
@dataclass(frozen=True)
class LocalInstanceBindingExt(ExtensibilityElement):
    """``<harness:localInstanceBinding>`` — the paper's *JavaObject scheme*.

    "In our scheme the binding not only defines the object type but also a
    specific instance … the run time [must] query the local component
    container to obtain a reference to an already instantiated, stateful
    object."
    """

    type_name: str
    instance_id: str

    element_name = QName(NS_HARNESS, "localInstanceBinding")

    def to_element(self) -> XmlElement:
        return XmlElement(
            self.element_name, {"type": self.type_name, "instance": self.instance_id}
        )

    @classmethod
    def from_element(cls, element: XmlElement) -> "LocalInstanceBindingExt":
        return cls(
            type_name=element.require("type"),
            instance_id=element.require("instance"),
        )


@register_extension
@dataclass(frozen=True)
class XdrBindingExt(ExtensibilityElement):
    """``<harness:xdrBinding>`` — numeric data on direct socket connections.

    The only complex data type is the array (Section 5); ``array_dtypes``
    advertises which element types the endpoint accepts.
    """

    array_dtypes: tuple[str, ...] = ("float64", "int64")

    element_name = QName(NS_HARNESS, "xdrBinding")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"arrayTypes": " ".join(self.array_dtypes)})

    @classmethod
    def from_element(cls, element: XmlElement) -> "XdrBindingExt":
        text = element.get("arrayTypes", "") or ""
        return cls(array_dtypes=tuple(text.split()) or ("float64", "int64"))


@register_extension
@dataclass(frozen=True)
class XdrAddressExt(ExtensibilityElement):
    """``<harness:xdrAddress>`` — host/port of a framed-TCP XDR endpoint."""

    host: str
    port: int
    target: str = ""

    element_name = QName(NS_HARNESS, "xdrAddress")

    def to_element(self) -> XmlElement:
        attrs = {"host": self.host, "port": str(self.port)}
        if self.target:
            attrs["target"] = self.target
        return XmlElement(self.element_name, attrs)

    @classmethod
    def from_element(cls, element: XmlElement) -> "XdrAddressExt":
        try:
            port = int(element.require("port"))
        except ValueError as exc:
            raise WsdlError(f"xdrAddress port must be an integer") from exc
        return cls(host=element.require("host"), port=port, target=element.get("target", "") or "")


@register_extension
@dataclass(frozen=True)
class MimeBindingExt(ExtensibilityElement):
    """``<mime:multipartRelated>`` — the W3C MIME binding.

    SOAP-with-Attachments over HTTP: an XML manifest plus raw binary
    parts, so arrays travel unencoded while the interface stays standard.
    """

    element_name = QName(NS_MIME, "multipartRelated")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name)

    @classmethod
    def from_element(cls, element: XmlElement) -> "MimeBindingExt":
        return cls()


@register_extension
@dataclass(frozen=True)
class SimBindingExt(ExtensibilityElement):
    """``<harness:simBinding>`` — XDR messages over the simulated fabric.

    Semantically the XDR binding, but the carrier is the virtual network,
    so calls are charged to the link model between caller and callee hosts.
    """

    array_dtypes: tuple[str, ...] = ("float64", "int64")

    element_name = QName(NS_HARNESS, "simBinding")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"arrayTypes": " ".join(self.array_dtypes)})

    @classmethod
    def from_element(cls, element: XmlElement) -> "SimBindingExt":
        text = element.get("arrayTypes", "") or ""
        return cls(array_dtypes=tuple(text.split()) or ("float64", "int64"))


@register_extension
@dataclass(frozen=True)
class SimAddressExt(ExtensibilityElement):
    """``<harness:simAddress>`` — an XDR endpoint on a *virtual* host.

    Used by deployments on the simulated fabric: the same XDR message codec,
    but carried by :class:`~repro.transport.sim.SimTransport` so the fabric's
    link model charges each call.
    """

    host: str
    endpoint: str
    target: str = ""

    element_name = QName(NS_HARNESS, "simAddress")

    def to_element(self) -> XmlElement:
        attrs = {"host": self.host, "endpoint": self.endpoint}
        if self.target:
            attrs["target"] = self.target
        return XmlElement(self.element_name, attrs)

    @classmethod
    def from_element(cls, element: XmlElement) -> "SimAddressExt":
        return cls(
            host=element.require("host"),
            endpoint=element.require("endpoint"),
            target=element.get("target", "") or "",
        )


@register_extension
@dataclass(frozen=True)
class ServiceTargetExt(ExtensibilityElement):
    """``<harness:target>`` — the dispatch key a port routes to.

    Harness II containers register every component *instance* in their
    dispatcher; this extension tells clients which key to put in call
    messages.  Ports without it default to the service name.
    """

    name: str

    element_name = QName(NS_HARNESS, "target")

    def to_element(self) -> XmlElement:
        return XmlElement(self.element_name, {"name": self.name})

    @classmethod
    def from_element(cls, element: XmlElement) -> "ServiceTargetExt":
        return cls(name=element.require("name"))


@register_extension
@dataclass(frozen=True)
class LocalAddressExt(ExtensibilityElement):
    """``<harness:localAddress>`` — container URI holding the local object."""

    container: str
    target: str = ""

    element_name = QName(NS_HARNESS, "localAddress")

    def to_element(self) -> XmlElement:
        attrs = {"container": self.container}
        if self.target:
            attrs["target"] = self.target
        return XmlElement(self.element_name, attrs)

    @classmethod
    def from_element(cls, element: XmlElement) -> "LocalAddressExt":
        return cls(
            container=element.require("container"), target=element.get("target", "") or ""
        )
