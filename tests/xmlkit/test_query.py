"""The XML query engine (the registry's generic query language)."""

import pytest

from repro.util.errors import XmlError
from repro.xmlkit import XmlQuery, parse, query, query_values

DOC = """
<definitions name="MatMul">
  <portType name="MatMulPortType">
    <operation name="getResult">
      <input message="tns:getResultRequest"/>
      <output message="tns:getResultResponse"/>
    </operation>
    <operation name="getName"/>
  </portType>
  <binding name="SoapBinding" type="tns:MatMulPortType"/>
  <binding name="XdrBinding" type="tns:MatMulPortType"/>
  <service name="MatMulService">
    <port name="soapPort" binding="tns:SoapBinding"><note>remote</note></port>
    <port name="xdrPort" binding="tns:XdrBinding"/>
  </service>
</definitions>
"""


@pytest.fixture
def doc():
    return parse(DOC)


class TestChildAxis:
    def test_single_step(self, doc):
        assert [e.get("name") for e in query(doc, "/binding")] == ["SoapBinding", "XdrBinding"]

    def test_multi_step_path(self, doc):
        ports = query(doc, "/service/port")
        assert [p.get("name") for p in ports] == ["soapPort", "xdrPort"]

    def test_no_leading_slash_equivalent(self, doc):
        assert query(doc, "service/port") == query(doc, "/service/port")

    def test_wildcard(self, doc):
        all_children = query(doc, "/*")
        assert len(all_children) == 4  # portType + 2 bindings + service


class TestDescendantAxis:
    def test_anywhere(self, doc):
        ops = query(doc, "//operation")
        assert [o.get("name") for o in ops] == ["getResult", "getName"]

    def test_descendant_mid_path(self, doc):
        assert query_values(doc, "/portType//input/@message") == ["tns:getResultRequest"]

    def test_descendant_includes_self_level_children(self, doc):
        assert len(query(doc, "//port")) == 2


class TestPredicates:
    def test_attribute_equality(self, doc):
        matches = query(doc, "//port[@name='xdrPort']")
        assert len(matches) == 1
        assert matches[0].get("binding") == "tns:XdrBinding"

    def test_attribute_existence(self, doc):
        assert len(query(doc, "//operation[@name]")) == 2

    def test_child_existence(self, doc):
        assert [o.get("name") for o in query(doc, "//operation[input]")] == ["getResult"]

    def test_child_text_equality(self, doc):
        assert [p.get("name") for p in query(doc, "//port[note='remote']")] == ["soapPort"]

    def test_multiple_predicates(self, doc):
        assert query(doc, "//operation[@name='getResult'][input]")
        assert not query(doc, "//operation[@name='getName'][input]")

    def test_no_match(self, doc):
        assert query(doc, "//port[@name='nope']") == []


class TestValueSteps:
    def test_attribute_value(self, doc):
        assert query_values(doc, "//service/@name") == ["MatMulService"]

    def test_text_function(self, doc):
        assert query_values(doc, "//note/text()") == ["remote"]

    def test_values_of_elements_take_text(self, doc):
        assert query_values(doc, "//note") == ["remote"]

    def test_select_rejects_value_query(self, doc):
        with pytest.raises(XmlError):
            XmlQuery("//port/@name").select(doc)

    def test_value_step_must_be_last(self, doc):
        with pytest.raises(XmlError):
            XmlQuery("//service/@name/port").select(doc)


class TestApi:
    def test_exists(self, doc):
        assert XmlQuery("//binding[@name='XdrBinding']").exists(doc)
        assert not XmlQuery("//binding[@name='Rmi']").exists(doc)

    def test_first(self, doc):
        first = XmlQuery("//port").first(doc)
        assert first.get("name") == "soapPort"
        assert XmlQuery("//nothing").first(doc) is None

    def test_compiled_query_reusable(self, doc):
        q = XmlQuery("//operation")
        assert len(q.select(doc)) == 2
        assert len(q.select(doc)) == 2

    def test_repr(self):
        assert "//x" in repr(XmlQuery("//x"))


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "//",
            "//port[@name=",
            "//port[@name='x'",
            "//port[@]",
            "port//",
            "a b",
            "[x]",
            "//port[@name=x]",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XmlError):
            XmlQuery(bad)

    def test_predicate_quotes_both_kinds(self, doc):
        assert XmlQuery('//port[@name="xdrPort"]').exists(doc)
        assert XmlQuery("//port[@name='xdrPort']").exists(doc)
