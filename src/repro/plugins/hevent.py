"""``hevent`` — the general event-management plugin (Figure 2).

Bridges the kernel's local :class:`~repro.util.EventBus` across kernels:
``publish`` with a peer list pushes the event to each remote hevent, which
re-publishes it on its local bus.  ``hpvmd`` uses it for group barriers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.plugin import Plugin
from repro.util.errors import PluginError
from repro.util.events import Event, EventBus, Subscription

__all__ = ["EventManagementPlugin"]


class EventManagementPlugin(Plugin):
    """Cross-kernel event distribution on top of per-kernel buses."""

    plugin_name = "hevent"
    provides = ("event-management",)

    def __init__(self) -> None:
        super().__init__()
        self._bus = EventBus()

    @property
    def bus(self) -> EventBus:
        return self._bus

    def subscribe(self, topic: str, handler: Callable[[Event], None]) -> Subscription:
        """Subscribe to events on this kernel (local and relayed remote)."""
        return self._bus.subscribe(topic, handler)

    def publish(
        self,
        topic: str,
        payload: Any = None,
        peers: Iterable[str] = (),
        local: bool = True,
    ) -> int:
        """Publish an event locally and to each peer kernel; returns local
        delivery count."""
        count = 0
        if local:
            count = self._bus.publish(topic, payload, source=self._source())
        for peer in peers:
            if peer == self._source():
                continue
            if self.kernel is None:
                raise PluginError("hevent is not attached")
            self.kernel.send(peer, "event-management", {
                "topic": topic, "payload": payload,
            })
        return count

    def handle_message(self, src_host: str, payload: dict) -> bool:
        self._bus.publish(payload["topic"], payload.get("payload"), source=src_host)
        return True

    def _source(self) -> str:
        return self.kernel.host_name if self.kernel is not None else ""
