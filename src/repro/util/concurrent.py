"""Concurrency primitives used across kernels, containers and transports.

Harness kernels are concurrent: plugin invocations, transport listeners and
DVM event distribution all run on threads.  This module collects the small
set of primitives the rest of the framework builds on, so locking policy
lives in one place.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Generic, Iterable, TypeVar

from repro.util.errors import HarnessTimeoutError

__all__ = [
    "AtomicCounter",
    "CountDownLatch",
    "ReadWriteLock",
    "SerialExecutor",
    "run_all",
    "wait_for",
]

T = TypeVar("T")


class AtomicCounter:
    """A thread-safe monotonically adjustable counter."""

    def __init__(self, initial: int = 0):
        self._value = initial
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        """Add *amount* and return the new value."""
        with self._lock:
            self._value += amount
            return self._value

    def decrement(self, amount: int = 1) -> int:
        return self.increment(-amount)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class CountDownLatch:
    """Block until ``count`` events have occurred (java.util.concurrent style).

    The DVM full-synchrony protocol uses a latch per broadcast to wait for
    acknowledgements from every member node.
    """

    def __init__(self, count: int):
        if count < 0:
            raise ValueError("latch count must be non-negative")
        self._count = count
        self._cond = threading.Condition()

    def count_down(self) -> None:
        with self._cond:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._cond.notify_all()

    @property
    def count(self) -> int:
        with self._cond:
            return self._count

    def wait(self, timeout: float | None = None) -> None:
        """Block until the count hits zero; raise on timeout."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._count == 0, timeout):
                raise HarnessTimeoutError(
                    f"latch not released within {timeout}s ({self._count} remaining)"
                )


class ReadWriteLock:
    """Many-readers / single-writer lock.

    Container registries and DVM state tables are read-dominated (lookup and
    status queries vastly outnumber deployments), so shared read access
    matters for the C4/C5 benchmarks to measure protocol costs rather than
    lock convoys.  Writer-preference: once a writer is waiting, new readers
    block, which bounds writer starvation.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            self._cond.wait_for(lambda: not self._writer and self._writers_waiting == 0)
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                self._cond.wait_for(lambda: not self._writer and self._readers == 0)
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()
            return self

        def __exit__(self, *exc):
            self._lock.release_read()
            return False

    class _WriteGuard:
        def __init__(self, lock: "ReadWriteLock"):
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()
            return self

        def __exit__(self, *exc):
            self._lock.release_write()
            return False

    def reading(self) -> "_ReadGuard":
        """Context manager acquiring the lock in read mode."""
        return ReadWriteLock._ReadGuard(self)

    def writing(self) -> "_WriteGuard":
        """Context manager acquiring the lock in write mode."""
        return ReadWriteLock._WriteGuard(self)


class SerialExecutor(Generic[T]):
    """Run submitted callables one at a time on a dedicated daemon thread.

    Each Harness kernel owns one serial executor for lifecycle operations,
    which gives plugins the single-threaded lifecycle guarantees the paper's
    component model assumes while invocations stay concurrent.
    """

    def __init__(self, name: str = "harness-serial"):
        self._queue: list[tuple[Callable[[], T], Future]] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[[], T]) -> "Future[T]":
        """Queue *fn*; returns a future resolving to its result."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("executor closed")
            self._queue.append((fn, future))
            self._cond.notify()
        return future

    def call(self, fn: Callable[[], T], timeout: float | None = 30.0) -> T:
        """Submit *fn* and wait for its result."""
        return self.submit(fn).result(timeout)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._thread.join(timeout=5)

    def _loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._queue or self._closed)
                if not self._queue and self._closed:
                    return
                fn, future = self._queue.pop(0)
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn())
            except BaseException as exc:  # propagate into the future
                future.set_exception(exc)


def run_all(thunks: Iterable[Callable[[], T]], prefix: str = "harness") -> list[T]:
    """Run thunks concurrently on fresh threads and gather results in order.

    Any exception is re-raised (the first one, by thunk order) after all
    threads finish, so partially completed work is never silently dropped.
    """
    thunks = list(thunks)
    results: list = [None] * len(thunks)
    errors: list = [None] * len(thunks)

    def runner(i: int, fn: Callable[[], T]) -> None:
        try:
            results[i] = fn()
        except BaseException as exc:
            errors[i] = exc

    threads = [
        threading.Thread(target=runner, args=(i, fn), name=f"{prefix}-{i}", daemon=True)
        for i, fn in enumerate(thunks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for err in errors:
        if err is not None:
            raise err
    return results


def wait_for(predicate: Callable[[], bool], timeout: float = 5.0, interval: float = 0.001) -> None:
    """Poll *predicate* until true; raise :class:`HarnessTimeoutError` otherwise."""
    import time as _time

    end = _time.monotonic() + timeout
    while not predicate():
        if _time.monotonic() >= end:
            raise HarnessTimeoutError(f"condition not met within {timeout}s")
        _time.sleep(interval)
