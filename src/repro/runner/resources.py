"""Resource description, registration, and matchmaking.

Section 1's issue list: "resources that are being contributed by suppliers
should be described with sufficient semantic information for users to
determine their suitability, and should be published in accessible
locations", plus "resources should be mapped into usable aggregates … [and]
allocation of resources to multiple requesters should be performed."

This module supplies the mechanism:

* :class:`ResourceDescriptor` — the semantic description of a contributed
  resource (capability numbers, architecture/OS identity, free-form tags
  and attributes);
* :class:`Requirement` — one constraint of a request (min/max/equals/tag),
  plus :func:`parse_requirement` for the string form used by registries
  (``"cpus>=4"``, ``"arch=x86"``, ``"tag:gpu"``) — the same expressions a
  ClassAd-era matchmaker accepted;
* :class:`ResourceCatalog` — registration + matchmaking + a simple
  best-fit allocator (rank by surplus capability, allocate, release).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.util.errors import HarnessError, RunnerError

__all__ = [
    "ResourceDescriptor",
    "Requirement",
    "parse_requirement",
    "NoMatchError",
    "ResourceCatalog",
]


class NoMatchError(RunnerError):
    """No registered resource satisfies the requirements."""


@dataclass(frozen=True)
class ResourceDescriptor:
    """Semantic description of a contributed computational resource."""

    name: str
    cpus: int = 1
    memory_mb: int = 1024
    mflops: float = 100.0  # 2002-era capability number
    arch: str = "x86"
    os: str = "linux"
    tags: frozenset[str] = frozenset()
    attributes: dict = field(default_factory=dict)

    def value_of(self, key: str) -> Any:
        """An attribute by name, searching fields then free-form attributes."""
        if key in ("name", "cpus", "memory_mb", "mflops", "arch", "os"):
            return getattr(self, key)
        return self.attributes.get(key)


_REQ_PATTERN = re.compile(
    r"^\s*(?:(?P<tag>tag:(?P<tagname>[\w.\-]+))|"
    r"(?P<key>[\w.\-]+)\s*(?P<op>>=|<=|=|>|<)\s*(?P<value>.+?))\s*$"
)


@dataclass(frozen=True)
class Requirement:
    """One constraint: a comparison on an attribute, or a tag test."""

    key: str
    op: str  # '>=', '<=', '>', '<', '=', 'tag'
    value: Any = None

    def satisfied_by(self, resource: ResourceDescriptor) -> bool:
        if self.op == "tag":
            return self.key in resource.tags
        actual = resource.value_of(self.key)
        if actual is None:
            return False
        wanted = self.value
        if isinstance(actual, (int, float)) and not isinstance(wanted, (int, float)):
            try:
                wanted = float(wanted)
            except (TypeError, ValueError):
                return False
        if self.op == "=":
            return actual == wanted or str(actual) == str(wanted)
        try:
            if self.op == ">=":
                return actual >= wanted
            if self.op == "<=":
                return actual <= wanted
            if self.op == ">":
                return actual > wanted
            if self.op == "<":
                return actual < wanted
        except TypeError:
            return False
        raise HarnessError(f"unknown requirement operator {self.op!r}")


def parse_requirement(text: str) -> Requirement:
    """Parse ``"cpus>=4"``, ``"arch=x86"`` or ``"tag:gpu"``."""
    match = _REQ_PATTERN.match(text)
    if match is None:
        raise HarnessError(f"malformed requirement: {text!r}")
    if match.group("tag"):
        return Requirement(match.group("tagname"), "tag")
    value_text = match.group("value")
    value: Any
    try:
        value = int(value_text)
    except ValueError:
        try:
            value = float(value_text)
        except ValueError:
            value = value_text
    return Requirement(match.group("key"), match.group("op"), value)


def _as_requirements(requirements: Iterable[Requirement | str]) -> list[Requirement]:
    return [
        r if isinstance(r, Requirement) else parse_requirement(r)
        for r in requirements
    ]


class ResourceCatalog:
    """The accessible location resources are published in, plus matchmaking.

    Allocation model: each resource has ``cpus`` capacity; :meth:`allocate`
    reserves whole CPUs and :meth:`release` returns them.  Ranking is
    best-fit by a weighted surplus score (free cpus + normalised mflops),
    so "suppliers" with more headroom win ties — the greedy policy early
    grid schedulers shipped.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._resources: dict[str, ResourceDescriptor] = {}
        self._allocated: dict[str, int] = {}

    # -- registration ----------------------------------------------------------

    def register(self, resource: ResourceDescriptor) -> None:
        with self._lock:
            if resource.name in self._resources:
                raise RunnerError(f"resource {resource.name!r} already registered")
            self._resources[resource.name] = resource
            self._allocated[resource.name] = 0

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._resources:
                raise RunnerError(f"unknown resource {name!r}")
            del self._resources[name]
            del self._allocated[name]

    def resources(self) -> list[ResourceDescriptor]:
        with self._lock:
            return list(self._resources.values())

    def describe(self, name: str) -> ResourceDescriptor:
        with self._lock:
            resource = self._resources.get(name)
        if resource is None:
            raise RunnerError(f"unknown resource {name!r}")
        return resource

    def free_cpus(self, name: str) -> int:
        with self._lock:
            return self.describe(name).cpus - self._allocated[name]

    # -- matchmaking ------------------------------------------------------------

    def match(self, requirements: Iterable[Requirement | str]) -> list[ResourceDescriptor]:
        """Resources satisfying every requirement, best-ranked first."""
        parsed = _as_requirements(requirements)
        with self._lock:
            candidates = [
                resource
                for resource in self._resources.values()
                if all(req.satisfied_by(resource) for req in parsed)
            ]
            return sorted(candidates, key=self._score, reverse=True)

    def _score(self, resource: ResourceDescriptor) -> float:
        free = resource.cpus - self._allocated.get(resource.name, 0)
        return free + resource.mflops / 1000.0

    # -- allocation ------------------------------------------------------------------

    def allocate(self, requirements: Iterable[Requirement | str], cpus: int = 1) -> ResourceDescriptor:
        """Reserve *cpus* on the best matching resource with capacity."""
        parsed = _as_requirements(requirements)
        with self._lock:
            for resource in self.match(parsed):
                if self.free_cpus(resource.name) >= cpus:
                    self._allocated[resource.name] += cpus
                    return resource
        raise NoMatchError(
            f"no resource satisfies {[str(r) for r in parsed]!r} with {cpus} free cpus"
        )

    def release(self, name: str, cpus: int = 1) -> None:
        with self._lock:
            if name not in self._allocated:
                raise RunnerError(f"unknown resource {name!r}")
            if self._allocated[name] < cpus:
                raise RunnerError(f"releasing more cpus than allocated on {name!r}")
            self._allocated[name] -= cpus

    # -- aggregates -----------------------------------------------------------------------

    def aggregate(
        self, requirements: Iterable[Requirement | str], total_cpus: int
    ) -> list[tuple[ResourceDescriptor, int]]:
        """Map matching resources into a usable aggregate of *total_cpus*.

        Greedy bin-pack across ranked matches; returns (resource, cpus)
        pairs whose sum is exactly *total_cpus*, allocating as it goes.
        Raises :class:`NoMatchError` (and rolls back) when capacity runs
        short — "mapping … into usable aggregates (e.g. a distributed
        virtual machine)".
        """
        parsed = _as_requirements(requirements)
        taken: list[tuple[ResourceDescriptor, int]] = []
        remaining = total_cpus
        with self._lock:
            for resource in self.match(parsed):
                if remaining == 0:
                    break
                grab = min(self.free_cpus(resource.name), remaining)
                if grab <= 0:
                    continue
                self._allocated[resource.name] += grab
                taken.append((resource, grab))
                remaining -= grab
            if remaining > 0:
                for resource, grab in taken:  # roll back
                    self._allocated[resource.name] -= grab
                raise NoMatchError(
                    f"cannot aggregate {total_cpus} cpus "
                    f"({total_cpus - remaining} available across matches)"
                )
        return taken
