"""Command-line front end for the Harness II toolkit.

Usage::

    python -m repro.tools wsdlgen  pkg.module:Class [--bindings soap,local]
                                   [--name NAME] [--namespace URN]
    python -m repro.tools servicegen pkg.module:Class [--class-name NAME]
    python -m repro.tools query    FILE.wsdl EXPRESSION
    python -m repro.tools scenario list
    python -m repro.tools scenario run NAME [NAME ...] [--seed N] [--out DIR]
    python -m repro.tools scenario soak [--out DIR] [--seed N]

Mirrors the IBM Web Services Toolkit commands the paper leans on
("the wsdlgen tool", "executing the servicegen tool") plus a query
command exposing the registry's XML query engine for ad-hoc use, and
the chaos-scenario runner (:mod:`repro.scenario`) for CI smoke and
nightly soak runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.bindings.stubs import load_type
from repro.tools.servicegen import generate_stub_source
from repro.tools.wsdlgen import generate_wsdl
from repro.wsdl.io import document_to_string


def _cmd_wsdlgen(args: argparse.Namespace) -> int:
    service_class = load_type(args.type)
    bindings = tuple(b.strip() for b in args.bindings.split(",") if b.strip())
    document = generate_wsdl(
        service_class,
        service_name=args.name,
        target_namespace=args.namespace,
        bindings=bindings,
        instance_id=args.instance_id or "",
    )
    sys.stdout.write(document_to_string(document))
    return 0


def _cmd_servicegen(args: argparse.Namespace) -> int:
    service_class = load_type(args.type)
    document = generate_wsdl(service_class, bindings=("soap", "local"))
    # servicegen needs at least one port to know the portType in play;
    # synthesize a placeholder local port when generating offline
    from repro.wsdl.model import WsdlPort, WsdlService

    document = document.with_service(
        WsdlService(
            document.name,
            (WsdlPort("localPort", f"{document.name}LocalBinding", ()),),
        )
    )
    sys.stdout.write(
        generate_stub_source(document, class_name=args.class_name)
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.xmlkit import XmlQuery, parse

    with open(args.file, "rb") as handle:
        root = parse(handle.read())
    query = XmlQuery(args.expression)
    try:
        for value in query.values(root):
            print(value)
    except Exception as exc:  # pragma: no cover - defensive CLI surface
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _print_result(result) -> None:
    for check in result.checks:
        mark = "PASS" if check.passed else "FAIL"
        print(f"  {mark} {check.check}: {check.detail}")
    verdict = "passed" if result.passed else "FAILED"
    print(
        f"{result.name}: {verdict} (seed {result.seed}, {result.n_events} events, "
        f"wall {result.wall_s:.2f}s, sha256 {result.events_sha256[:12]})"
    )


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import library, run_scenario

    if args.action == "list":
        for name in library.scenario_names():
            manifest = library.load_scenario(name)
            blurb = manifest.description.split(". ")[0].rstrip(".")
            print(f"{name:26s} {blurb}")
        return 0

    if args.action == "run":
        names = args.names or library.scenario_names()
        failed = 0
        for name in names:
            out_dir = f"{args.out}/{name}" if args.out else None
            result = run_scenario(
                library.manifest_path(name), out_dir=out_dir, seed=args.seed
            )
            _print_result(result)
            failed += not result.passed
        return 1 if failed else 0

    # soak: the full library, every run replayed to prove the trail is
    # byte-identical — the nightly job uploads the events.jsonl artifacts
    results = library.run_all(
        out_root=args.out, seed=args.seed, verify_determinism=True, log=print
    )
    failed = [r.name for r in results if not r.passed]
    print(f"soak: {len(results) - len(failed)}/{len(results)} scenarios passed")
    if failed:
        print("failed: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools")
    commands = parser.add_subparsers(dest="command", required=True)

    wsdlgen = commands.add_parser("wsdlgen", help="generate WSDL from a Python class")
    wsdlgen.add_argument("type", help="pkg.module:Class")
    wsdlgen.add_argument("--bindings", default="soap,local")
    wsdlgen.add_argument("--name", default=None)
    wsdlgen.add_argument("--namespace", default=None)
    wsdlgen.add_argument("--instance-id", default=None)
    wsdlgen.set_defaults(fn=_cmd_wsdlgen)

    servicegen = commands.add_parser("servicegen", help="generate a static client stub")
    servicegen.add_argument("type", help="pkg.module:Class")
    servicegen.add_argument("--class-name", default=None)
    servicegen.set_defaults(fn=_cmd_servicegen)

    query = commands.add_parser("query", help="run an XML query over a document")
    query.add_argument("file")
    query.add_argument("expression")
    query.set_defaults(fn=_cmd_query)

    scenario = commands.add_parser("scenario", help="run bundled chaos scenarios")
    actions = scenario.add_subparsers(dest="action", required=True)
    actions.add_parser("list", help="name every bundled scenario")
    run = actions.add_parser("run", help="run one or more scenarios")
    run.add_argument("names", nargs="*", help="scenario names (default: all)")
    run.add_argument("--seed", type=int, default=None, help="override manifest seeds")
    run.add_argument("--out", default=None, help="write events.jsonl/result.json here")
    soak = actions.add_parser(
        "soak", help="full library + determinism verification (nightly job)"
    )
    soak.add_argument("--seed", type=int, default=None)
    soak.add_argument("--out", default=None)
    scenario.set_defaults(fn=_cmd_scenario)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
