"""In-process publish/subscribe event bus.

The Harness kernel distributes lifecycle and system events ("general event
management" in Figure 2) through an :class:`EventBus`.  Topics are
hierarchical dotted strings; a subscription to ``dvm.member`` receives
``dvm.member.joined`` and ``dvm.member.left``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.ids import new_id

__all__ = ["Event", "EventBus", "Subscription"]


@dataclass(frozen=True)
class Event:
    """An immutable event record delivered to subscribers."""

    topic: str
    payload: Any = None
    source: str = ""
    attributes: dict = field(default_factory=dict)


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; call :meth:`cancel` to stop."""

    def __init__(self, bus: "EventBus", topic: str, sub_id: str):
        self._bus = bus
        self.topic = topic
        self.id = sub_id
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        if self._active:
            self._active = False
            self._bus._remove(self)


class EventBus:
    """Topic-based synchronous event bus.

    Delivery is synchronous in the publisher's thread: this keeps event
    ordering deterministic, which the full-synchrony DVM protocol relies on.
    Handlers must not block.  Handler exceptions are collected and reported
    via the optional ``error_handler`` rather than unwinding the publisher.
    """

    def __init__(self, error_handler: Callable[[Exception, Event], None] | None = None):
        self._lock = threading.RLock()
        self._subs: dict[str, tuple[Subscription, Callable[[Event], None]]] = {}
        self._error_handler = error_handler
        self.published = 0
        self.delivered = 0

    def subscribe(self, topic: str, handler: Callable[[Event], None]) -> Subscription:
        """Register *handler* for *topic* and every subtopic beneath it."""
        sub = Subscription(self, topic, new_id("sub"))
        with self._lock:
            self._subs[sub.id] = (sub, handler)
        return sub

    def publish(self, topic: str, payload: Any = None, source: str = "", **attributes) -> int:
        """Publish an event; returns the number of handlers that received it.

        When tracing is active, the current trace/span ids are stamped into
        the event attributes (span links), so bus traffic triggered inside a
        traced call can be correlated with it afterwards.
        """
        from repro.obs import trace as _trace  # late: events sits below obs consumers

        if _trace.ENABLED:
            ctx = _trace.current()
            if ctx is not None:
                attributes.setdefault("trace_id", ctx.trace_id)
                attributes.setdefault("span_id", ctx.span_id)
        event = Event(topic=topic, payload=payload, source=source, attributes=attributes)
        with self._lock:
            targets = [
                (sub, handler)
                for sub, handler in self._subs.values()
                if _topic_matches(sub.topic, topic)
            ]
            self.published += 1
        count = 0
        for sub, handler in targets:
            if not sub.active:
                continue
            try:
                handler(event)
                count += 1
            except Exception as exc:  # isolate subscriber failures
                if self._error_handler is not None:
                    self._error_handler(exc, event)
        with self._lock:
            self.delivered += count
        return count

    def _remove(self, sub: Subscription) -> None:
        with self._lock:
            self._subs.pop(sub.id, None)

    def subscriber_count(self, topic: str | None = None) -> int:
        """Number of active subscriptions, optionally only those matching *topic*."""
        with self._lock:
            if topic is None:
                return len(self._subs)
            return sum(1 for sub, _ in self._subs.values() if _topic_matches(sub.topic, topic))


def _topic_matches(pattern: str, topic: str) -> bool:
    """True when *pattern* equals *topic* or is a dotted prefix of it."""
    if pattern in ("", "*"):
        return True
    return topic == pattern or topic.startswith(pattern + ".")
