"""Heartbeat failure detection for the DVM — the "robustness" half of §1.

The paper motivates Harness with "improving robustness … and adaptation"
through dynamic reconfiguration of the DVM; reconfiguration needs a trigger.
:class:`FailureDetector` provides it: an observer node pings every other
enrolled member over the fabric's ``dvm-ping`` endpoint and tracks
consecutive misses per member — a miss-count accrual detector, the discrete
cousin of the φ-accrual detectors used by later grid middleware.  A member
accrues suspicion monotonically:

    ALIVE --(suspect_after misses)--> SUSPECTED --(evict_after)--> DEAD

Reaching DEAD triggers :meth:`DistributedVirtualMachine.evict_node`: the
member leaves the coherency protocol, its components are deregistered from
the unified namespace, and ``dvm.member.dead`` is published — which is the
event the recovery layer's failover manager listens for.

The detector is *tick-driven* for determinism (tests and the simulated
fabric advance it explicitly); :meth:`start` runs the same ticks on a
daemon thread for wall-clock deployments.
"""

from __future__ import annotations

import enum
import random
import threading

from repro.netsim.fabric import VirtualNetwork
from repro.obs import metrics as _metrics
from repro.transport.base import TransportMessage
from repro.util.errors import DvmError, TransportError

__all__ = ["NodeHealth", "FailureDetector", "PING_ENDPOINT", "bind_ping_endpoint"]

PING_ENDPOINT = "dvm-ping"
_CT = "application/x-harness-ping"

_MISSES = _metrics.registry.counter("dvm.detector.misses")
_SUSPECTED = _metrics.registry.counter("dvm.detector.suspected")
_EVICTED = _metrics.registry.counter("dvm.detector.evicted")
_RECOVERED = _metrics.registry.counter("dvm.detector.recovered")


def bind_ping_endpoint(network: VirtualNetwork, host_name: str) -> None:
    """Expose the heartbeat endpoint on a host (idempotent)."""

    def pong(message: TransportMessage) -> TransportMessage:
        return TransportMessage(_CT, message.payload)

    host = network.host(host_name)
    host.unbind(PING_ENDPOINT)
    host.bind(PING_ENDPOINT, pong)


class NodeHealth(enum.Enum):
    """Detector-side view of a member's liveness."""

    ALIVE = "alive"
    SUSPECTED = "suspected"
    DEAD = "dead"


class FailureDetector:
    """Pings DVM members and evicts the ones that stop answering.

    ``suspect_after`` consecutive missed heartbeats mark a member SUSPECTED
    (``dvm.member.suspected`` published, nothing evicted yet — a suspected
    member that answers again is fully rehabilitated); ``evict_after``
    misses mark it DEAD and trigger eviction.  The *observer* defaults to
    the first enrolled node and falls over to the next alive member if the
    observer itself dies.

    In wall-clock mode (:meth:`start`) each round waits ``interval_s``
    scaled by a uniformly drawn ±``jitter`` factor, so a fleet of detectors
    never phase-locks its ping bursts onto the fabric.  The jitter stream is
    seeded (``seed``) and therefore reproducible: :meth:`next_interval`
    yields the exact same schedule for the same seed.
    """

    def __init__(
        self,
        dvm,
        observer: str | None = None,
        suspect_after: int = 2,
        evict_after: int = 3,
        interval_s: float = 0.5,
        jitter: float = 0.1,
        seed: int | None = None,
    ):
        if suspect_after < 1 or evict_after < suspect_after:
            raise DvmError("need 1 <= suspect_after <= evict_after")
        if not 0.0 <= jitter < 1.0:
            raise DvmError("need 0 <= jitter < 1")
        self.dvm = dvm
        self.observer = observer
        self.suspect_after = suspect_after
        self.evict_after = evict_after
        self.interval_s = interval_s
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._misses: dict[str, int] = {}
        self._health: dict[str, NodeHealth] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- introspection ------------------------------------------------------------

    def health(self, member: str) -> NodeHealth:
        return self._health.get(member, NodeHealth.ALIVE)

    def statuses(self) -> dict[str, NodeHealth]:
        return {m: self.health(m) for m in self.dvm.nodes()}

    def contactable(self, member: str) -> bool:
        """Whether *member* may be sent a non-heartbeat request.

        SUSPECTED members are still contacted (they may merely be slow and
        a successful call rehabilitates nothing the detector tracks), DEAD
        ones are not — the cluster metrics collector uses this to avoid
        hanging a pull on a corpse and marks the node STALE instead.
        """
        return self.health(member) is not NodeHealth.DEAD

    # -- one heartbeat round -------------------------------------------------------

    def _pick_observer(self) -> str | None:
        members = self.dvm.nodes()
        if not members:
            return None
        if self.observer in members and self.dvm.network.host(self.observer).up:
            return self.observer
        for member in members:
            if self.dvm.network.host(member).up:
                return member
        return None

    def tick(self) -> list[str]:
        """Ping every member once; returns the members evicted this round."""
        observer = self._pick_observer()
        if observer is None:
            return []
        evicted: list[str] = []
        for member in self.dvm.nodes():
            if member == observer:
                continue
            if self._ping(observer, member):
                self._misses.pop(member, None)
                # full rehabilitation: a suspected member that answers, or a
                # previously-evicted one that re-enrolled, is ALIVE again
                if self._health.get(member, NodeHealth.ALIVE) is not NodeHealth.ALIVE:
                    self._health[member] = NodeHealth.ALIVE
                    _RECOVERED.inc()
                    self.dvm.events.publish(
                        "dvm.member.recovered", member, source=self.dvm.name
                    )
                continue
            misses = self._misses.get(member, 0) + 1
            self._misses[member] = misses
            _MISSES.inc()
            if misses >= self.evict_after:
                self._health[member] = NodeHealth.DEAD
                _EVICTED.inc()
                self.dvm.evict_node(member, by=observer)
                self._misses.pop(member, None)
                evicted.append(member)
            elif misses >= self.suspect_after and (
                self._health.get(member) is not NodeHealth.SUSPECTED
            ):
                self._health[member] = NodeHealth.SUSPECTED
                _SUSPECTED.inc()
                self.dvm.events.publish(
                    "dvm.member.suspected",
                    {"node": member, "misses": misses},
                    source=self.dvm.name,
                )
        return evicted

    def _ping(self, observer: str, member: str) -> bool:
        try:
            self.dvm.network.request(
                observer, member, PING_ENDPOINT, TransportMessage(_CT, b"ping")
            )
            return True
        except TransportError:
            # HostDownError, MessageDroppedError, unbound endpoint: all count
            # as a missed heartbeat — the accrual threshold absorbs lossy
            # links, so a single dropped ping never evicts anybody.
            return False

    # -- wall-clock mode -----------------------------------------------------------

    def next_interval(self) -> float:
        """The next heartbeat wait: ``interval_s`` ± ``jitter`` (seeded)."""
        if self.jitter == 0.0:
            return self.interval_s
        return self.interval_s * (1.0 + self._rng.uniform(-self.jitter, self.jitter))

    def start(self) -> None:
        """Run ticks roughly every ``interval_s`` seconds on a daemon thread,
        each wait independently jittered (see :meth:`next_interval`)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.next_interval()):
                try:
                    self.tick()
                except Exception:
                    # detection must never kill the monitoring thread
                    pass

        self._thread = threading.Thread(target=loop, name="dvm-failure-detector", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "FailureDetector":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
