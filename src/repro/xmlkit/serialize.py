"""Serialize :class:`XmlElement` trees to text and parse them back.

The writer assigns namespace prefixes from
:data:`repro.xmlkit.qname.WELL_KNOWN_PREFIXES` (falling back to ``ns0``,
``ns1``, …) and declares every namespace on the root element, which is how
the WSDL listings in the paper's Figures 7 and 8 are laid out.

Parsing goes through ``xml.etree.ElementTree`` (expat) and converts into our
parent-linked model.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape, quoteattr

from repro.util.errors import XmlError
from repro.xmlkit.element import XmlElement
from repro.xmlkit.qname import WELL_KNOWN_PREFIXES, QName

__all__ = ["to_string", "parse", "canonicalize"]


def _collect_namespaces(root: XmlElement) -> dict[str, str]:
    """Map namespace URI -> prefix for every namespace in the tree."""
    uris: list[str] = []
    for node in root.iter():
        if node.name.namespace and node.name.namespace not in uris:
            uris.append(node.name.namespace)
        for attr in node.attributes:
            if attr.namespace and attr.namespace not in uris:
                uris.append(attr.namespace)
    prefixes: dict[str, str] = {}
    auto = 0
    for uri in uris:
        preferred = WELL_KNOWN_PREFIXES.get(uri)
        if preferred and preferred not in prefixes.values():
            prefixes[uri] = preferred
        else:
            prefixes[uri] = f"ns{auto}"
            auto += 1
    return prefixes


def to_string(root: XmlElement, indent: bool = True, xml_declaration: bool = True) -> str:
    """Render the tree as a UTF-8 XML string with prefixes on the root."""
    prefixes = _collect_namespaces(root)
    out = io.StringIO()
    if xml_declaration:
        out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    _write(out, root, prefixes, declare_on_this=True, depth=0, indent=indent)
    return out.getvalue()


def _qname_text(name: QName, prefixes: dict[str, str]) -> str:
    if not name.namespace:
        return name.local
    return f"{prefixes[name.namespace]}:{name.local}"


def _write(
    out: io.StringIO,
    node: XmlElement,
    prefixes: dict[str, str],
    declare_on_this: bool,
    depth: int,
    indent: bool,
) -> None:
    pad = "  " * depth if indent else ""
    tag = _qname_text(node.name, prefixes)
    out.write(f"{pad}<{tag}")
    if declare_on_this:
        for uri, prefix in sorted(prefixes.items(), key=lambda kv: kv[1]):
            out.write(f' xmlns:{prefix}="{escape(uri)}"')
    for attr, value in node.attributes.items():
        out.write(f" {_qname_text(attr, prefixes)}={quoteattr(value)}")
    if not node.children and not node.text:
        out.write("/>")
        if indent:
            out.write("\n")
        return
    out.write(">")
    if node.text:
        out.write(escape(node.text))
    if node.children:
        if indent:
            out.write("\n")
        for child in node.children:
            _write(out, child, prefixes, False, depth + 1, indent)
        out.write(pad)
    out.write(f"</{tag}>")
    if indent:
        out.write("\n")


def parse(text: str | bytes) -> XmlElement:
    """Parse an XML document into an :class:`XmlElement` tree."""
    try:
        et_root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlError(f"malformed XML: {exc}") from exc
    return _convert(et_root)


def _convert(node: ET.Element) -> XmlElement:
    element = XmlElement(QName.parse(node.tag))
    for key, value in node.attrib.items():
        element.set(QName.parse(key), value)
    text = node.text or ""
    if len(node):
        # whitespace around children is indentation, not content
        text = text.strip()
    element.text = text
    for child in node:
        element.append(_convert(child))
    return element


def canonicalize(root: XmlElement) -> str:
    """A whitespace-free, attribute-sorted rendering used for comparisons.

    Not full C14N — just enough determinism for round-trip tests and for
    registry content hashing.
    """
    out = io.StringIO()

    def emit(node: XmlElement) -> None:
        out.write(f"<{node.name.clark()}")
        for attr in sorted(node.attributes, key=lambda q: (q.namespace, q.local)):
            out.write(f" {attr.clark()}={quoteattr(node.attributes[attr])}")
        out.write(">")
        if node.text:
            out.write(escape(node.text.strip()))
        for child in node.children:
            emit(child)
        out.write(f"</{node.name.clark()}>")

    emit(root)
    return out.getvalue()
