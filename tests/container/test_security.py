"""Access control and authorization (§1's security requirement)."""

import numpy as np
import pytest

from repro.bindings import ClientContext, DynamicStubFactory, ObjectDispatcher
from repro.container import (
    ANONYMOUS,
    AccessPolicy,
    AuthenticationError,
    AuthorizationError,
    LightweightContainer,
    Principal,
    SecureDispatcher,
    TokenAuthority,
    with_credential,
)
from repro.plugins.services import CounterService, MatMul
from repro.util.errors import ContainerError, SoapFaultError


class TestTokenAuthority:
    def test_issue_verify_round_trip(self):
        authority = TokenAuthority()
        alice = Principal("alice", frozenset({"compute", "admin"}))
        assert authority.verify(authority.issue(alice)) == alice

    def test_no_roles(self):
        authority = TokenAuthority()
        token = authority.issue(Principal("bob"))
        assert authority.verify(token) == Principal("bob", frozenset())

    def test_tampered_token_rejected(self):
        authority = TokenAuthority()
        token = authority.issue(Principal("alice", frozenset({"user"})))
        forged = token.replace("user", "admin")
        with pytest.raises(AuthenticationError):
            authority.verify(forged)

    def test_foreign_authority_rejected(self):
        token = TokenAuthority().issue(Principal("alice"))
        with pytest.raises(AuthenticationError):
            TokenAuthority().verify(token)

    def test_shared_secret_unifies_domains(self):
        a = TokenAuthority()
        b = TokenAuthority(secret=a.secret)
        token = a.issue(Principal("alice", frozenset({"x"})))
        assert b.verify(token).name == "alice"

    def test_malformed_token(self):
        with pytest.raises(AuthenticationError):
            TokenAuthority().verify("garbage")

    def test_separator_in_name_rejected(self):
        with pytest.raises(AuthenticationError):
            TokenAuthority().issue(Principal("a|b"))


class TestAccessPolicy:
    def test_default_open(self):
        AccessPolicy().check(ANONYMOUS, "Anything", "op")

    def test_default_closed(self):
        with pytest.raises(AuthorizationError):
            AccessPolicy(default_open=False).check(ANONYMOUS, "X", "op")

    def test_role_required(self):
        policy = AccessPolicy().allow("MatMul", "*", {"compute"})
        policy.check(Principal("a", frozenset({"compute"})), "MatMul", "multiply")
        with pytest.raises(AuthorizationError):
            policy.check(ANONYMOUS, "MatMul", "multiply")

    def test_governed_service_denies_unmatched_operations(self):
        policy = AccessPolicy().allow("Counter*", "value", set())
        policy.check(ANONYMOUS, "CounterService", "value")
        with pytest.raises(AuthorizationError):
            policy.check(ANONYMOUS, "CounterService", "increment")

    def test_ungoverned_service_still_open(self):
        policy = AccessPolicy().allow("Counter*", "*", {"admin"})
        policy.check(ANONYMOUS, "WSTime", "getTime")  # no rule names WSTime

    def test_patterns(self):
        policy = AccessPolicy().allow("Mat*", "get*", {"compute"})
        principal = Principal("p", frozenset({"compute"}))
        policy.check(principal, "MatMul", "getResult")
        with pytest.raises(AuthorizationError):
            policy.check(principal, "MatMul", "multiply")

    def test_empty_roles_means_anyone(self):
        policy = AccessPolicy(default_open=False).allow("Public*", "*", set())
        policy.check(ANONYMOUS, "PublicThing", "anything")


class TestSecureDispatcher:
    @pytest.fixture
    def setup(self):
        inner = ObjectDispatcher()
        counter = CounterService()
        inner.register("CounterService#1", counter)
        authority = TokenAuthority()
        policy = AccessPolicy().allow("CounterService", "value", set()).allow(
            "CounterService", "increment", {"writer"}
        )
        return SecureDispatcher(inner, authority, policy), authority

    def test_anonymous_allowed_operation(self, setup):
        dispatcher, _ = setup
        assert dispatcher.invoke("CounterService#1", "value", ()) == 0

    def test_anonymous_denied_operation(self, setup):
        dispatcher, _ = setup
        with pytest.raises(AuthorizationError):
            dispatcher.invoke("CounterService#1", "increment", (1,))

    def test_credentialed_allowed(self, setup):
        dispatcher, authority = setup
        token = authority.issue(Principal("w", frozenset({"writer"})))
        target = with_credential(token, "CounterService#1")
        assert dispatcher.invoke(target, "increment", (5,)) == 5

    def test_wrong_role_denied(self, setup):
        dispatcher, authority = setup
        token = authority.issue(Principal("r", frozenset({"reader"})))
        with pytest.raises(AuthorizationError):
            dispatcher.invoke(with_credential(token, "CounterService#1"), "increment", (1,))

    def test_forged_credential_rejected(self, setup):
        dispatcher, _ = setup
        token = TokenAuthority().issue(Principal("evil", frozenset({"writer"})))
        with pytest.raises(AuthenticationError):
            dispatcher.invoke(with_credential(token, "CounterService#1"), "increment", (1,))


class TestSecuredContainer:
    @pytest.fixture
    def secured(self):
        policy = AccessPolicy().allow("MatMul", "*", {"compute"})
        with LightweightContainer("sec", host="sechost", policy=policy) as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "xdr"))
            yield container, handle

    def test_anonymous_remote_call_denied(self, secured, rng):
        container, handle = secured
        factory = DynamicStubFactory(ClientContext(host="attacker"))
        stub = factory.create(handle.document, prefer=("xdr",))
        from repro.util.errors import EncodingError

        with pytest.raises(EncodingError, match="may not call"):
            stub.multiply(np.eye(2), np.eye(2))
        stub.close()

    def test_credentialed_remote_call_allowed(self, secured, rng):
        container, handle = secured
        token = container.issue_token(Principal("hpc-user", frozenset({"compute"})))
        factory = DynamicStubFactory(ClientContext(host="clienthost"))
        stub = factory.create(handle.document, prefer=("xdr",), credential=token)
        a = rng.random((3, 3))
        assert np.allclose(stub.multiply(a, a), a @ a)
        stub.close()

    def test_soap_path_also_enforced(self, rng):
        policy = AccessPolicy(default_open=False).allow("MatMul", "*", {"compute"})
        with LightweightContainer("sec2", host="sec2host", policy=policy) as container:
            handle = container.deploy(MatMul, bindings=("local-instance", "soap"))
            factory = DynamicStubFactory(ClientContext(host="x"))
            anonymous = factory.create(handle.document, prefer=("soap",))
            with pytest.raises(SoapFaultError, match="may not call"):
                anonymous.multiply(np.eye(2), np.eye(2))
            anonymous.close()
            token = container.issue_token(Principal("u", frozenset({"compute"})))
            allowed = factory.create(handle.document, prefer=("soap",), credential=token)
            a = rng.random((2, 2))
            assert np.allclose(allowed.multiply(a, a), a @ a)
            allowed.close()

    def test_issue_token_requires_policy(self):
        with LightweightContainer("nosec", host="nosechost") as container:
            with pytest.raises(ContainerError):
                container.issue_token(Principal("x"))

    def test_co_located_access_is_trusted(self, secured):
        # local bindings bypass the dispatcher by design (same address space)
        container, handle = secured
        stub = container.lookup("MatMul")
        assert stub.protocol == "local-instance"
        assert np.allclose(stub.multiply(np.eye(2), np.eye(2)), np.eye(2))
